"""Predicate AST: the set concepts the query engine resolves (§4.2).

Navigation suggestions *are* predicates ("The query engine lets users
take the various navigation suggestions (which are predicates) and
combine them").  By default combination is conjunctive; the context menu
adds disjunction and negation.  Typed extensions contribute new leaf
predicates: full-text matching against the external index, and numeric
range comparison for continuous attributes.

Every predicate can

* test one item (:meth:`Predicate.matches`),
* optionally produce its full extent from an index
  (:meth:`Predicate.candidates`, returning None when only per-item
  testing is available), and
* describe itself for the constraint chips at the top of the navigation
  pane (:meth:`Predicate.describe`).
"""

from __future__ import annotations

import math
import threading
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Optional, Sequence

from ..index.textindex import TextIndex
from ..perf.containers import RoaringBitmap
from ..perf.stats import CacheStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..perf.plan import CompiledPlan
    from ..perf.postings import FacetPostings
from ..rdf.graph import Graph
from ..rdf.schema import Schema
from ..rdf.terms import Literal, Node, Resource
from ..rdf.vocab import RDF
from ..vsm.composition import compose_values

__all__ = [
    "QueryContext",
    "Predicate",
    "HasValue",
    "HasProperty",
    "TypeIs",
    "TextMatch",
    "Range",
    "PathStep",
    "Path",
    "PathValue",
    "ValueIn",
    "Cardinality",
    "And",
    "Or",
    "Not",
]


#: Sentinel distinguishing "cache miss" from a cached None extent.
_MISS = object()


class QueryContext:
    """Everything a predicate may consult during evaluation.

    The context also owns the **extent cache** of the performance layer:
    predicate extents are stored as bitmasks over the graph's intern
    table, keyed on the predicate (hashable by construction) and the
    graph's mutation version.  Every mutation invalidates lazily — stale
    entries are simply recomputed on the next lookup — so repeated query
    previews over an unchanged corpus stop re-deriving the same extents.
    """

    def __init__(
        self,
        graph: Graph,
        schema: Schema | None = None,
        text_index: TextIndex | None = None,
        universe: Optional[set[Node]] = None,
    ):
        self.graph = graph
        self.schema = schema if schema is not None else Schema(graph)
        self.text_index = text_index
        self._universe = universe
        #: predicate -> (graph version, bitmask | None)
        self._extent_cache: dict[Predicate, tuple[int, int | None]] = {}
        self._universe_bits: tuple[tuple[int, int], int] | None = None
        self.cache_stats = CacheStats()
        # --- compiled-plan layer (repro.perf.plan / .containers) ---
        #: predicate -> (graph version, CompiledPlan | None-for-fallback)
        self._plan_cache: dict[
            Predicate, tuple[int, "CompiledPlan | None"]
        ] = {}
        #: leaf predicate -> (graph version, leaf extent container)
        self._leaf_container_cache: dict[
            Predicate, tuple[int, RoaringBitmap]
        ] = {}
        self._universe_container: (
            tuple[tuple[int, int], RoaringBitmap] | None
        ) = None
        self._facet_postings: "FacetPostings | None" = None
        self._postings_lock = threading.Lock()
        self.plan_stats = CacheStats()
        self.container_stats = CacheStats()
        #: Path predicate -> (graph version, frozen extent).  Path
        #: extents are the product of a whole reachability walk, so they
        #: get their own memo (all three engine modes funnel through it).
        self._path_cache: dict[Predicate, tuple[int, frozenset[Node]]] = {}
        self.path_stats = CacheStats()

    @property
    def universe(self) -> set[Node]:
        """The item population queries range over.

        Defaults to every subject carrying an ``rdf:type`` — the graph's
        "information objects", as opposed to annotation nodes.
        """
        if self._universe is None:
            self._universe = {
                s
                for s, _p, _o in self.graph.triples(None, RDF.type, None)
            }
        return self._universe

    # ------------------------------------------------------------------
    # Bitset extents (performance layer)
    # ------------------------------------------------------------------

    def bits_of(self, nodes: Iterable[Node]) -> int:
        """A bitmask over item nodes (interning new ones as needed)."""
        return self.graph.interner.bits_of(nodes)

    def nodes_of(self, mask: int) -> set[Node]:
        """The node set a bitmask denotes."""
        return self.graph.interner.nodes_of(mask)

    def universe_bits(self) -> int:
        """The universe as a cached bitmask.

        Keyed on (graph version, universe size) so both graph mutations
        and in-place universe growth (``Workspace.add_item``) refresh it.
        """
        universe = self.universe
        key = (self.graph.version, len(universe))
        cached = self._universe_bits
        if cached is not None and cached[0] == key:
            return cached[1]
        bits = self.bits_of(universe)
        self._universe_bits = (key, bits)
        return bits

    def cached_extent_bits(self, predicate: "Predicate"):
        """A cached extent bitmask, ``None`` (cached no-extent), or _MISS."""
        try:
            entry = self._extent_cache.get(predicate)
        except (TypeError, NotImplementedError):
            # Unhashable custom predicate: evaluable, just not cacheable.
            return _MISS
        if entry is not None:
            if entry[0] == self.graph.version:
                self.cache_stats.record_hit()
                return entry[1]
            self.cache_stats.record_invalidation()
        self.cache_stats.record_miss()
        return _MISS

    def store_extent_bits(self, predicate: "Predicate", bits: int | None) -> None:
        """Record a predicate's extent bitmask for the current version."""
        try:
            self._extent_cache[predicate] = (self.graph.version, bits)
        except (TypeError, NotImplementedError):
            pass

    def clear_extent_cache(self) -> None:
        """Drop every cached extent (stats counters are kept)."""
        self._extent_cache.clear()
        self._universe_bits = None
        self._plan_cache.clear()
        self._leaf_container_cache.clear()
        self._universe_container = None
        self._facet_postings = None
        self._path_cache.clear()

    def path_extent(self, path: "Path") -> set[Node]:
        """The exact extent of a :class:`Path`, memoized per graph version.

        Keyed on (predicate, graph version) like every other extent
        cache here, so both epoch publishes (each epoch carries a fresh
        context) and in-place mutation (version bump) invalidate stale
        walks naturally.  Returns a fresh set; the memo itself is
        immutable.
        """
        entry = self._path_cache.get(path)
        if entry is not None:
            if entry[0] == self.graph.version:
                self.path_stats.record_hit()
                return set(entry[1])
            self.path_stats.record_invalidation()
        self.path_stats.record_miss()
        extent = path._compute_extent(self)
        self._path_cache[path] = (self.graph.version, frozenset(extent))
        return extent

    # ------------------------------------------------------------------
    # Compressed containers and compiled plans (performance layer)
    # ------------------------------------------------------------------

    def containers_of(self, nodes: Iterable[Node]) -> RoaringBitmap:
        """A compressed container over the nodes' ids (minting as needed)."""
        intern = self.graph.interner.intern
        return RoaringBitmap.from_ids(intern(node) for node in nodes)

    def nodes_of_container(self, container: RoaringBitmap) -> set[Node]:
        """The node set a compressed container denotes."""
        node_at = self.graph.interner.node_at
        return {node_at(idx) for idx in container.iter_ids()}

    def universe_container(self) -> RoaringBitmap:
        """The universe as a cached, run-optimized compressed container.

        Keyed like :meth:`universe_bits` — on (graph version, universe
        size) — so graph mutations and in-place universe growth both
        refresh it.  Universe ids are dense first-seen intern ids, so
        run containers typically collapse the whole thing to a handful
        of intervals.
        """
        universe = self.universe
        key = (self.graph.version, len(universe))
        cached = self._universe_container
        if cached is not None and cached[0] == key:
            return cached[1]
        container = self.containers_of(universe).run_optimize()
        self._universe_container = (key, container)
        return container

    def cached_plan(self, predicate: "Predicate"):
        """A cached plan, ``None`` (cached fall-back decision), or _MISS."""
        try:
            entry = self._plan_cache.get(predicate)
        except (TypeError, NotImplementedError):
            return _MISS
        if entry is not None:
            if entry[0] == self.graph.version:
                self.plan_stats.record_hit()
                return entry[1]
            self.plan_stats.record_invalidation()
        self.plan_stats.record_miss()
        return _MISS

    def store_plan(
        self, predicate: "Predicate", plan: "CompiledPlan | None"
    ) -> None:
        """Record a predicate's compiled plan for the current version."""
        try:
            self._plan_cache[predicate] = (self.graph.version, plan)
        except (TypeError, NotImplementedError):
            pass

    def cached_leaf_container(self, predicate: "Predicate"):
        """A cached leaf extent container or _MISS."""
        try:
            entry = self._leaf_container_cache.get(predicate)
        except (TypeError, NotImplementedError):
            return _MISS
        if entry is not None:
            if entry[0] == self.graph.version:
                self.container_stats.record_hit()
                return entry[1]
            self.container_stats.record_invalidation()
        self.container_stats.record_miss()
        return _MISS

    def store_leaf_container(
        self, predicate: "Predicate", container: RoaringBitmap
    ) -> None:
        """Record a leaf extent container for the current version."""
        try:
            self._leaf_container_cache[predicate] = (
                self.graph.version,
                container,
            )
        except (TypeError, NotImplementedError):
            pass

    def facet_postings(self) -> "FacetPostings":
        """Version-pinned facet postings over the current universe.

        Built lazily on first use and rebuilt whenever the graph version
        (or the universe size, which ``Workspace.add_item`` grows in
        place) moves on.
        """
        from ..perf.postings import FacetPostings

        universe = self.universe
        postings = self._facet_postings
        if (
            postings is not None
            and postings.version == self.graph.version
            and postings.n_items == len(universe)
        ):
            return postings
        with self._postings_lock:
            postings = self._facet_postings
            if (
                postings is not None
                and postings.version == self.graph.version
                and postings.n_items == len(universe)
            ):
                return postings
            # Build in graph-insertion order: profile() walks items in
            # collection order, which matches it — keeping the record
            # sweep sequential instead of pointer-chasing a set-ordered
            # dict (measurably ~1.7x at 64k items).
            ordered = [s for s in self.graph.subjects() if s in universe]
            if len(ordered) != len(universe):
                # a custom universe may hold nodes with no triples
                ordered.extend(universe.difference(ordered))
            postings = FacetPostings.build(self.graph, self.schema, ordered)
            self._facet_postings = postings
        return postings

    def ordered_universe(self) -> list[Node]:
        """The universe in facet-sweep order (graph insertion + strays)."""
        universe = self.universe
        ordered = [s for s in self.graph.subjects() if s in universe]
        if len(ordered) != len(universe):
            ordered.extend(universe.difference(ordered))
        return ordered

    def facet_postings_if_built(self) -> "FacetPostings | None":
        """The current facet postings if already built, else None.

        Epoch folds consult this to advance the prior epoch's postings
        instead of rebuilding; a never-warmed context stays lazy.
        """
        with self._postings_lock:
            return self._facet_postings

    def adopt_facet_postings(self, postings: "FacetPostings") -> None:
        """Install pre-built postings (an epoch fold carries them over)."""
        with self._postings_lock:
            self._facet_postings = postings


class Predicate:
    """Base class for all query predicates."""

    def matches(self, item: Node, context: QueryContext) -> bool:
        """True when the item satisfies the predicate."""
        raise NotImplementedError

    def candidates(self, context: QueryContext) -> Optional[set[Node]]:
        """The predicate's extent from an index, or None if unknown.

        A non-None return must be exact (it is intersected, not
        re-checked).
        """
        return None

    def describe(self, context: QueryContext) -> str:
        """Human-readable rendering for the constraint chips (§3.2)."""
        raise NotImplementedError

    # Compact combinator sugar so analysts can compose predicates.

    def __and__(self, other: "Predicate") -> "And":
        return And([self, other])

    def __or__(self, other: "Predicate") -> "Or":
        return Or([self, other])

    def __invert__(self) -> "Predicate":
        return self.negated()

    def negated(self) -> "Predicate":
        """The predicate's negation (double negation collapses)."""
        return Not(self)

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self._key() == other._key()

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key()))

    def _key(self):
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self._key()!r})"


class HasValue(Predicate):
    """item has (property, value) — the basic metadata constraint."""

    def __init__(self, prop: Resource, value: Node):
        self.prop = prop
        self.value = value

    def _key(self):
        return (self.prop, self.value)

    def matches(self, item: Node, context: QueryContext) -> bool:
        return (item, self.prop, self.value) in context.graph

    def candidates(self, context: QueryContext) -> set[Node]:
        return set(context.graph.subjects(self.prop, self.value))

    def describe(self, context: QueryContext) -> str:
        prop = context.schema.label(self.prop)
        value = context.schema.label(self.value)
        return f"{prop}: {value}"


class HasProperty(Predicate):
    """item carries the property at all (any value)."""

    def __init__(self, prop: Resource):
        self.prop = prop

    def _key(self):
        return (self.prop,)

    def matches(self, item: Node, context: QueryContext) -> bool:
        return any(True for _ in context.graph.objects(item, self.prop))

    def candidates(self, context: QueryContext) -> set[Node]:
        return set(context.graph.subjects(self.prop))

    def describe(self, context: QueryContext) -> str:
        return f"has {context.schema.label(self.prop)}"


class TypeIs(HasValue):
    """item is of an rdf:type — sugar over :class:`HasValue`."""

    def __init__(self, rdf_type: Resource):
        super().__init__(RDF.type, rdf_type)

    def describe(self, context: QueryContext) -> str:
        return f"type: {context.schema.label(self.value)}"


class TextMatch(Predicate):
    """Full-text constraint resolved by the external index (§4.2).

    ``within`` restricts the match to one property's values ("words in
    the title" vs "words in the body", §3.2/§4.1).
    """

    def __init__(self, text: str, within: Resource | None = None):
        self.text = text
        self.within = within

    def _key(self):
        return (self.text, self.within)

    def matches(self, item: Node, context: QueryContext) -> bool:
        return item in self._extent(context)

    def candidates(self, context: QueryContext) -> set[Node]:
        return self._extent(context)

    def _extent(self, context: QueryContext) -> set[Node]:
        if context.text_index is None:
            raise RuntimeError(
                "TextMatch requires a text index on the query context"
            )
        return context.text_index.search(self.text, within=self.within)

    def describe(self, context: QueryContext) -> str:
        if self.within is not None:
            return f"{context.schema.label(self.within)} contains: {self.text!r}"
        return f"contains: {self.text!r}"


class Range(Predicate):
    """Numeric/temporal range comparison (§4.2, §5.4; Figure 5).

    Bounds are inclusive; either may be None for a one-sided comparison
    (the "greater than and less than predicates" extension).
    """

    def __init__(
        self,
        prop: Resource,
        low: float | None = None,
        high: float | None = None,
    ):
        if low is None and high is None:
            raise ValueError("Range needs at least one bound")
        if low is not None and high is not None and low > high:
            raise ValueError(f"empty range: low {low} > high {high}")
        self.prop = prop
        self.low = low
        self.high = high

    def _key(self):
        return (self.prop, self.low, self.high)

    def matches(self, item: Node, context: QueryContext) -> bool:
        for value in context.graph.objects(item, self.prop):
            if not isinstance(value, Literal):
                continue
            number = value.as_number()
            # NaN readings compare False against both bounds, so without
            # this guard a NaN value would satisfy *every* range.
            if number is None or math.isnan(number):
                continue
            if self.low is not None and number < self.low:
                continue
            if self.high is not None and number > self.high:
                continue
            return True
        return False

    def candidates(self, context: QueryContext) -> set[Node]:
        found: set[Node] = set()
        for subject, _p, value in context.graph.triples(None, self.prop, None):
            if not isinstance(value, Literal):
                continue
            number = value.as_number()
            if number is None or math.isnan(number):
                continue
            if self.low is not None and number < self.low:
                continue
            if self.high is not None and number > self.high:
                continue
            found.add(subject)
        return found

    def describe(self, context: QueryContext) -> str:
        prop = context.schema.label(self.prop)
        if self.low is None:
            return f"{prop} ≤ {self.high:g}"
        if self.high is None:
            return f"{prop} ≥ {self.low:g}"
        return f"{prop} in [{self.low:g}, {self.high:g}]"


@dataclass(frozen=True)
class PathStep:
    """One hop of a property path.

    ``inverse`` walks the property backwards (object → subject);
    ``closure`` is ``""`` for exactly one application, ``"+"`` for one
    or more, ``"*"`` for zero or more.
    """

    prop: Resource
    inverse: bool = False
    closure: str = ""

    CLOSURES = ("", "+", "*")

    def __post_init__(self):
        if self.closure not in self.CLOSURES:
            raise ValueError(
                f"closure must be one of {self.CLOSURES}, got {self.closure!r}"
            )


def _path_step_once(graph: Graph, nodes: Iterable[Node], step: PathStep):
    """Image of ``nodes`` under a single application of ``step.prop``."""
    out: set[Node] = set()
    if step.inverse:
        for node in nodes:
            out.update(graph.subjects(step.prop, node))
    else:
        for node in nodes:
            out.update(graph.objects(node, step.prop))
    return out


def _path_advance(graph: Graph, frontier: set[Node], step: PathStep):
    """Image of ``frontier`` under a full step, closure included.

    Closures run a breadth-first walk with a visited set, so cyclic
    graphs (including self-loops) terminate: a node is expanded at most
    once no matter how many cycles reach it.
    """
    if step.closure == "":
        return _path_step_once(graph, frontier, step)
    if step.closure == "*":
        reached = set(frontier)
    else:  # "+": at least one application before the closure
        reached = _path_step_once(graph, frontier, step)
    queue = deque(reached)
    while queue:
        node = queue.popleft()
        for nxt in _path_step_once(graph, (node,), step):
            if nxt not in reached:
                reached.add(nxt)
                queue.append(nxt)
    return reached


class Path(Predicate):
    """Multi-hop reachability over the graph — a property path (§4.2).

    A sequence of :class:`PathStep` hops applied left to right:
    ``author/affiliation`` reaches the item's authors' affiliations,
    ``^cites`` walks citations backwards (who cites me), ``cites+`` is
    transitive closure.  With ``value`` set the path must reach that
    node; with ``value=None`` it must merely be non-empty.

    ``matches`` walks forward from the item; ``candidates`` evaluates
    the *pre-image* backward from the value over the POS/SPO indexes —
    one walk for the whole extent instead of one per item — and is
    memoized per graph version via :meth:`QueryContext.path_extent`, so
    all three engine modes (per-item, bitset, compiled) answer from the
    same cached container once warmed.
    """

    def __init__(
        self, steps: Sequence[PathStep | Resource], value: Node | None = None
    ):
        converted = tuple(
            step if isinstance(step, PathStep) else PathStep(step)
            for step in steps
        )
        if not converted:
            raise ValueError("Path needs at least one step")
        self.steps = converted
        self.value = value

    def _key(self):
        return (self.steps, self.value)

    def matches(self, item: Node, context: QueryContext) -> bool:
        graph = context.graph
        frontier = {item}
        for step in self.steps:
            frontier = _path_advance(graph, frontier, step)
            if not frontier:
                return False
        if self.value is None:
            return True
        return self.value in frontier

    def candidates(self, context: QueryContext) -> set[Node]:
        return context.path_extent(self)

    def _compute_extent(self, context: QueryContext) -> set[Node]:
        """Backward pre-image evaluation (the cache-miss work).

        Walks the steps right to left: each hop's pre-image is its
        forward image with ``inverse`` flipped (closures commute with
        reversal), cycle-safe by the same BFS.  ``targets=None`` is the
        symbolic "any node" an unconstrained tail denotes — a ``*`` hop
        keeps it (zero applications reach anything from anywhere), a
        concrete hop collapses it to the nodes with at least one edge.
        """
        graph = context.graph
        targets: set[Node] | None = (
            None if self.value is None else {self.value}
        )
        for step in reversed(self.steps):
            if targets is None:
                if step.closure == "*":
                    continue
                if step.inverse:
                    targets = set(graph.objects(None, step.prop))
                else:
                    targets = set(graph.subjects(step.prop))
            else:
                back = PathStep(step.prop, not step.inverse, step.closure)
                targets = _path_advance(graph, targets, back)
            if not targets:
                return set()
        if targets is None:
            return set(context.universe)
        return targets & context.universe

    def describe(self, context: QueryContext) -> str:
        rendered = []
        for step in self.steps:
            text = context.schema.label(step.prop)
            if step.inverse:
                text = "^" + text
            rendered.append(text + step.closure)
        path = "/".join(rendered)
        if self.value is None:
            return f"has {path}"
        return f"{path}: {context.schema.label(self.value)}"


class PathValue(Predicate):
    """A value reached through a property chain (composed attribute).

    Supports the CAS-style structural queries of §6.2 — e.g. INEX's
    "vitae of graduate students researching Information Retrieval" needs
    constraints several steps into the structure.
    """

    def __init__(self, chain: Sequence[Resource], value: Node):
        if not chain:
            raise ValueError("PathValue needs a non-empty chain")
        self.chain = tuple(chain)
        self.value = value

    def _key(self):
        return (self.chain, self.value)

    def matches(self, item: Node, context: QueryContext) -> bool:
        return self.value in compose_values(context.graph, item, self.chain)

    def describe(self, context: QueryContext) -> str:
        path = " → ".join(context.schema.label(p) for p in self.chain)
        return f"{path}: {context.schema.label(self.value)}"


class ValueIn(Predicate):
    """Quantified membership in a browsed value set (§3.3).

    The browse-and-apply flow — refine the collection of ingredients,
    then keep recipes whose ingredients fall in the refined set — needs
    a predicate over a *set* of values with an any/all quantifier:

    * ``any`` — the item has at least one value of ``prop`` in the set;
    * ``all`` — the item has values for ``prop`` and every one is in
      the set.
    """

    QUANTIFIERS = ("any", "all")

    def __init__(self, prop: Resource, values, quantifier: str = "any"):
        if quantifier not in self.QUANTIFIERS:
            raise ValueError(f"quantifier must be one of {self.QUANTIFIERS}")
        self.prop = prop
        self.values = frozenset(values)
        self.quantifier = quantifier

    def _key(self):
        return (self.prop, self.values, self.quantifier)

    def matches(self, item: Node, context: QueryContext) -> bool:
        item_values = set(context.graph.objects(item, self.prop))
        if not item_values:
            return False
        if self.quantifier == "any":
            return bool(item_values & self.values)
        return item_values <= self.values

    def candidates(self, context: QueryContext) -> set[Node]:
        if self.quantifier == "any":
            found: set[Node] = set()
            for value in self.values:
                found.update(context.graph.subjects(self.prop, value))
            return found
        return {
            item
            for item in context.graph.subjects(self.prop)
            if self.matches(item, context)
        }

    def describe(self, context: QueryContext) -> str:
        prop = context.schema.label(self.prop)
        word = "an" if self.quantifier == "any" else "every"
        return f"{word} {prop} in a set of {len(self.values)}"


class Cardinality(Predicate):
    """Bound on how many values an item has for a property.

    §6.2 names "all recipes having 5 or fewer ingredients" as a query
    Magnet's default interface could not express; this extension
    predicate supplies it.
    """

    def __init__(
        self,
        prop: Resource,
        at_least: int | None = None,
        at_most: int | None = None,
    ):
        if at_least is None and at_most is None:
            raise ValueError("Cardinality needs at least one bound")
        self.prop = prop
        self.at_least = at_least
        self.at_most = at_most

    def _key(self):
        return (self.prop, self.at_least, self.at_most)

    def matches(self, item: Node, context: QueryContext) -> bool:
        count = sum(1 for _ in context.graph.objects(item, self.prop))
        if self.at_least is not None and count < self.at_least:
            return False
        if self.at_most is not None and count > self.at_most:
            return False
        return True

    def describe(self, context: QueryContext) -> str:
        prop = context.schema.label(self.prop)
        if self.at_least is None:
            return f"≤ {self.at_most} {prop}"
        if self.at_most is None:
            return f"≥ {self.at_least} {prop}"
        return f"{self.at_least}–{self.at_most} {prop}"


class And(Predicate):
    """Conjunction — the default combination of suggestions (§4.2)."""

    def __init__(self, parts: Sequence[Predicate]):
        self.parts = tuple(parts)

    def _key(self):
        return self.parts

    def matches(self, item: Node, context: QueryContext) -> bool:
        return all(part.matches(item, context) for part in self.parts)

    def candidates(self, context: QueryContext) -> Optional[set[Node]]:
        known = [part.candidates(context) for part in self.parts]
        exact = [c for c in known if c is not None]
        if len(exact) != len(known):
            # Some parts can't enumerate; the engine must filter.
            return None
        if not exact:
            return set(context.universe)
        result = set(min(exact, key=len))
        for extent in exact:
            result &= extent
            if not result:
                break
        return result

    def describe(self, context: QueryContext) -> str:
        if not self.parts:
            return "everything"
        return " AND ".join(
            _parenthesize(part, context) for part in self.parts
        )


class Or(Predicate):
    """Disjunction, reachable via the context menu (§3.3)."""

    def __init__(self, parts: Sequence[Predicate]):
        self.parts = tuple(parts)

    def _key(self):
        return self.parts

    def matches(self, item: Node, context: QueryContext) -> bool:
        return any(part.matches(item, context) for part in self.parts)

    def candidates(self, context: QueryContext) -> Optional[set[Node]]:
        result: set[Node] = set()
        for part in self.parts:
            extent = part.candidates(context)
            if extent is None:
                return None
            result |= extent
        return result

    def describe(self, context: QueryContext) -> str:
        if not self.parts:
            return "nothing"
        return " OR ".join(_parenthesize(part, context) for part in self.parts)


class Not(Predicate):
    """Negation of a constraint (§3.2's context-menu negation)."""

    def __init__(self, part: Predicate):
        self.part = part

    def _key(self):
        return (self.part,)

    def negated(self) -> Predicate:
        return self.part

    def matches(self, item: Node, context: QueryContext) -> bool:
        return not self.part.matches(item, context)

    def candidates(self, context: QueryContext) -> Optional[set[Node]]:
        extent = self.part.candidates(context)
        if extent is None:
            return None
        return context.universe - extent

    def describe(self, context: QueryContext) -> str:
        return f"NOT {_parenthesize(self.part, context)}"


def _parenthesize(part: Predicate, context: QueryContext) -> str:
    text = part.describe(context)
    if isinstance(part, (And, Or)) and len(part.parts) > 1:
        return f"({text})"
    return text
