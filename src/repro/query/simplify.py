"""Boolean simplification of predicate trees.

Interactive refinement builds queries incrementally — click, negate,
compound, undo — which leaves trees with nested conjunctions, duplicate
constraints, and double negations.  The simplifier normalizes them so
the constraint chips stay readable and evaluation does no redundant
work:

* ``And``/``Or`` of the same kind are flattened;
* duplicate branches are dropped (first occurrence kept);
* ``Not(Not(p))`` collapses to ``p``;
* one-element combinations unwrap;
* a branch and its complement short-circuit: ``And([p, ¬p, ...])`` is
  the empty ``Or([])`` (matches nothing), ``Or([p, ¬p, ...])`` the
  empty ``And([])`` (matches everything);
* a single-hop forward :class:`~repro.query.ast.Path` without closure
  is the predicate it abbreviates: ``Path([p], v)`` ≡ ``HasValue(p, v)``
  and ``Path([p])`` ≡ ``HasProperty(p)`` — normalizing keeps the chip
  text and the extent caches from splitting over two spellings.

The transformation preserves extension: for every item and context,
``simplify(p)`` matches exactly when ``p`` does (property-tested).
"""

from __future__ import annotations

from .ast import And, HasProperty, HasValue, Not, Or, Path, Predicate

__all__ = ["simplify"]


def simplify(predicate: Predicate) -> Predicate:
    """Return an extension-equivalent, normalized predicate."""
    if isinstance(predicate, Not):
        inner = simplify(predicate.part)
        if isinstance(inner, Not):
            return inner.part
        return Not(inner)
    if isinstance(predicate, (And, Or)):
        return _simplify_combination(predicate)
    if isinstance(predicate, Path):
        return _simplify_path(predicate)
    return predicate


def _simplify_path(predicate: Path) -> Predicate:
    """Collapse a trivial one-hop path to its single-predicate form."""
    if len(predicate.steps) != 1:
        return predicate
    step = predicate.steps[0]
    if step.inverse or step.closure:
        return predicate
    if predicate.value is None:
        return HasProperty(step.prop)
    return HasValue(step.prop, predicate.value)


def _simplify_combination(predicate: And | Or) -> Predicate:
    kind = type(predicate)
    flattened: list[Predicate] = []
    seen: set[Predicate] = set()
    for part in predicate.parts:
        part = simplify(part)
        branches = part.parts if isinstance(part, kind) else (part,)
        for branch in branches:
            if branch not in seen:
                seen.add(branch)
                flattened.append(branch)
    # Complementary pair → constant.
    for branch in flattened:
        complement = branch.part if isinstance(branch, Not) else Not(branch)
        if complement in seen:
            # And with p∧¬p is unsatisfiable → empty Or (false);
            # Or with p∨¬p is trivially true → empty And (true).
            return Or([]) if kind is And else And([])
    if len(flattened) == 1:
        return flattened[0]
    return kind(flattened)
