"""Query preview for continuous attributes (§5.4, Figure 5).

The range-selection control shows "hatch marks to represent documents,
thus showing a form of query preview": a histogram of the attribute's
values over the current collection, plus the count that would survive a
candidate [low, high] selection.
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right
from typing import Iterable, Sequence

from ..rdf.graph import Graph
from ..rdf.terms import Literal, Node, Resource

__all__ = ["RangePreview", "collect_values"]


def collect_values(
    graph: Graph, items: Iterable[Node], prop: Resource
) -> list[float]:
    """All numeric readings of a property across a collection (sorted).

    Items may contribute several values (multi-valued attributes);
    non-numeric values are skipped — as are non-finite readings, since a
    single NaN in a "sorted" list silently breaks the bisection that
    :meth:`RangePreview.count_between` relies on.
    """
    values: list[float] = []
    for item in items:
        for value in graph.objects(item, prop):
            if not isinstance(value, Literal):
                continue
            number = value.as_number()
            if number is not None and math.isfinite(number):
                values.append(number)
    values.sort()
    return values


class RangePreview:
    """Histogram + slider state for one continuous attribute.

    Mirrors Figure 5's control: two sliders select the boundary, hatch
    marks preview the document distribution.
    """

    def __init__(self, values: Sequence[float], buckets: int = 20):
        if buckets <= 0:
            raise ValueError("buckets must be positive")
        self.values = sorted(values)
        self.buckets = buckets

    @property
    def is_empty(self) -> bool:
        return not self.values

    @property
    def low(self) -> float:
        return self.values[0] if self.values else 0.0

    @property
    def high(self) -> float:
        return self.values[-1] if self.values else 0.0

    def histogram(self) -> list[int]:
        """Per-bucket document counts over [low, high]."""
        counts = [0] * self.buckets
        if not self.values:
            return counts
        width = self.high - self.low
        for value in self.values:
            if width == 0.0:
                index = 0
            else:
                index = min(
                    self.buckets - 1,
                    int((value - self.low) / width * self.buckets),
                )
            counts[index] += 1
        return counts

    def count_between(self, low: float | None, high: float | None) -> int:
        """How many readings a [low, high] slider selection keeps.

        ``values`` is kept sorted, so the kept span is a contiguous
        slice located by bisection — dragging a slider costs O(log n)
        per preview instead of a full scan.
        """
        values = self.values
        start = 0 if low is None else bisect_left(values, low)
        end = len(values) if high is None else bisect_right(values, high)
        return max(0, end - start)

    def hatch_marks(self, width: int = 40) -> str:
        """An ASCII rendering of the hatch-mark strip.

        Each column shows density on a four-step scale — the textual
        stand-in for Figure 5's graphical control.
        """
        counts = self.histogram() if self.buckets == width else self._rebucket(width)
        peak = max(counts) if counts else 0
        if peak == 0:
            return " " * width
        glyphs = " .:|"
        out = []
        for count in counts:
            level = 0 if count == 0 else 1 + min(2, (count * 3 - 1) // peak)
            out.append(glyphs[level])
        return "".join(out)

    def _rebucket(self, width: int) -> list[int]:
        return RangePreview(self.values, buckets=width).histogram()

    def __repr__(self) -> str:
        if self.is_empty:
            return "<RangePreview empty>"
        return (
            f"<RangePreview n={len(self.values)} "
            f"[{self.low:g}, {self.high:g}] buckets={self.buckets}>"
        )
