"""A small textual query language for the toolbar and examples.

The paper's users start searches "by specifying keywords ... in the
toolbar" (§3.1); power users combine constraints with and/or/not (§3.3).
This parser provides a compact surface syntax covering both:

    greek parsley                      → TextMatch AND TextMatch
    cuisine:Greek AND ingredient:parsley
    NOT ingredient:walnuts
    (course:Dessert OR course:Salad) AND cuisine:Mexican
    area >= 100000                     → Range
    ingredients <= 5                   → Cardinality (with a resolver)
    author/affiliation:MIT             → Path (two forward hops)
    ^cites:paper42                     → Path (inverse hop: cited by)
    cites+:paper42  /  knows*          → Path (transitive closure)

Path specs split on ``/`` *outside* quotes, so a property whose name
contains a slash can be quoted per segment ("a/b"/c is two hops).
A field or bare word that looks like a path but whose segments do not
all resolve to properties falls back to plain text matching, exactly
like an unresolved ``field:`` does.

Grammar (precedence low→high):  expr := or ; or := and (OR and)* ;
and := unary ((AND)? unary)* ; unary := NOT unary | '(' expr ')' | leaf.
Adjacent terms are implicitly conjoined, like search-engine syntax.
"""

from __future__ import annotations

import re
from typing import Callable

from ..rdf.terms import Literal, Node, Resource
from .ast import (
    And,
    HasValue,
    Not,
    Or,
    Path,
    PathStep,
    Predicate,
    Range,
    TextMatch,
)

__all__ = ["QueryParseError", "QueryParser", "split_path_spec"]


class QueryParseError(ValueError):
    """Raised on malformed query text."""


_TOKEN = re.compile(
    r"""
    \s*(?:
        (?P<lparen>\() |
        (?P<rparen>\)) |
        (?P<op><=|>=|=) |
        (?P<colon>:) |
        (?P<quoted>"(?:[^"\\]|\\.)*") |
        (?P<word>[^\s():"<>=\\]+)
    )
    """,
    re.VERBOSE,
)

#: Resolves a field name to a property Resource (or None to treat the
#: token as plain text).
PropertyResolver = Callable[[str], Resource | None]
#: Resolves (property, value text) to the Node used in a HasValue.
ValueResolver = Callable[[Resource, str], Node]


def _default_value_resolver(prop: Resource, text: str) -> Node:
    return Literal(text)


class QueryParser:
    """Parses query text into a :class:`Predicate` tree.

    ``resolve_property`` maps field names (the part before ``:``) to
    property resources; when it returns None the whole term is treated
    as a keyword.  ``resolve_value`` maps the value text to a term —
    datasets typically resolve facet values to their resources.
    """

    def __init__(
        self,
        resolve_property: PropertyResolver | None = None,
        resolve_value: ValueResolver | None = None,
    ):
        self.resolve_property = resolve_property or (lambda name: None)
        self.resolve_value = resolve_value or _default_value_resolver

    def parse(self, text: str) -> Predicate:
        """Parse query text; raises :class:`QueryParseError` on errors."""
        tokens = self._lex(text)
        if not tokens:
            raise QueryParseError("empty query")
        predicate, pos = self._parse_or(tokens, 0)
        if pos != len(tokens):
            raise QueryParseError(f"unexpected token {tokens[pos][1]!r}")
        return predicate

    # -- lexer ----------------------------------------------------------

    @staticmethod
    def _lex(text: str) -> list[tuple[str, str]]:
        tokens: list[tuple[str, str]] = []
        pos = 0
        while pos < len(text):
            match = _TOKEN.match(text, pos)
            if match is None or match.end() == pos:
                # No token group matched: either only trailing
                # whitespace remains, or the next character is one the
                # grammar has no use for (a bare '<'/'>', a stray '\',
                # an unterminated quote, ...).  Report it precisely —
                # silently skipping it would mis-parse the query, and
                # not advancing would loop forever.
                cursor = pos
                while cursor < len(text) and text[cursor].isspace():
                    cursor += 1
                if cursor >= len(text):
                    break
                raise QueryParseError(
                    f"cannot lex {text[cursor]!r} at position {cursor}"
                )
            pos = match.end()
            for kind in ("lparen", "rparen", "op", "colon", "quoted", "word"):
                value = match.group(kind)
                if value is not None:
                    tokens.append((kind, value))
                    break
        return tokens

    # -- recursive descent ------------------------------------------------

    def _parse_or(self, tokens, pos):
        left, pos = self._parse_and(tokens, pos)
        parts = [left]
        while pos < len(tokens) and _is_keyword(tokens[pos], "OR"):
            right, pos = self._parse_and(tokens, pos + 1)
            parts.append(right)
        return (parts[0] if len(parts) == 1 else Or(parts)), pos

    def _parse_and(self, tokens, pos):
        left, pos = self._parse_unary(tokens, pos)
        parts = [left]
        while pos < len(tokens):
            kind, value = tokens[pos]
            if _is_keyword(tokens[pos], "AND"):
                right, pos = self._parse_unary(tokens, pos + 1)
                parts.append(right)
                continue
            if _is_keyword(tokens[pos], "OR") or kind == "rparen":
                break
            # Implicit conjunction of adjacent terms.
            right, pos = self._parse_unary(tokens, pos)
            parts.append(right)
        return (parts[0] if len(parts) == 1 else And(parts)), pos

    def _parse_unary(self, tokens, pos):
        if pos >= len(tokens):
            raise QueryParseError("unexpected end of query")
        kind, value = tokens[pos]
        if _is_keyword(tokens[pos], "NOT"):
            inner, pos = self._parse_unary(tokens, pos + 1)
            return Not(inner), pos
        if kind == "lparen":
            inner, pos = self._parse_or(tokens, pos + 1)
            if pos >= len(tokens) or tokens[pos][0] != "rparen":
                raise QueryParseError("missing closing parenthesis")
            return inner, pos + 1
        return self._parse_leaf(tokens, pos)

    def _parse_leaf(self, tokens, pos):
        kind, value = tokens[pos]
        if kind == "quoted":
            return TextMatch(_unquote(value)), pos + 1
        if kind != "word":
            raise QueryParseError(f"unexpected token {value!r}")
        # Lookahead for field:value / field>=n / field<=n forms.
        if pos + 1 < len(tokens):
            next_kind, next_value = tokens[pos + 1]
            if next_kind == "colon":
                return self._parse_field_value(tokens, pos, value)
            if next_kind == "op":
                return self._parse_comparison(tokens, pos, value, next_value)
        if _looks_like_path(value):
            steps = self._resolve_path(value)
            if steps is not None:
                return Path(steps), pos + 1
        return TextMatch(value), pos + 1

    def _parse_field_value(self, tokens, pos, field):
        if pos + 2 >= len(tokens) or tokens[pos + 2][0] not in ("word", "quoted"):
            raise QueryParseError(f"missing value after {field!r}:")
        raw = tokens[pos + 2][1]
        text = _unquote(raw) if raw.startswith('"') else raw
        if _looks_like_path(field):
            steps = self._resolve_path(field)
            if steps is None:
                return TextMatch(f"{field} {text}"), pos + 3
            value = self.resolve_value(steps[-1].prop, text)
            return Path(steps, value), pos + 3
        prop = self.resolve_property(field)
        if prop is None:
            return TextMatch(f"{field} {text}"), pos + 3
        return HasValue(prop, self.resolve_value(prop, text)), pos + 3

    def _resolve_path(self, spec: str) -> tuple[PathStep, ...] | None:
        """Resolve a path spec to steps, or None when any step is unknown."""
        steps: list[PathStep] = []
        for segment in split_path_spec(spec):
            inverse = segment.startswith("^")
            if inverse:
                segment = segment[1:]
            closure = ""
            if segment and not segment.startswith('"') and segment[-1] in "+*":
                closure = segment[-1]
                segment = segment[:-1]
            if segment.startswith('"'):
                if len(segment) >= 2 and segment.endswith('"'):
                    name = _unquote(segment)
                elif segment[-1] in "+*" and segment[-2:-1] == '"':
                    closure = segment[-1]
                    name = _unquote(segment[:-1])
                else:
                    raise QueryParseError(
                        f"unterminated quote in path step {segment!r}"
                    )
            else:
                name = segment
            if not name:
                raise QueryParseError(f"empty step in path {spec!r}")
            prop = self.resolve_property(name)
            if prop is None:
                return None
            steps.append(PathStep(prop, inverse=inverse, closure=closure))
        return tuple(steps)

    def _parse_comparison(self, tokens, pos, field, op):
        if pos + 2 >= len(tokens) or tokens[pos + 2][0] not in ("word", "quoted"):
            raise QueryParseError(f"missing number after {field!r} {op}")
        kind, raw = tokens[pos + 2]
        text = _unquote(raw) if kind == "quoted" else raw
        try:
            number = float(text)
        except ValueError:
            raise QueryParseError(f"{text!r} is not a number") from None
        prop = self.resolve_property(field)
        if prop is None:
            raise QueryParseError(f"unknown field {field!r} in comparison")
        if op == ">=":
            return Range(prop, low=number), pos + 3
        if op == "<=":
            return Range(prop, high=number), pos + 3
        return Range(prop, low=number, high=number), pos + 3


def _looks_like_path(field: str) -> bool:
    """Whether a field/word token should attempt path-spec resolution."""
    return "/" in field or field.startswith("^") or field.endswith(("+", "*"))


def split_path_spec(text: str) -> list[str]:
    """Split a path spec on ``/`` outside quotes.

    Quoted runs (``"a/b"``) protect their slashes, so property names
    containing ``/`` remain addressable one segment at a time.  Raises
    :class:`QueryParseError` on an unterminated quote or empty step.
    """
    segments: list[str] = []
    buf: list[str] = []
    pos = 0
    while pos < len(text):
        ch = text[pos]
        if ch == '"':
            end = pos + 1
            while end < len(text) and text[end] != '"':
                end += 2 if text[end] == "\\" else 1
            if end >= len(text):
                raise QueryParseError(f"unterminated quote in path {text!r}")
            buf.append(text[pos : end + 1])
            pos = end + 1
            continue
        if ch == "/":
            segments.append("".join(buf))
            buf = []
            pos += 1
            continue
        buf.append(ch)
        pos += 1
    segments.append("".join(buf))
    if any(not segment for segment in segments):
        raise QueryParseError(f"empty step in path {text!r}")
    return segments


def _is_keyword(token: tuple[str, str], keyword: str) -> bool:
    return token[0] == "word" and token[1].upper() == keyword


_ESCAPE = re.compile(r'\\(["\\])')


def _quote(text: str) -> str:
    """The inverse of :func:`_unquote`: wrap text as a quoted token."""
    return '"' + text.replace("\\", "\\\\").replace('"', '\\"') + '"'


def _unquote(quoted: str) -> str:
    # A single left-to-right pass: sequential str.replace calls can eat
    # a backslash that belonged to the preceding escape sequence.
    return _ESCAPE.sub(r"\1", quoted[1:-1])
