"""Query evaluation with the typed-extension mechanism of §4.2.

The engine resolves predicates to item sets.  Leaf predicates that can
enumerate their extent from an index do so; everything else is filtered
against the context's universe.  ``register_extension`` lets analysts
plug in evaluators for new predicate types without touching the engine —
the paper's mechanism for "a uniform interface to query both metadata
... and other attribute value types".

Evaluation runs over **bitset extents** by default: leaf extents are
interned into Python-int bitmasks and cached on the context keyed by
(predicate, graph version), so And/Or/Not combine as single bitwise
operations and repeated refinement clicks reuse prior work instead of
re-deriving the same sets.  Predicates that cannot enumerate an extent
(extension-only predicates such as ``PathValue``/``Cardinality``, or
trees containing them) fall back transparently to the original
per-item filtering path.  Results are identical either way — only the
time to produce them changes; ``use_bitsets=False`` forces the original
strategy (used by the equivalence tests and benchmarks).
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from ..obs import NULL_OBS, Observability
from ..perf.bitset import popcount
from ..rdf.terms import Node
from .ast import _MISS, And, Not, Or, Predicate, QueryContext

__all__ = ["QueryEngine"]

#: An extension evaluator returns the predicate's exact extent, or None
#: to fall back to per-item matching.
ExtensionEvaluator = Callable[[Predicate, QueryContext], Optional[set[Node]]]


class QueryEngine:
    """Resolves predicates against a :class:`QueryContext`."""

    def __init__(
        self,
        context: QueryContext,
        use_bitsets: bool = True,
        obs: Observability | None = None,
    ):
        self.context = context
        self.use_bitsets = use_bitsets
        self.obs = obs if obs is not None else NULL_OBS
        self._extensions: dict[type, ExtensionEvaluator] = {}

    def register_extension(
        self, predicate_type: type, evaluator: ExtensionEvaluator
    ) -> None:
        """Install an extension evaluator for a predicate type.

        The evaluator is consulted before the predicate's own
        ``candidates``; returning None defers to the default strategy.
        """
        if not issubclass(predicate_type, Predicate):
            raise TypeError("extensions must target Predicate subclasses")
        self._extensions[predicate_type] = evaluator

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def evaluate(
        self, predicate: Predicate, within: Iterable[Node] | None = None
    ) -> set[Node]:
        """The set of items satisfying ``predicate``.

        ``within`` restricts evaluation to a base collection (used when
        refining the current result set); None means the full universe.
        """
        tracer = self.obs.tracer
        if not tracer.enabled:
            return self._evaluate(predicate, within)
        with tracer.span(
            "query.evaluate",
            root=type(predicate).__name__,
            mode="bitset" if self.use_bitsets else "legacy",
        ) as span:
            result = self._evaluate(predicate, within)
            span.set_tag("results", len(result))
            return result

    def _evaluate(
        self, predicate: Predicate, within: Iterable[Node] | None
    ) -> set[Node]:
        context = self.context
        if self.use_bitsets:
            bits = self._root_bits(predicate)
            if bits is not None:
                if within is not None:
                    return context.nodes_of(bits & context.bits_of(within))
                return context.nodes_of(bits & context.universe_bits())
        else:
            extent = self._extent(predicate)
            if extent is not None:
                if within is not None:
                    return extent & set(within)
                return extent & context.universe
        population = set(within) if within is not None else context.universe
        return {
            item
            for item in population
            if predicate.matches(item, context)
        }

    def count(self, predicate: Predicate, within: Iterable[Node] | None = None) -> int:
        """Size of the predicate's result set (used for query previews).

        On the bitset path the count is a popcount — no item set is
        materialized, which is what makes §3.2's per-click previews
        near-free once extents are cached.
        """
        tracer = self.obs.tracer
        if not tracer.enabled:
            return self._count(predicate, within)
        with tracer.span(
            "query.count",
            root=type(predicate).__name__,
            mode="bitset" if self.use_bitsets else "legacy",
        ) as span:
            count = self._count(predicate, within)
            span.set_tag("results", count)
            return count

    def _count(
        self, predicate: Predicate, within: Iterable[Node] | None
    ) -> int:
        if self.use_bitsets:
            bits = self._root_bits(predicate)
            if bits is not None:
                context = self.context
                if within is not None:
                    return popcount(bits & context.bits_of(within))
                return popcount(bits & context.universe_bits())
        return len(self._evaluate(predicate, within))

    def matches(self, predicate: Predicate, item: Node) -> bool:
        """Test a single item."""
        return predicate.matches(item, self.context)

    # ------------------------------------------------------------------
    # Extent resolution
    # ------------------------------------------------------------------

    def _extent(self, predicate: Predicate) -> Optional[set[Node]]:
        evaluator = self._extensions.get(type(predicate))
        if evaluator is not None:
            extent = evaluator(predicate, self.context)
            if extent is not None:
                return extent
        if self.obs.tracer.enabled:
            return self._extent_traced(predicate)
        return predicate.candidates(self.context)

    def _extent_traced(self, predicate: Predicate) -> Optional[set[Node]]:
        """Per-node spans for the legacy strategy.

        Mirrors exactly what ``candidates`` does for the combinators —
        And resolves every part then intersects, Or stops at the first
        unknown part, Not complements against the universe — so the
        result (and any error surfaced along the way) is identical to
        the untraced path; only spans are added.  Extension evaluators
        are *not* consulted here: as on the untraced path, they apply at
        the query root only.
        """
        tracer = self.obs.tracer
        context = self.context
        with tracer.span("query.node", kind=type(predicate).__name__) as span:
            if isinstance(predicate, And):
                parts = [self._extent_traced(part) for part in predicate.parts]
                if any(part is None for part in parts):
                    extent = None
                elif not parts:
                    extent = set(context.universe)
                else:
                    extent = set(min(parts, key=len))
                    for part in parts:
                        extent &= part
            elif isinstance(predicate, Or):
                extent = set()
                for part in predicate.parts:
                    part_extent = self._extent_traced(part)
                    if part_extent is None:
                        extent = None
                        break
                    extent |= part_extent
            elif isinstance(predicate, Not):
                part_extent = self._extent_traced(predicate.part)
                extent = (
                    None
                    if part_extent is None
                    else context.universe - part_extent
                )
            else:
                extent = predicate.candidates(context)
            span.set_tag(
                "extent", "unknown" if extent is None else len(extent)
            )
            return extent

    def _root_bits(self, predicate: Predicate) -> int | None:
        """Extent bitmask of the query root, or None when unknown.

        Mirrors :meth:`_extent`: extension evaluators are consulted only
        for the root predicate (exactly as the set path does), and their
        results are never cached — extension closures may depend on
        state the graph version cannot see.
        """
        evaluator = self._extensions.get(type(predicate))
        if evaluator is not None:
            extent = evaluator(predicate, self.context)
            if extent is not None:
                return self.context.bits_of(extent)
        return self._tree_bits(predicate)

    def _tree_bits(self, predicate: Predicate) -> int | None:
        """Recursive bitset extent; None propagates from unknown leaves.

        With tracing on, every node resolution gets a ``query.node``
        span tagged with the predicate kind and whether the extent cache
        answered — the per-click cache behaviour the performance layer
        lives on, made visible.
        """
        context = self.context
        tracer = self.obs.tracer
        if not tracer.enabled:
            cached = context.cached_extent_bits(predicate)
            if cached is not _MISS:
                return cached
            bits = self._derive_bits(predicate)
            context.store_extent_bits(predicate, bits)
            return bits
        with tracer.span("query.node", kind=type(predicate).__name__) as span:
            cached = context.cached_extent_bits(predicate)
            if cached is not _MISS:
                span.set_tag("cache", "hit")
                return cached
            span.set_tag("cache", "miss")
            bits = self._derive_bits(predicate)
            context.store_extent_bits(predicate, bits)
            return bits

    def _derive_bits(self, predicate: Predicate) -> int | None:
        """Compute a node's extent bitmask (the cache-miss work)."""
        context = self.context
        if isinstance(predicate, And):
            if not predicate.parts:
                bits = context.universe_bits()
            else:
                # No early exit on an empty intersection: every part is
                # still resolved so errors (e.g. TextMatch without a
                # text index) surface exactly as on the set path.
                parts = [self._tree_bits(part) for part in predicate.parts]
                if any(part is None for part in parts):
                    bits = None
                else:
                    bits = parts[0]
                    for part in parts[1:]:
                        bits &= part
        elif isinstance(predicate, Or):
            bits = 0
            for part in predicate.parts:
                part_bits = self._tree_bits(part)
                if part_bits is None:
                    bits = None
                    break
                bits |= part_bits
        elif isinstance(predicate, Not):
            part_bits = self._tree_bits(predicate.part)
            bits = (
                None
                if part_bits is None
                else context.universe_bits() & ~part_bits
            )
        else:
            extent = predicate.candidates(context)
            bits = None if extent is None else context.bits_of(extent)
        return bits

    def __repr__(self) -> str:
        return (
            f"<QueryEngine universe={len(self.context.universe)} "
            f"extensions={sorted(t.__name__ for t in self._extensions)}>"
        )
