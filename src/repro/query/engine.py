"""Query evaluation with the typed-extension mechanism of §4.2.

The engine resolves predicates to item sets.  Leaf predicates that can
enumerate their extent from an index do so; everything else is filtered
against the context's universe.  ``register_extension`` lets analysts
plug in evaluators for new predicate types without touching the engine —
the paper's mechanism for "a uniform interface to query both metadata
... and other attribute value types".
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from ..rdf.terms import Node
from .ast import Predicate, QueryContext

__all__ = ["QueryEngine"]

#: An extension evaluator returns the predicate's exact extent, or None
#: to fall back to per-item matching.
ExtensionEvaluator = Callable[[Predicate, QueryContext], Optional[set[Node]]]


class QueryEngine:
    """Resolves predicates against a :class:`QueryContext`."""

    def __init__(self, context: QueryContext):
        self.context = context
        self._extensions: dict[type, ExtensionEvaluator] = {}

    def register_extension(
        self, predicate_type: type, evaluator: ExtensionEvaluator
    ) -> None:
        """Install an extension evaluator for a predicate type.

        The evaluator is consulted before the predicate's own
        ``candidates``; returning None defers to the default strategy.
        """
        if not issubclass(predicate_type, Predicate):
            raise TypeError("extensions must target Predicate subclasses")
        self._extensions[predicate_type] = evaluator

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def evaluate(
        self, predicate: Predicate, within: Iterable[Node] | None = None
    ) -> set[Node]:
        """The set of items satisfying ``predicate``.

        ``within`` restricts evaluation to a base collection (used when
        refining the current result set); None means the full universe.
        """
        base = set(within) if within is not None else None
        extent = self._extent(predicate)
        if extent is not None:
            if base is not None:
                return extent & base
            return extent & self.context.universe
        population = base if base is not None else self.context.universe
        return {
            item
            for item in population
            if predicate.matches(item, self.context)
        }

    def count(self, predicate: Predicate, within: Iterable[Node] | None = None) -> int:
        """Size of the predicate's result set (used for query previews)."""
        return len(self.evaluate(predicate, within))

    def matches(self, predicate: Predicate, item: Node) -> bool:
        """Test a single item."""
        return predicate.matches(item, self.context)

    def _extent(self, predicate: Predicate) -> Optional[set[Node]]:
        evaluator = self._extensions.get(type(predicate))
        if evaluator is not None:
            extent = evaluator(predicate, self.context)
            if extent is not None:
                return extent
        return predicate.candidates(self.context)

    def __repr__(self) -> str:
        return (
            f"<QueryEngine universe={len(self.context.universe)} "
            f"extensions={sorted(t.__name__ for t in self._extensions)}>"
        )
