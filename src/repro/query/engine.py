"""Query evaluation with the typed-extension mechanism of §4.2.

The engine resolves predicates to item sets.  Leaf predicates that can
enumerate their extent from an index do so; everything else is filtered
against the context's universe.  ``register_extension`` lets analysts
plug in evaluators for new predicate types without touching the engine —
the paper's mechanism for "a uniform interface to query both metadata
... and other attribute value types".

Evaluation runs over **bitset extents** by default: leaf extents are
interned into Python-int bitmasks and cached on the context keyed by
(predicate, graph version), so And/Or/Not combine as single bitwise
operations and repeated refinement clicks reuse prior work instead of
re-deriving the same sets.  ``Path`` leaves enumerate exactly — their
backward reachability walk is memoized per graph version on the context
(:meth:`QueryContext.path_extent`) and lands in the same bitmask and
container caches as any other leaf, with the container's cardinality
doubling as the compiled planner's selectivity estimate.  Predicates
that cannot enumerate an extent (extension-only predicates such as
``PathValue``/``Cardinality``, or trees containing them) fall back
transparently to the original per-item filtering path.  Results are identical either way — only the
time to produce them changes; ``use_bitsets=False`` forces the original
strategy (used by the equivalence tests and benchmarks).

``mode="compiled"`` selects the third strategy: predicate trees compile
once into flat bytecode plans (``repro.perf.plan``) evaluated over
roaring-style compressed containers (``repro.perf.containers``), with
conjuncts intersected in estimated-selectivity order and ``Range``
leaves answered by bisection over precomputed posting arrays.  The
compiled engine is bit-identical to both other modes — the three-way
differential harness in ``tests/perf`` and ``repro check --engines``
pins this.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from ..obs import NULL_OBS, Observability
from ..perf.bitset import popcount
from ..perf.containers import RoaringBitmap
from ..perf.plan import CompiledPlan, compile_predicate
from ..rdf.terms import Node
from .ast import _MISS, And, Not, Or, Predicate, QueryContext, Range

__all__ = ["QueryEngine"]

#: An extension evaluator returns the predicate's exact extent, or None
#: to fall back to per-item matching.
ExtensionEvaluator = Callable[[Predicate, QueryContext], Optional[set[Node]]]


#: Evaluation strategies: compiled plans over compressed containers,
#: cached int-bitmask extents, or the original per-item set walk.
MODES = ("compiled", "bitset", "legacy")


class QueryEngine:
    """Resolves predicates against a :class:`QueryContext`."""

    def __init__(
        self,
        context: QueryContext,
        use_bitsets: bool = True,
        obs: Observability | None = None,
        mode: str | None = None,
    ):
        if mode is None:
            mode = "bitset" if use_bitsets else "legacy"
        elif mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}")
        self.context = context
        self.mode = mode
        self.use_bitsets = mode != "legacy"
        self.obs = obs if obs is not None else NULL_OBS
        self._extensions: dict[type, ExtensionEvaluator] = {}

    def register_extension(
        self, predicate_type: type, evaluator: ExtensionEvaluator
    ) -> None:
        """Install an extension evaluator for a predicate type.

        The evaluator is consulted before the predicate's own
        ``candidates``; returning None defers to the default strategy.
        """
        if not issubclass(predicate_type, Predicate):
            raise TypeError("extensions must target Predicate subclasses")
        self._extensions[predicate_type] = evaluator

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def evaluate(
        self, predicate: Predicate, within: Iterable[Node] | None = None
    ) -> set[Node]:
        """The set of items satisfying ``predicate``.

        ``within`` restricts evaluation to a base collection (used when
        refining the current result set); None means the full universe.
        """
        tracer = self.obs.tracer
        if not tracer.enabled:
            return self._evaluate(predicate, within)
        with tracer.span(
            "query.evaluate",
            root=type(predicate).__name__,
            mode=self.mode,
        ) as span:
            result = self._evaluate(predicate, within)
            span.set_tag("results", len(result))
            return result

    def _evaluate(
        self, predicate: Predicate, within: Iterable[Node] | None
    ) -> set[Node]:
        context = self.context
        if self.mode == "compiled":
            container = self._compiled_container(predicate)
            if container is not None:
                if within is not None:
                    scoped = container & context.containers_of(within)
                else:
                    scoped = container & context.universe_container()
                return context.nodes_of_container(scoped)
        elif self.use_bitsets:
            bits = self._root_bits(predicate)
            if bits is not None:
                if within is not None:
                    return context.nodes_of(bits & context.bits_of(within))
                return context.nodes_of(bits & context.universe_bits())
        else:
            extent = self._extent(predicate)
            if extent is not None:
                if within is not None:
                    return extent & set(within)
                return extent & context.universe
        population = set(within) if within is not None else context.universe
        return {
            item
            for item in population
            if predicate.matches(item, context)
        }

    def count(self, predicate: Predicate, within: Iterable[Node] | None = None) -> int:
        """Size of the predicate's result set (used for query previews).

        On the bitset path the count is a popcount — no item set is
        materialized, which is what makes §3.2's per-click previews
        near-free once extents are cached.
        """
        tracer = self.obs.tracer
        if not tracer.enabled:
            return self._count(predicate, within)
        with tracer.span(
            "query.count",
            root=type(predicate).__name__,
            mode=self.mode,
        ) as span:
            count = self._count(predicate, within)
            span.set_tag("results", count)
            return count

    def _count(
        self, predicate: Predicate, within: Iterable[Node] | None
    ) -> int:
        context = self.context
        if self.mode == "compiled":
            container = self._compiled_container(predicate)
            if container is not None:
                if within is not None:
                    return len(container & context.containers_of(within))
                return len(container & context.universe_container())
        elif self.use_bitsets:
            bits = self._root_bits(predicate)
            if bits is not None:
                if within is not None:
                    return popcount(bits & context.bits_of(within))
                return popcount(bits & context.universe_bits())
        return len(self._evaluate(predicate, within))

    def matches(self, predicate: Predicate, item: Node) -> bool:
        """Test a single item."""
        return predicate.matches(item, self.context)

    # ------------------------------------------------------------------
    # Extent resolution
    # ------------------------------------------------------------------

    def _extent(self, predicate: Predicate) -> Optional[set[Node]]:
        evaluator = self._extensions.get(type(predicate))
        if evaluator is not None:
            extent = evaluator(predicate, self.context)
            if extent is not None:
                return extent
        if self.obs.tracer.enabled:
            return self._extent_traced(predicate)
        return predicate.candidates(self.context)

    def _extent_traced(self, predicate: Predicate) -> Optional[set[Node]]:
        """Per-node spans for the legacy strategy.

        Mirrors exactly what ``candidates`` does for the combinators —
        And resolves every part then intersects, Or stops at the first
        unknown part, Not complements against the universe — so the
        result (and any error surfaced along the way) is identical to
        the untraced path; only spans are added.  Extension evaluators
        are *not* consulted here: as on the untraced path, they apply at
        the query root only.
        """
        tracer = self.obs.tracer
        context = self.context
        with tracer.span("query.node", kind=type(predicate).__name__) as span:
            if isinstance(predicate, And):
                parts = [self._extent_traced(part) for part in predicate.parts]
                if any(part is None for part in parts):
                    extent = None
                elif not parts:
                    extent = set(context.universe)
                else:
                    extent = set(min(parts, key=len))
                    for part in parts:
                        extent &= part
            elif isinstance(predicate, Or):
                extent = set()
                for part in predicate.parts:
                    part_extent = self._extent_traced(part)
                    if part_extent is None:
                        extent = None
                        break
                    extent |= part_extent
            elif isinstance(predicate, Not):
                part_extent = self._extent_traced(predicate.part)
                extent = (
                    None
                    if part_extent is None
                    else context.universe - part_extent
                )
            else:
                extent = predicate.candidates(context)
            span.set_tag(
                "extent", "unknown" if extent is None else len(extent)
            )
            return extent

    def _root_bits(self, predicate: Predicate) -> int | None:
        """Extent bitmask of the query root, or None when unknown.

        Mirrors :meth:`_extent`: extension evaluators are consulted only
        for the root predicate (exactly as the set path does), and their
        results are never cached — extension closures may depend on
        state the graph version cannot see.
        """
        evaluator = self._extensions.get(type(predicate))
        if evaluator is not None:
            extent = evaluator(predicate, self.context)
            if extent is not None:
                return self.context.bits_of(extent)
        return self._tree_bits(predicate)

    def _tree_bits(self, predicate: Predicate) -> int | None:
        """Recursive bitset extent; None propagates from unknown leaves.

        With tracing on, every node resolution gets a ``query.node``
        span tagged with the predicate kind and whether the extent cache
        answered — the per-click cache behaviour the performance layer
        lives on, made visible.
        """
        context = self.context
        tracer = self.obs.tracer
        if not tracer.enabled:
            cached = context.cached_extent_bits(predicate)
            if cached is not _MISS:
                return cached
            bits = self._derive_bits(predicate)
            context.store_extent_bits(predicate, bits)
            return bits
        with tracer.span("query.node", kind=type(predicate).__name__) as span:
            cached = context.cached_extent_bits(predicate)
            if cached is not _MISS:
                span.set_tag("cache", "hit")
                return cached
            span.set_tag("cache", "miss")
            bits = self._derive_bits(predicate)
            context.store_extent_bits(predicate, bits)
            return bits

    def _derive_bits(self, predicate: Predicate) -> int | None:
        """Compute a node's extent bitmask (the cache-miss work)."""
        context = self.context
        if isinstance(predicate, And):
            if not predicate.parts:
                bits = context.universe_bits()
            else:
                # No early exit on an empty intersection: every part is
                # still resolved so errors (e.g. TextMatch without a
                # text index) surface exactly as on the set path.
                parts = [self._tree_bits(part) for part in predicate.parts]
                if any(part is None for part in parts):
                    bits = None
                else:
                    bits = parts[0]
                    for part in parts[1:]:
                        bits &= part
        elif isinstance(predicate, Or):
            bits = 0
            for part in predicate.parts:
                part_bits = self._tree_bits(part)
                if part_bits is None:
                    bits = None
                    break
                bits |= part_bits
        elif isinstance(predicate, Not):
            part_bits = self._tree_bits(predicate.part)
            bits = (
                None
                if part_bits is None
                else context.universe_bits() & ~part_bits
            )
        else:
            extent = predicate.candidates(context)
            bits = None if extent is None else context.bits_of(extent)
        return bits

    # ------------------------------------------------------------------
    # Compiled plans (mode="compiled")
    # ------------------------------------------------------------------

    def _compiled_container(
        self, predicate: Predicate
    ) -> RoaringBitmap | None:
        """The root's extent container, or None to fall back to filtering.

        Mirrors :meth:`_root_bits`: extension evaluators apply at the
        root only and are never cached.  The executed plan result, like
        the legacy root bitmask, is *unscoped* — the caller intersects
        with the universe or a ``within`` restriction.
        """
        evaluator = self._extensions.get(type(predicate))
        if evaluator is not None:
            extent = evaluator(predicate, self.context)
            if extent is not None:
                return self.context.containers_of(extent)
        plan = self._plan_for(predicate)
        if plan is None:
            return None
        return plan.execute(self.context.universe_container())

    def _plan_for(self, predicate: Predicate) -> CompiledPlan | None:
        """The predicate's compiled plan (cached per graph version).

        A cached None records the fall-back decision — trees containing
        extension-only leaves stay on the per-item path without being
        re-compiled every click.
        """
        context = self.context
        tracer = self.obs.tracer
        if not tracer.enabled:
            cached = context.cached_plan(predicate)
            if cached is not _MISS:
                return cached
            plan = compile_predicate(
                predicate, self._resolve_leaf, len(context.universe)
            )
            context.store_plan(predicate, plan)
            return plan
        with tracer.span(
            "query.plan", root=type(predicate).__name__
        ) as span:
            cached = context.cached_plan(predicate)
            if cached is not _MISS:
                span.set_tag("cache", "hit")
                plan = cached
            else:
                span.set_tag("cache", "miss")
                plan = compile_predicate(
                    predicate, self._resolve_leaf, len(context.universe)
                )
                context.store_plan(predicate, plan)
            if plan is None:
                span.set_tag("plan", "fallback")
            else:
                span.set_tag("ops", len(plan.ops))
                span.set_tag("leaves", len(plan.leaves))
            return plan

    def _resolve_leaf(self, predicate: Predicate) -> RoaringBitmap | None:
        """A leaf's extent container, from the per-version leaf cache.

        ``Range`` leaves bisect the precomputed posting arrays instead
        of scanning every triple of the property; everything else uses
        the predicate's own ``candidates``.  Unknown extents (None) are
        not cached — the whole-tree plan cache already records the
        fall-back decision.
        """
        context = self.context
        cached = context.cached_leaf_container(predicate)
        if cached is not _MISS:
            return cached
        if isinstance(predicate, Range):
            extent = context.facet_postings().range_extent(
                predicate.prop, predicate.low, predicate.high
            )
        else:
            extent = predicate.candidates(context)
        if extent is None:
            return None
        container = context.containers_of(extent)
        context.store_leaf_container(predicate, container)
        return container

    def __repr__(self) -> str:
        return (
            f"<QueryEngine universe={len(self.context.universe)} "
            f"extensions={sorted(t.__name__ for t in self._extensions)}>"
        )
