"""Epoch-based snapshot workspaces: live ingestion under traffic.

``Workspace.freeze()`` seals a corpus forever — perfect for lock-free
concurrent reads, useless for a corpus that keeps growing while users
browse.  This module adds the missing MVCC-style write side without
giving up a single read guarantee:

* **Writers** append datoms to a mutable *head* graph (and, when a
  durable :class:`~repro.store.segments.LogStore` is attached, to disk)
  through :meth:`EpochManager.ingest`.  The head is never read by
  sessions.
* A **reindexer** (the background thread, or an explicit
  :meth:`EpochManager.publish`) folds the accumulated delta into the
  next epoch: the previous epoch's graph is forked copy-on-write, the
  delta is replayed onto it, and every derived substrate — vector
  model, vector store, text index, facet postings, facet-profile memo —
  is advanced incrementally rather than rebuilt.
* **Readers** pin an immutable epoch per session.  Publishing an epoch
  is an atomic pointer swap; an old epoch is retired once its last
  session releases it.

The fold is *bit-identical* to a cold build at the epoch's watermark
transaction: ``Workspace(graph.as_of(watermark))`` is the ready-made
oracle, and ``repro check --ingest`` races the two continuously.  The
parity rests on three mechanisms:

* the graph fork rebuilds every delta-touched index leaf by replaying
  that leaf's full op history (set layout — which leaks into float
  summation order — matches a cold replay; untouched leaves are shared);
* the model clone re-extracts exactly the items whose direct properties
  or composition inputs changed, then restores the profile-table order
  and recomputes numeric ranges (removals keep incremental ranges
  conservative; a cold build's are tight);
* the vector store runs in ``exact`` mode — incremental application only
  at provably-zero idf drift, a full re-weigh otherwise — and is rebuilt
  outright whenever a numeric range moved (range bounds feed the
  unit-circle encoding of every carried posting).

Schema-annotation deltas (``magnet:valueType`` / ``compose`` / ``hidden``
/ ``importantProperty``) change classification rules globally, so those
epochs fall back to a cold build over the forked graph — rare by
construction, still correct.
"""

from __future__ import annotations

import threading
from typing import Iterable, Sequence

from ..index.store import VectorStore
from ..obs import Observability
from ..rdf.graph import Graph
from ..rdf.schema import Schema
from ..rdf.terms import Node
from ..rdf.vocab import MAGNET, RDF
from ..store.datom import OP_ASSERT, OP_RETRACT
from .workspace import Workspace

__all__ = ["Epoch", "EpochManager", "EpochPinError"]


class EpochPinError(RuntimeError):
    """A release that would drop a live epoch's refcount below its pins.

    Raised when an anonymous ``release()`` arrives for a live epoch
    that has no outstanding pins — the double-release shape that used
    to silently decrement a *live* refcount and let a reader's epoch
    retire out from under it.
    """

#: Predicates whose datoms change classification rules for *every* item
#: (value types, compositions, hidden marks).  A delta carrying one
#: falls back to a cold build; ``rdfs:label`` is deliberately absent —
#: labels ride the normal touched-item path.
_SCHEMA_PREDICATES = frozenset(
    {MAGNET.valueType, MAGNET.compose, MAGNET.hidden, MAGNET.importantProperty}
)


def _n3_key(node: Node) -> str:
    return node.n3()


class Epoch:
    """One published, immutable snapshot of the corpus.

    ``watermark`` is the last transaction folded into the workspace;
    ``refs`` counts the sessions currently pinned here.  Lifecycle is
    managed by the :class:`EpochManager` — an epoch retires once it is
    no longer current and its last session releases it.
    """

    __slots__ = ("number", "workspace", "watermark", "refs", "retired")

    def __init__(self, number: int, workspace: Workspace, watermark: int):
        self.number = number
        self.workspace = workspace
        self.watermark = watermark
        self.refs = 0
        self.retired = False

    def __repr__(self) -> str:
        return (
            f"<Epoch {self.number} tx<={self.watermark} "
            f"refs={self.refs}{' retired' if self.retired else ''}>"
        )


class EpochManager:
    """Owns the head graph, the epoch chain, and the reindexer."""

    def __init__(
        self,
        workspace: Workspace,
        obs: Observability | None = None,
        store=None,
    ):
        if not workspace.graph.log.keeps_history:
            raise ValueError(
                "epochs require datom history: the workspace graph was "
                "built with track_history=False"
            )
        workspace.freeze()
        self.obs = obs if obs is not None else workspace.obs
        #: Optional LogStore; every ingested transaction is sealed into
        #: a segment *before* the ingest call returns, so a crash mid
        #: epoch-publish restarts on the last durable transaction.
        self.store = store
        #: The writer's graph.  Forked from epoch 0 so its log carries
        #: the full history; sessions never read it.
        self._head: Graph = workspace.graph.fork()
        epoch = Epoch(0, workspace, workspace.graph.last_tx)
        self._epochs: dict[int, Epoch] = {0: epoch}
        self._current = epoch
        #: Serializes writers (transact + durable append stay ordered).
        self._write_lock = threading.Lock()
        #: Serializes folds (publish is single-flight).
        self._publish_lock = threading.Lock()
        #: Guards the epoch table, the current pointer, and refcounts.
        self._state_lock = threading.Lock()
        #: session name -> {epoch number: pin count}.  Sessions that
        #: acquire anonymously are not tracked here; named pins make
        #: release() idempotent per session (double releases no-op
        #: instead of decrementing someone else's pin).
        self._pins: dict[str, dict[int, int]] = {}
        self._publishes = 0
        self._datoms_ingested = 0
        self._retired_total = 0
        self._reindexer: threading.Thread | None = None
        self._stop = threading.Event()
        self._wake = threading.Event()
        self._wire_metrics()

    def _wire_metrics(self) -> None:
        metrics = self.obs.metrics
        metrics.gauge_fn("epochs.current", lambda: self._current.number)
        metrics.gauge_fn("epochs.live", lambda: len(self._epochs))
        metrics.gauge_fn("epochs.publishes", lambda: self._publishes)
        metrics.gauge_fn("epochs.retired", lambda: self._retired_total)
        metrics.gauge_fn("epochs.datoms_ingested", lambda: self._datoms_ingested)
        #: How far the head has run ahead of what readers can see.
        metrics.gauge_fn(
            "epochs.lag_tx",
            lambda: self._head.last_tx - self._current.watermark,
        )

    # ------------------------------------------------------------------
    # Reader side: pinning
    # ------------------------------------------------------------------

    @property
    def current(self) -> Epoch:
        """The published epoch (atomic pointer read)."""
        return self._current

    def acquire(self, session: str | None = None) -> Epoch:
        """Pin the current epoch; pairs with release().

        With a ``session`` name the pin is tracked per session, which
        makes the matching release idempotent: releasing an epoch the
        session does not hold is a no-op rather than a decrement of
        some other reader's pin.
        """
        with self._state_lock:
            epoch = self._current
            epoch.refs += 1
            if session is not None:
                held = self._pins.setdefault(session, {})
                held[epoch.number] = held.get(epoch.number, 0) + 1
            return epoch

    def release(self, number: int, session: str | None = None) -> None:
        """Drop one session's pin on epoch ``number``.

        Numbers of already-retired epochs are ignored (e.g. a
        session-state load from an older run).  A named release only
        decrements if that session actually holds a pin on the epoch —
        a double release (session delete racing lazy migration) is a
        no-op.  An anonymous release of a live epoch with no
        outstanding pins raises :class:`EpochPinError` instead of
        silently pushing a live refcount below its pin count.
        """
        with self._state_lock:
            epoch = self._epochs.get(number)
            if epoch is None:
                if session is not None:
                    held = self._pins.get(session)
                    if held is not None:
                        held.pop(number, None)
                        if not held:
                            del self._pins[session]
                return
            if session is not None:
                held = self._pins.get(session)
                if held is None or number not in held:
                    return  # double release: this session holds no pin
                held[number] -= 1
                if held[number] <= 0:
                    del held[number]
                if not held:
                    del self._pins[session]
            elif epoch.refs <= 0:
                raise EpochPinError(
                    f"release of epoch {number} which has no outstanding "
                    f"pins (refs={epoch.refs})"
                )
            epoch.refs -= 1
            self._retire_idle_locked()

    def get(self, number: int) -> Epoch | None:
        with self._state_lock:
            return self._epochs.get(number)

    def _retire_idle_locked(self) -> None:
        for number in list(self._epochs):
            epoch = self._epochs[number]
            if epoch is not self._current and epoch.refs <= 0:
                epoch.retired = True
                del self._epochs[number]
                self._retired_total += 1

    # ------------------------------------------------------------------
    # Writer side: ingestion
    # ------------------------------------------------------------------

    @property
    def head_tx(self) -> int:
        """The last transaction the writer has committed."""
        return self._head.last_tx

    @property
    def lag(self) -> int:
        """Transactions committed but not yet visible to readers."""
        return self._head.last_tx - self._current.watermark

    def ingest(self, ops: Iterable[tuple]) -> int | None:
        """Apply one transaction of ``(op, s, p, o)`` tuples to the head.

        Returns the minted tx id (None when nothing was effective).
        With a durable store attached, the transaction's datoms are
        sealed into a segment before this returns — write durability
        never waits for reindexing.
        """
        with self._write_lock:
            tx = self._head.transact(ops)
            if tx is None:
                return None
            datoms = list(self._head.log.datoms_since(tx - 1))
            self._datoms_ingested += len(datoms)
            if self.store is not None:
                self.store.append(datoms, obs=self.obs)
        self._wake.set()
        return tx

    def cold_workspace(self, watermark: int) -> Workspace:
        """A from-scratch build of the corpus as of ``watermark``.

        This is the oracle ``repro check --ingest`` races every published
        epoch against: the same log prefix folded into a fresh graph and
        indexed with zero incremental machinery.  A published epoch's
        suggestions must be bit-identical to this build's.
        """
        view = self._head.as_of(watermark)
        graph = Graph.from_datoms(view.log)
        graph.freeze()
        return Workspace(graph, obs=self.obs).freeze()

    def ingest_ntriples(self, text: str) -> dict:
        """Ingest a streamed N-Triples payload as one transaction.

        Every triple is asserted; already-present triples are no-ops
        (set semantics).  Returns a summary the ``POST /ingest`` route
        serializes: parsed/applied counts, the tx id, and the lag.
        """
        from ..rdf.ntriples import iter_triples

        triples = list(iter_triples(text))
        tx = self.ingest((OP_ASSERT, s, p, o) for s, p, o in triples)
        applied = 0
        if tx is not None:
            applied = sum(1 for d in self._head.log.datoms_since(tx - 1))
        return {
            "parsed": len(triples),
            "applied": applied,
            "tx": tx if tx is not None else self._head.last_tx,
            "effective": tx is not None,
            "epoch": self._current.number,
            "lag_tx": self.lag,
        }

    # ------------------------------------------------------------------
    # Publishing: fold the delta into the next epoch
    # ------------------------------------------------------------------

    def publish(self) -> Epoch | None:
        """Fold every unpublished transaction into a new epoch.

        Returns the new epoch, or None when the head has nothing new.
        Writers keep committing while the fold runs; anything they add
        after the cut lands in the next epoch.  The pointer swap at the
        end is atomic; old epochs retire when their last session leaves.
        """
        with self._publish_lock:
            prev = self._current
            delta = list(self._head.log.datoms_since(prev.watermark))
            if not delta:
                return None
            with self.obs.tracer.span(
                "epochs.publish", datoms=len(delta), epoch=prev.number + 1
            ):
                workspace = self._fold(prev.workspace, delta)
            epoch = Epoch(prev.number + 1, workspace, delta[-1].tx)
            with self._state_lock:
                self._epochs[epoch.number] = epoch
                self._current = epoch
                self._publishes += 1
                self._retire_idle_locked()
            return epoch

    def _fold(self, prev: Workspace, delta: Sequence) -> Workspace:
        graph = prev.graph.fork()
        graph._preown_for_replay(delta)
        graph._replay(delta)

        if any(d.p in _SCHEMA_PREDICATES for d in delta):
            # Annotation deltas change classification for every item —
            # the incremental carry would be unsound.  Cold-build the
            # epoch over the forked graph (history intact, so the
            # as_of oracle still holds).
            view = Workspace(
                graph,
                use_compositions=prev.model.use_compositions,
                query_mode=prev.query_mode,
                facet_mode=prev.facet_mode,
                obs=self.obs,
            )
            view.freeze()
            return view

        schema = Schema(graph)
        items = sorted(
            {s for s, _p, _o in graph.triples(None, RDF.type, None)},
            key=_n3_key,
        )
        items_set = set(items)
        prev_items_set = set(prev.items)

        touched = {d.s for d in delta}
        touched |= self._composition_dirty(prev, graph, delta)
        removed = prev_items_set - items_set
        reindex = (touched & items_set) | (items_set - prev_items_set)
        dirty = (touched | removed) & (items_set | prev_items_set)

        # -- vector model + store -------------------------------------
        model = prev.model.clone_for(graph, schema)
        store = VectorStore.advance_from(prev.vector_store, model, self.obs)
        for item in sorted(removed, key=_n3_key):
            model.remove_item(item)
        for item in sorted(reindex, key=_n3_key):
            model.add_item(item)
        model.reorder_items(items)
        prior_bounds = {
            path: (r.low, r.high)
            for path, r in prev.model._ranges.items()
        }
        model.recompute_ranges()
        bounds = {
            path: (r.low, r.high) for path, r in model._ranges.items()
        }
        if any(
            bounds[path] != prior_bounds[path]
            for path in bounds.keys() & prior_bounds.keys()
        ):
            # A numeric range moved: every carried posting's unit-circle
            # coordinates were encoded against the old bounds.  Re-weigh
            # everything (profiles are kept; only the float work reruns).
            store.rebuild()
        else:
            store.refresh()

        # -- text index -----------------------------------------------
        text_index = prev.text_index.clone_for(graph)
        for item in sorted(removed, key=_n3_key):
            text_index.unindex_item(item)
        for item in sorted(reindex, key=_n3_key):
            text_index.index_item(item)

        # -- facet postings + profile memo ----------------------------
        facet_postings = None
        prior_postings = prev.query_context.facet_postings_if_built()
        if prior_postings is not None and prev.facet_mode == "compiled":
            from ..perf.postings import FacetPostings

            universe_order = _ordered_universe(graph, items_set)
            facet_postings = FacetPostings.advance(
                prior_postings,
                graph,
                schema,
                universe_order,
                dirty,
                {d.p for d in delta},
            )
        carried_profiles = {}
        for key, profile in prev._facet_profiles.items():
            version, collection = key
            if version != prev.graph.version:
                continue
            if dirty.isdisjoint(collection):
                carried_profiles[(graph.version, collection)] = profile

        ws = Workspace.from_substrates(
            graph,
            schema,
            items,
            model,
            store,
            text_index,
            obs=self.obs,
            query_mode=prev.query_mode,
            facet_mode=prev.facet_mode,
            facet_postings=facet_postings,
            carried_profiles=carried_profiles,
        )
        ws.freeze()
        return ws

    def _composition_dirty(
        self, prev: Workspace, graph: Graph, delta: Sequence
    ) -> set[Node]:
        """Items whose *composed* coordinates a delta datom may change.

        A datom with predicate at chain position ``j > 0`` affects every
        item that reaches its subject through the chain prefix — walked
        backward over both the previous and the new graph, so created
        and severed paths are both caught.  The set over-approximates
        (re-extraction of an unaffected item is idempotent), never
        under-approximates.
        """
        chains = prev.model._effective_compositions()
        if not chains:
            return set()
        dirty: set[Node] = set()
        for datom in delta:
            for chain in chains:
                for j, prop in enumerate(chain):
                    if prop != datom.p or j == 0:
                        # j == 0 means the subject itself is the item —
                        # already in the direct touched set.
                        continue
                    prefix = chain[:j]
                    for g in (prev.graph, graph):
                        frontier = {datom.s}
                        for step in reversed(prefix):
                            nxt: set[Node] = set()
                            for node in frontier:
                                nxt.update(g.subjects(step, node))
                            frontier = nxt
                            if not frontier:
                                break
                        dirty |= frontier
        return dirty

    # ------------------------------------------------------------------
    # Background reindexer
    # ------------------------------------------------------------------

    def start_reindexer(self, interval: float = 0.2) -> None:
        """Run publish() in a daemon thread whenever the head advances.

        Must be started in the serving process (threads do not survive
        a fork); idempotent.
        """
        if self._reindexer is not None and self._reindexer.is_alive():
            return
        self._stop.clear()

        def loop() -> None:
            while not self._stop.is_set():
                self._wake.wait(timeout=interval)
                self._wake.clear()
                if self._stop.is_set():
                    return
                if self.lag > 0:
                    self.publish()

        self._reindexer = threading.Thread(
            target=loop, name="epoch-reindexer", daemon=True
        )
        self._reindexer.start()

    def stop_reindexer(self, drain: bool = True) -> None:
        """Stop the background thread; optionally publish what remains."""
        self._stop.set()
        self._wake.set()
        thread = self._reindexer
        if thread is not None:
            thread.join(timeout=5.0)
            self._reindexer = None
        if drain and self.lag > 0:
            self.publish()

    def __repr__(self) -> str:
        return (
            f"<EpochManager epoch={self._current.number} "
            f"watermark={self._current.watermark} lag={self.lag}>"
        )


def _ordered_universe(graph: Graph, universe: set[Node]) -> list[Node]:
    """Universe items in the facet-sweep order QueryContext uses."""
    ordered = [s for s in graph.subjects() if s in universe]
    if len(ordered) != len(universe):
        ordered.extend(universe.difference(ordered))
    return ordered
