"""Navigation advisors: the user-facing groupings of suggestions (§4.1).

Each advisor "presents a particular type of navigation step".  The four
the paper implements (applying Bates' single-step refinement tactics):

* **Related Items** — sharing a property, similar by content, similar by
  visit, contrary constraints;
* **Refine Collection** — facet values, words in the body/title, range
  widgets, keyword search within the collection;
* **Modify** — related collections and constraint negation;
* **History** — previously seen items and the refinement trail.

"Since there are many possible navigation suggestions ... the navigation
advisors are responsible for selecting the most relevant ones": an
advisor keeps the top-weighted suggestions (respecting per-group caps so
one property cannot monopolize the pane, with '...' overflow markers)
and then presents them "sorted in an alphabetical order to enable users
to search for a particular suggestion".
"""

from __future__ import annotations

from collections import defaultdict

from .blackboard import Blackboard
from .suggestions import Suggestion

__all__ = [
    "RELATED_ITEMS",
    "REFINE_COLLECTION",
    "MODIFY",
    "HISTORY",
    "Advisor",
    "standard_advisors",
]

RELATED_ITEMS = "related-items"
REFINE_COLLECTION = "refine-collection"
MODIFY = "modify"
HISTORY = "history"


class Advisor:
    """Selects and orders one advisor's suggestions from the blackboard."""

    def __init__(
        self,
        advisor_id: str,
        title: str,
        max_suggestions: int = 12,
        max_per_group: int = 4,
        alphabetical: bool = True,
    ):
        self.advisor_id = advisor_id
        self.title = title
        self.max_suggestions = max_suggestions
        self.max_per_group = max_per_group
        self.alphabetical = alphabetical

    def select(self, blackboard: Blackboard) -> list[Suggestion]:
        """The advisor's presented suggestions.

        Selection is by descending weight with a per-group cap; the
        survivors are re-sorted alphabetically (group first, then title)
        for presentation, as §4.1 describes.
        """
        posted = blackboard.for_advisor(self.advisor_id)
        ranked = sorted(posted, key=lambda s: (-s.weight, s.title))
        chosen: list[Suggestion] = []
        per_group: dict[str | None, int] = defaultdict(int)
        for suggestion in ranked:
            if len(chosen) >= self.max_suggestions:
                break
            group = suggestion.group
            if group is not None and per_group[group] >= self.max_per_group:
                continue
            per_group[group] += 1
            chosen.append(suggestion)
        if self.alphabetical:
            chosen.sort(key=lambda s: (s.group or "", s.title.lower()))
        return chosen

    def overflow_groups(self, blackboard: Blackboard) -> list[str]:
        """Groups that had more suggestions than the per-group cap.

        The interface shows '...' for these so users "wanting more
        choices for a given refinement can ask ... for more options".
        """
        counts: dict[str, int] = defaultdict(int)
        for suggestion in blackboard.for_advisor(self.advisor_id):
            if suggestion.group is not None:
                counts[suggestion.group] += 1
        return sorted(g for g, n in counts.items() if n > self.max_per_group)

    def all_in_group(self, blackboard: Blackboard, group: str) -> list[Suggestion]:
        """Every suggestion of one group (the expanded '...' view)."""
        matches = [
            s
            for s in blackboard.for_advisor(self.advisor_id)
            if s.group == group
        ]
        matches.sort(key=lambda s: (-s.weight, s.title))
        return matches

    def __repr__(self) -> str:
        return f"<Advisor {self.advisor_id!r} ({self.title!r})>"


def standard_advisors() -> dict[str, Advisor]:
    """The paper's four advisors with sensible presentation limits."""
    return {
        RELATED_ITEMS: Advisor(RELATED_ITEMS, "Related Items"),
        REFINE_COLLECTION: Advisor(
            REFINE_COLLECTION, "Refine Collection", max_suggestions=20
        ),
        MODIFY: Advisor(MODIFY, "Modify"),
        HISTORY: Advisor(HISTORY, "History", alphabetical=False),
    }
