"""The currently viewed thing: an item or a collection with its query.

Analysts "are triggered by the framework based on the currently viewed
(document, collection of documents / result set, query, etc.)" (§4.3).
A :class:`View` captures that state plus handles to the workspace and
the navigation history, so analysts have one uniform argument.
"""

from __future__ import annotations

from typing import Sequence

from ..query.ast import And, Predicate
from ..rdf.terms import Node
from .workspace import Workspace

__all__ = ["View"]


class View:
    """An immutable snapshot of what the user is looking at."""

    KIND_ITEM = "item"
    KIND_COLLECTION = "collection"

    def __init__(
        self,
        workspace: Workspace,
        kind: str,
        item: Node | None = None,
        items: Sequence[Node] | None = None,
        query: Predicate | None = None,
        history: "object | None" = None,
        description: str | None = None,
    ):
        if kind not in (self.KIND_ITEM, self.KIND_COLLECTION):
            raise ValueError(f"unknown view kind {kind!r}")
        if kind == self.KIND_ITEM and item is None:
            raise ValueError("an item view needs an item")
        if kind == self.KIND_COLLECTION and items is None:
            raise ValueError("a collection view needs items")
        self.workspace = workspace
        self.kind = kind
        self.item = item
        self.items: list[Node] = list(items) if items is not None else []
        self.query = query
        self.history = history
        self.description = description

    # -- constructors ----------------------------------------------------

    @classmethod
    def of_item(
        cls, workspace: Workspace, item: Node, history=None
    ) -> "View":
        """A view focused on a single item."""
        return cls(workspace, cls.KIND_ITEM, item=item, history=history)

    @classmethod
    def of_collection(
        cls,
        workspace: Workspace,
        items: Sequence[Node],
        query: Predicate | None = None,
        history=None,
        description: str | None = None,
    ) -> "View":
        """A view of a result set, optionally with the query behind it."""
        return cls(
            workspace,
            cls.KIND_COLLECTION,
            items=items,
            query=query,
            history=history,
            description=description,
        )

    # -- helpers -----------------------------------------------------------

    @property
    def is_item(self) -> bool:
        return self.kind == self.KIND_ITEM

    @property
    def is_collection(self) -> bool:
        return self.kind == self.KIND_COLLECTION

    def constraints(self) -> list[Predicate]:
        """The query's top-level conjuncts (the constraint chips, §3.2)."""
        if self.query is None:
            return []
        if isinstance(self.query, And):
            return list(self.query.parts)
        return [self.query]

    def __repr__(self) -> str:
        if self.is_item:
            return f"<View item {self.item!r}>"
        return f"<View collection of {len(self.items)} (query={self.query!r})>"
