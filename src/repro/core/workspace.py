"""Workspace: one repository wired to every Magnet substrate.

A :class:`Workspace` bundles the graph with its schema view, the
semistructured vector space model, the vector store, the full-text
index, and the query engine — everything analysts consult.  It is the
integration point the Haystack environment provided in the original
system.

For concurrent serving the workspace is treated as a shared,
read-mostly artifact: :meth:`Workspace.freeze` seals it (mutation
raises :class:`FrozenWorkspaceError`), after which any number of
sessions may read it from multiple threads — the extent cache, the
facet-profile memo, and the intern table keep exact counters under
that load.  Unfrozen mutation is serialized by an internal lock.
"""

from __future__ import annotations

import threading
from typing import Iterable, Sequence

from ..index.store import VectorStore
from ..index.textindex import TextIndex
from ..obs import Observability
from ..perf.stats import CacheStats
from ..query.ast import QueryContext
from ..query.engine import QueryEngine
from ..rdf.graph import Graph
from ..rdf.schema import Schema
from ..rdf.terms import Node
from ..rdf.vocab import RDF

__all__ = ["Workspace", "FrozenWorkspaceError", "HistoricalWorkspaceError"]


class FrozenWorkspaceError(RuntimeError):
    """Raised when a sealed workspace (or its graph) is mutated.

    Carries the attempted ``operation`` name (``"add"``, ``"remove"``,
    ``"add_item"``, ...) so the message — and programmatic handlers —
    can say *what* was refused, not just that something was.
    """

    def __init__(
        self,
        message: str,
        *,
        operation: str | None = None,
        tx: int | None = None,
    ):
        super().__init__(message)
        self.operation = operation
        self.tx = tx


class HistoricalWorkspaceError(FrozenWorkspaceError):
    """A write hit an ``as_of`` historical view.

    Subclasses :class:`FrozenWorkspaceError` (a historical view is a
    frozen workspace, so existing handlers keep working) and carries the
    pinned transaction id ``tx`` alongside the attempted operation.
    """


class Workspace:
    """A graph plus the derived indexes Magnet navigates with."""

    def __init__(
        self,
        graph: Graph,
        schema: Schema | None = None,
        items: Iterable[Node] | None = None,
        use_compositions: bool = True,
        obs: Observability | None = None,
        query_mode: str = "bitset",
        facet_mode: str = "compiled",
    ):
        from ..vsm.model import VectorSpaceModel

        if facet_mode not in ("compiled", "legacy"):
            raise ValueError("facet_mode must be 'compiled' or 'legacy'")
        #: Shared tracing + metrics context; tracing is off by default
        #: (no-op tracer), telemetry gauges are wired regardless.
        self.obs = obs if obs is not None else Observability(tracing=False)
        self.graph = graph
        self.schema = schema if schema is not None else Schema(graph)
        self.query_mode = query_mode
        self.facet_mode = facet_mode
        if items is None:
            item_list = sorted(
                {s for s, _p, _o in graph.triples(None, RDF.type, None)},
                key=lambda n: n.n3(),
            )
        else:
            item_list = list(items)
        self.items: list[Node] = item_list
        self.model = VectorSpaceModel(
            graph, schema=self.schema, use_compositions=use_compositions
        )
        self.model.index_items(self.items)
        self.vector_store = VectorStore(self.model, obs=self.obs)
        self.text_index = TextIndex(graph)
        self.text_index.index_items(self.items)
        self.query_context = QueryContext(
            graph,
            schema=self.schema,
            text_index=self.text_index,
            universe=set(self.items),
        )
        self.query_engine = QueryEngine(
            self.query_context, obs=self.obs, mode=query_mode
        )
        #: (graph version, collection) -> CollectionProfile, small FIFO
        self._facet_profiles: dict = {}
        self.facet_profile_stats = CacheStats()
        self._frozen = False
        #: Set on views produced by :meth:`as_of`: the pinned tx.
        self._historical_tx: int | None = None
        #: tx -> historical Workspace view, small FIFO (time-travel
        #: sessions tend to cluster on a few interesting txs).
        self._as_of_views: dict[int, "Workspace"] = {}
        #: Serializes the unfrozen mutation path (add_item).
        self._mutation_lock = threading.RLock()
        #: Held across the facet-memo check/compute/store so the memo's
        #: hit/miss counters stay exact under concurrent readers.
        self._profile_lock = threading.Lock()
        self._wire_metrics()

    @classmethod
    def from_substrates(
        cls,
        graph: Graph,
        schema: Schema,
        items: Sequence[Node],
        model,
        vector_store: VectorStore,
        text_index: TextIndex,
        *,
        obs: Observability | None = None,
        query_mode: str = "bitset",
        facet_mode: str = "compiled",
        facet_postings=None,
        carried_profiles: dict | None = None,
    ) -> "Workspace":
        """Assemble a workspace around pre-built substrates.

        The epoch reindexer advances the previous epoch's model, vector
        store, text index, and facet postings incrementally, then wires
        them into a fresh workspace here — skipping the cold
        ``index_items`` pass entirely.  ``carried_profiles`` seeds the
        facet-profile memo (already re-keyed to the new graph version).
        """
        ws = cls.__new__(cls)
        ws.obs = obs if obs is not None else Observability(tracing=False)
        ws.graph = graph
        ws.schema = schema
        ws.query_mode = query_mode
        ws.facet_mode = facet_mode
        ws.items = list(items)
        ws.model = model
        ws.vector_store = vector_store
        ws.text_index = text_index
        ws.query_context = QueryContext(
            graph,
            schema=schema,
            text_index=text_index,
            universe=set(ws.items),
        )
        ws.query_engine = QueryEngine(
            ws.query_context, obs=ws.obs, mode=query_mode
        )
        ws._facet_profiles = dict(carried_profiles or {})
        ws.facet_profile_stats = CacheStats()
        ws._frozen = False
        ws._historical_tx = None
        ws._as_of_views = {}
        ws._mutation_lock = threading.RLock()
        ws._profile_lock = threading.Lock()
        if facet_postings is not None:
            ws.query_context.adopt_facet_postings(facet_postings)
        ws._wire_metrics()
        return ws

    def _wire_metrics(self) -> None:
        """Expose the substrate counters as lazy snapshot-time gauges.

        The hot paths already maintain these numbers (PR-1's
        ``CacheStats`` / ``IndexMaintenanceStats``); registering pull
        callbacks means telemetry costs nothing until someone snapshots.
        """
        metrics = self.obs.metrics
        cache = self.query_context.cache_stats
        metrics.gauge_fn("query.extent_cache.hits", lambda: cache.hits)
        metrics.gauge_fn("query.extent_cache.misses", lambda: cache.misses)
        metrics.gauge_fn(
            "query.extent_cache.invalidations", lambda: cache.invalidations
        )
        metrics.gauge_fn("query.extent_cache.hit_rate", lambda: cache.hit_rate)
        memo = self.facet_profile_stats
        metrics.gauge_fn("facets.profile_memo.hits", lambda: memo.hits)
        metrics.gauge_fn("facets.profile_memo.misses", lambda: memo.misses)
        maintenance = self.vector_store.maintenance
        metrics.gauge_fn(
            "store.full_rebuilds", lambda: maintenance.full_rebuilds
        )
        metrics.gauge_fn(
            "store.incremental_updates",
            lambda: maintenance.incremental_updates,
        )
        metrics.gauge_fn(
            "store.items_reindexed", lambda: maintenance.items_reindexed
        )
        metrics.gauge_fn(
            "index.postings_touched",
            lambda: self.vector_store.postings_touched,
        )
        metrics.gauge_fn("graph.version", lambda: self.graph.version)
        if self.query_mode == "compiled":
            # Compiled-plan counters appear only on compiled workspaces —
            # the default snapshot stays exactly as the golden metrics
            # test pins it.
            plans = self.query_context.plan_stats
            metrics.gauge_fn("query.plan_cache.hits", lambda: plans.hits)
            metrics.gauge_fn("query.plan_cache.misses", lambda: plans.misses)
            metrics.gauge_fn(
                "query.plan_cache.invalidations",
                lambda: plans.invalidations,
            )
            leaves = self.query_context.container_stats
            metrics.gauge_fn(
                "query.leaf_containers.hits", lambda: leaves.hits
            )
            metrics.gauge_fn(
                "query.leaf_containers.misses", lambda: leaves.misses
            )

    # ------------------------------------------------------------------
    # Sealing (shared read-mostly serving)
    # ------------------------------------------------------------------

    @property
    def frozen(self) -> bool:
        """True once :meth:`freeze` has sealed the workspace."""
        return self._frozen

    def freeze(self) -> "Workspace":
        """Seal the workspace for concurrent read-only serving.

        Idempotent.  Locks the graph and the workspace mutation path
        (:class:`FrozenWorkspaceError` from then on) and pre-warms the
        universe bitmask so the first concurrent queries do not race to
        build it.  Returns ``self`` for chaining.
        """
        with self._mutation_lock:
            if self._frozen:
                return self
            self.graph.freeze()
            self.query_context.universe_bits()
            self._frozen = True
        return self

    @property
    def as_of_tx(self) -> int | None:
        """The pinned transaction id of an ``as_of`` view, else None."""
        return self._historical_tx

    def as_of(self, tx: int) -> "Workspace":
        """An immutable workspace over the graph as of transaction ``tx``.

        Replays the datom-log prefix ``tx' <= tx`` into a fresh frozen
        graph and builds every substrate — schema view, vector model,
        text index, query engine — over it, exactly as a cold build at
        that point in history would have: suggestions over the view are
        bit-identical to a fresh build at that tx.  The view is sealed
        (writes raise :class:`HistoricalWorkspaceError` with the
        operation and tx) and carries its own version-pinned caches
        keyed by the historical graph's ``(version, tx)``.  Views are
        memoized per tx, so many sessions can pin the same epoch
        cheaply.  Composes with :meth:`freeze`: the base workspace may
        be frozen or live.
        """
        if not isinstance(tx, int) or isinstance(tx, bool):
            raise ValueError(f"as_of tx must be an integer, got {tx!r}")
        if tx < 0 or tx > self.graph.last_tx:
            raise ValueError(
                f"as_of tx {tx} out of range 0..{self.graph.last_tx}"
            )
        with self._mutation_lock:
            view = self._as_of_views.get(tx)
            if view is not None:
                return view
        with self.obs.tracer.span("store.as_of", tx=tx):
            graph_at = self.graph.as_of(tx)
            # The view shares the parent's obs bundle so telemetry from
            # historical sessions lands in the process registry (and the
            # server's /metrics) alongside live-session telemetry.
            view = Workspace(
                graph_at,
                use_compositions=self.model.use_compositions,
                query_mode=self.query_mode,
                facet_mode=self.facet_mode,
                obs=self.obs,
            )
            view._historical_tx = tx
            view.freeze()
        with self._mutation_lock:
            self._as_of_views.setdefault(tx, view)
            while len(self._as_of_views) > 4:
                self._as_of_views.pop(next(iter(self._as_of_views)))
            return self._as_of_views[tx]

    def add_item(self, item: Node) -> None:
        """Index a newly arrived item across every substrate (§5.2)."""
        with self._mutation_lock:
            if self._historical_tx is not None:
                raise HistoricalWorkspaceError(
                    f"workspace is a historical as-of view at tx "
                    f"{self._historical_tx}; cannot add_item",
                    operation="add_item",
                    tx=self._historical_tx,
                )
            if self._frozen:
                raise FrozenWorkspaceError(
                    "workspace is frozen; cannot add_item",
                    operation="add_item",
                )
            if item not in self.model:
                self.items.append(item)
            self.model.add_item(item)
            self.text_index.index_item(item)
            self.query_context.universe.add(item)

    def label(self, node: Node) -> str:
        """Display name via schema annotations."""
        return self.schema.label(node)

    def with_query_mode(
        self, mode: str, obs: Observability | None = None
    ) -> "Workspace":
        """A shallow view of this workspace evaluating queries in ``mode``.

        Shares the graph, indexes, and query context (so compiled and
        bitset engines race over identical state), but carries its own
        :class:`QueryEngine` and — crucially for the differential fuzzer
        — its own :class:`Observability`, so the original workspace's
        counters do not move when the view evaluates.
        """
        import copy

        clone = copy.copy(self)
        clone.obs = obs if obs is not None else Observability(tracing=False)
        clone.query_mode = mode
        clone.query_engine = QueryEngine(
            self.query_context, obs=clone.obs, mode=mode
        )
        return clone

    def facet_profile(self, items: Sequence[Node]):
        """The collection's single-pass metadata profile, memoized.

        Facet overviews, refinement analysts, and range analysts all
        consult the same profile for a given (collection, graph version)
        pair, so arriving at a view computes the sweep once however many
        consumers render it.  Keyed on the graph's mutation version, the
        memo self-invalidates on any repository change.
        """
        from .analysts.common import collection_profile

        key = (self.graph.version, tuple(items))
        with self._profile_lock:
            profile = self._facet_profiles.get(key)
            if profile is not None:
                self.facet_profile_stats.hits += 1
                return profile
            self.facet_profile_stats.misses += 1
            with self.obs.tracer.span("facets.profile", items=len(items)):
                profile = None
                if self.facet_mode == "compiled":
                    # Single pass over precomputed facet records; bails
                    # to the legacy sweep (None) for any item outside
                    # the postings' build population.
                    profile = self.query_context.facet_postings().profile(
                        items
                    )
                if profile is None:
                    profile = collection_profile(
                        self.graph, self.schema, items
                    )
            self._facet_profiles[key] = profile
            while len(self._facet_profiles) > 8:
                self._facet_profiles.pop(next(iter(self._facet_profiles)))
            return profile

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def save(self, path) -> None:
        """Write the repository to ``path`` as N-Triples.

        Schema annotations are ordinary triples, so labels, value types,
        compositions, and hidden-property marks all travel with the
        data; the derived indexes are rebuilt on load.
        """
        from ..rdf.ntriples import serialize_ntriples

        with open(path, "w", encoding="utf-8") as handle:
            handle.write(serialize_ntriples(self.graph.triples()))

    @classmethod
    def load(cls, path, items: Iterable[Node] | None = None) -> "Workspace":
        """Rebuild a workspace from a saved N-Triples file."""
        from ..rdf.ntriples import parse_ntriples

        with open(path, encoding="utf-8") as handle:
            graph = parse_ntriples(handle.read())
        return cls(graph, items=items)

    def __repr__(self) -> str:
        return (
            f"<Workspace items={len(self.items)} "
            f"triples={len(self.graph)}>"
        )
