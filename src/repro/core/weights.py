"""Shared weighting conventions for analysts (§4.1).

"Analysts providing suggestions to a shared advisor therefore need to
have a common approach to giving weights to suggestions."  The helpers
here implement that convention:

* refinement suggestions use the **query-refinement weight** of §5.3 —
  the value's normalized term weight in the collection's average
  document, which by construction favors values "common (but not too
  common) in the current result set";
* similarity suggestions use the retrieval **dot-product score**;
* history suggestions use recency / follow-count transforms that map
  into the same [0, 1]-ish scale.
"""

from __future__ import annotations

import math

__all__ = [
    "refinement_weight",
    "similarity_weight",
    "recency_weight",
    "follow_weight",
    "share_weight",
]


def refinement_weight(
    count_in_collection: int, collection_size: int, idf: float
) -> float:
    """Weight for a facet-value refinement.

    Combines within-collection support (log-damped coverage) with the
    corpus idf, matching the "common but not too common" heuristic of
    Vélez et al. that §5.3 adapts.  Zero when the value covers nothing
    or everything (a value in every item cannot refine).
    """
    if collection_size <= 0:
        return 0.0
    if count_in_collection <= 0 or count_in_collection >= collection_size:
        return 0.0
    coverage = count_in_collection / collection_size
    return math.log(1.0 + count_in_collection) * coverage * (1.0 - coverage) * (
        1.0 + idf
    )


def similarity_weight(score: float) -> float:
    """Weight for a similar-item suggestion: the retrieval score itself."""
    return max(0.0, score)


def recency_weight(position: int) -> float:
    """Weight for the i-th most recent history entry (0 = newest)."""
    if position < 0:
        return 0.0
    return 1.0 / (1.0 + position)


def follow_weight(times_followed: int) -> float:
    """Weight for a Similar-by-Visit hop followed ``n`` times before."""
    if times_followed <= 0:
        return 0.0
    return 1.0 - 1.0 / (1.0 + math.log(1.0 + times_followed))


def share_weight(n_sharing: int, idf: float) -> float:
    """Weight for a "sharing a property" hop from an item.

    A shared value is interesting when it is corpus-rare (high idf) and
    the set of fellow items is small enough to browse; the log damping
    keeps huge shared sets from vanishing entirely.
    """
    if n_sharing <= 0:
        return 0.0
    return (1.0 + idf) / (1.0 + math.log(1.0 + n_sharing))
