"""Similar-by-Content analysts (§4.1).

"There are typically two different analysts that are associated with
this advisor, one for working with single items and providing other
related items, and the other for working with collections and providing
more items similar to the items in the collection."  Both run the fuzzy
vector-space retrieval of §5.3 over every coordinate kind at once —
"similar structural elements (properties) and similar textual elements".
"""

from __future__ import annotations

from ..advisors import RELATED_ITEMS
from ..blackboard import Blackboard
from ..suggestions import GoToCollection
from ..view import View
from ..weights import similarity_weight
from .base import Analyst

__all__ = ["SimilarToItemAnalyst", "SimilarToCollectionAnalyst"]


class SimilarToItemAnalyst(Analyst):
    """For item views: other items with similar overall content."""

    name = "similar-by-content-item"

    def __init__(self, k: int = 10, min_score: float = 1e-9):
        self.k = k
        self.min_score = min_score

    def triggers_on(self, view: View) -> bool:
        return view.is_item and view.item in view.workspace.model

    def analyze(self, view: View, blackboard: Blackboard) -> None:
        workspace = view.workspace
        hits = [
            hit
            for hit in workspace.vector_store.similar_to_item(view.item, self.k)
            if hit.score >= self.min_score
        ]
        if not hits:
            return
        label = workspace.label(view.item)
        self.post(
            blackboard,
            RELATED_ITEMS,
            f"Similar by Content (Overall) to {label}",
            GoToCollection(
                [hit.item for hit in hits],
                f"items similar to {label}",
            ),
            weight=similarity_weight(hits[0].score),
            group="Similar Items",
        )


class SimilarToCollectionAnalyst(Analyst):
    """For collection views: more items like the collection's members.

    Retrieval is against the "average member" centroid (§5.3); current
    members are excluded so the suggestion expands the collection.
    """

    name = "similar-by-content-collection"

    def __init__(self, k: int = 10, min_score: float = 1e-9):
        self.k = k
        self.min_score = min_score

    def triggers_on(self, view: View) -> bool:
        return view.is_collection and bool(view.items)

    def analyze(self, view: View, blackboard: Blackboard) -> None:
        workspace = view.workspace
        hits = [
            hit
            for hit in workspace.vector_store.similar_to_collection(
                view.items, self.k
            )
            if hit.score >= self.min_score
        ]
        if not hits:
            return
        self.post(
            blackboard,
            RELATED_ITEMS,
            "More items like these (Overall content)",
            GoToCollection(
                [hit.item for hit in hits],
                "items similar to the current collection",
            ),
            weight=similarity_weight(hits[0].score),
            group="Similar Items",
        )
