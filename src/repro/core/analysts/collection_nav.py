"""Related-collections analyst: navigate to the facet values themselves.

§3.3: "since the navigation suggestions are created by the user
interface inside one or more collections, users can navigate to these
collections of suggestions ... and browse them to find refinements
useful for the original query" — e.g. from a collection of recipes to
the collection of their ingredients, refine *that*, and apply the result
back with an any/all quantifier.
"""

from __future__ import annotations

from ...rdf.terms import Literal, Resource
from ..advisors import MODIFY
from ..blackboard import Blackboard
from ..suggestions import GoToCollection
from ..view import View
from .base import Analyst
from .common import ANNOTATION_PROPERTIES

__all__ = ["RelatedCollectionsAnalyst"]


class RelatedCollectionsAnalyst(Analyst):
    """Posts "browse the <property> values" hops for collection views."""

    name = "related-collections"

    def __init__(self, min_values: int = 2, max_values: int = 500):
        self.min_values = min_values
        self.max_values = max_values

    def triggers_on(self, view: View) -> bool:
        return view.is_collection and len(view.items) > 1

    def analyze(self, view: View, blackboard: Blackboard) -> None:
        workspace = view.workspace
        by_property: dict[Resource, set] = {}
        for item in view.items:
            for prop, values in workspace.graph.properties_of(item).items():
                if prop in ANNOTATION_PROPERTIES or workspace.schema.is_hidden(prop):
                    continue
                targets = by_property.setdefault(prop, set())
                for value in values:
                    if not isinstance(value, Literal):
                        targets.add(value)
        for prop, targets in sorted(by_property.items(), key=lambda kv: kv[0].uri):
            if not (self.min_values <= len(targets) <= self.max_values):
                continue
            label = workspace.schema.label(prop)
            members = sorted(targets, key=lambda n: n.n3())
            self.post(
                blackboard,
                MODIFY,
                f"Browse the {label} values ({len(members)})",
                GoToCollection(members, f"values of {label}"),
                weight=min(1.0, len(members) / len(view.items)),
                group="Related Collections",
            )
