"""The multi-hop path analyst: composition chips discovered from data.

Where :class:`RefinementAnalyst` follows *schema-annotated* attribute
compositions, this analyst discovers two-hop chains from the instance
data itself: for every item in view whose property value is a node with
properties of its own, the chain ``p1/p2 : value`` is a candidate
refinement.  Chips are posted as :class:`~repro.query.ast.Path`
predicates, so selecting one exercises the same typed-path machinery
the query bar's ``author/affiliation`` syntax reaches — and the
differential fuzzer's suggestion probe previews these chips against the
naive model, racing path evaluation on every suggestion cycle.
"""

from __future__ import annotations

from collections import Counter

from ...query.ast import Path, PathStep
from ...rdf.terms import Literal
from ..advisors import REFINE_COLLECTION
from ..blackboard import Blackboard
from ..suggestions import Refine
from ..view import View
from ..weights import refinement_weight
from .base import Analyst
from .common import ANNOTATION_PROPERTIES, is_facetable_value

__all__ = ["PathAnalyst"]


class PathAnalyst(Analyst):
    """Posts two-hop ``p1/p2 : value`` refinements for collection views."""

    name = "refine-by-path"

    def __init__(self, max_chips: int = 12):
        self.max_chips = max_chips

    def triggers_on(self, view: View) -> bool:
        return view.is_collection and len(view.items) > 1

    def analyze(self, view: View, blackboard: Blackboard) -> None:
        workspace = view.workspace
        graph = workspace.graph
        schema = workspace.schema
        size = len(view.items)
        counts: Counter = Counter()
        for item in view.items:
            seen: set = set()
            for p1, mids in graph.properties_of(item).items():
                if p1 in ANNOTATION_PROPERTIES or schema.is_hidden(p1):
                    continue
                for mid in mids:
                    if isinstance(mid, Literal):
                        continue  # literals have no outgoing edges
                    for p2, values in graph.properties_of(mid).items():
                        if p2 in ANNOTATION_PROPERTIES or schema.is_hidden(p2):
                            continue
                        declared = schema.value_type(p2)
                        for value in values:
                            if not is_facetable_value(value, declared):
                                continue
                            seen.add((p1, p2, value))
            counts.update(seen)
        ranked = sorted(
            counts.items(),
            key=lambda kv: (
                -kv[1],
                kv[0][0].uri,
                kv[0][1].uri,
                kv[0][2].n3(),
            ),
        )
        posted = 0
        for (p1, p2, value), count in ranked:
            if posted >= self.max_chips:
                break
            if count >= size:
                continue  # present via this chain in every item
            weight = refinement_weight(count, size, 1.0)
            if weight <= 0.0:
                continue
            self.post(
                blackboard,
                REFINE_COLLECTION,
                f"{schema.label(value)} ({count})",
                Refine(Path((PathStep(p1), PathStep(p2)), value)),
                weight=weight,
                group=f"{schema.label(p1)} / {schema.label(p2)}",
            )
            posted += 1
