"""The Scatter/Gather analyst: topical sub-collections on demand (§2).

For medium-to-large collection views, posts one "gather" suggestion per
topical cluster found by spherical k-means over the item vectors —
Scatter/Gather's pick-a-cluster-to-shrink loop, inside Magnet's advisor
framework.
"""

from __future__ import annotations

from ...vsm.cluster import cluster_collection
from ..advisors import RELATED_ITEMS
from ..blackboard import Blackboard
from ..suggestions import GoToCollection
from ..view import View
from .base import Analyst

__all__ = ["ScatterGatherAnalyst"]


class ScatterGatherAnalyst(Analyst):
    """Posts cluster sub-collections for sizeable collection views."""

    name = "scatter-gather"

    def __init__(self, k: int = 4, min_items: int = 8, max_items: int = 2000):
        self.k = k
        self.min_items = min_items
        self.max_items = max_items

    def triggers_on(self, view: View) -> bool:
        return (
            view.is_collection
            and self.min_items <= len(view.items) <= self.max_items
        )

    def analyze(self, view: View, blackboard: Blackboard) -> None:
        clusters = cluster_collection(
            view.workspace.model, view.items, k=self.k
        )
        if len(clusters) < 2:
            return  # no topical structure worth showing
        for cluster in clusters:
            share = len(cluster.items) / len(view.items)
            self.post(
                blackboard,
                RELATED_ITEMS,
                f"Cluster: {cluster.label()} ({len(cluster.items)})",
                GoToCollection(
                    cluster.items,
                    f"cluster around {cluster.label()}",
                ),
                # mid-sized clusters are the interesting ones, like facet
                # values that are common but not too common
                weight=0.6 * share * (1.0 - share) * 4.0,
                group="Clusters",
            )
