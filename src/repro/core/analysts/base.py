"""Analyst base class and triggering contract (§4.3).

An analyst is an algorithmic unit "triggered by the framework based on
the currently viewed (document, collection of documents / result set,
query, etc.)".  Subclasses implement:

* :meth:`Analyst.triggers_on` — whether this view activates the analyst
  (the "triggered when a user navigates to items of a given type"
  mechanism), and
* :meth:`Analyst.analyze` — inspect the view and post suggestions.

Analysts triggered "by results from other analysts" instead override
:meth:`Analyst.on_posted` and return True from :meth:`is_reactive`.
"""

from __future__ import annotations

from ..blackboard import Blackboard
from ..suggestions import Suggestion
from ..view import View

__all__ = ["Analyst"]


class Analyst:
    """Base class for all navigation analysts."""

    #: Stable identifier, used to tag suggestions for debugging/studies.
    name = "analyst"

    def triggers_on(self, view: View) -> bool:
        """True when this analyst should run for the given view."""
        raise NotImplementedError

    def analyze(self, view: View, blackboard: Blackboard) -> None:
        """Inspect the view and post suggestions to the blackboard."""
        raise NotImplementedError

    def is_reactive(self) -> bool:
        """True for analysts triggered by other analysts' postings."""
        return False

    def on_posted(
        self, view: View, blackboard: Blackboard, suggestion: Suggestion
    ) -> None:
        """React to another analyst's posting (reactive analysts only)."""

    def post(
        self,
        blackboard: Blackboard,
        advisor: str,
        title: str,
        action,
        weight: float = 0.0,
        group: str | None = None,
    ) -> Suggestion:
        """Helper: build, tag, and post a suggestion."""
        suggestion = Suggestion(
            advisor, title, action, weight=weight, group=group, analyst=self.name
        )
        blackboard.post(suggestion)
        return suggestion

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"
