"""Text-refinement analysts: words in the body/title, and query-within.

§3.2: the Refine Collections advisor "suggests refining the search by
one of the metadata attribute axes, as well as by words in the body or
in the title of the document"; §4.3: other analysts "provide support for
keyword search within the collection (as shown under 'Query')".
"""

from __future__ import annotations

from collections import Counter

from ...query.ast import TextMatch
from ...rdf.terms import Literal
from ...vsm.tokenizer import tokenize
from ..advisors import REFINE_COLLECTION
from ..blackboard import Blackboard
from ..suggestions import Invoke, Refine
from ..view import View
from ..weights import refinement_weight
from .base import Analyst
from .common import ANNOTATION_PROPERTIES

__all__ = ["TextRefinementAnalyst", "KeywordSearchAnalyst"]


class TextRefinementAnalyst(Analyst):
    """Suggests discriminating words from the collection's text values.

    This is §5.3's query-refinement technique applied per text property:
    "picking terms in the average document having the largest normalized
    term weights" — i.e. words common (but not too common) in the result
    set, with corpus idf folded in.
    """

    name = "refine-by-text"

    def __init__(self, max_words_per_property: int = 10, min_items: int = 2):
        self.max_words_per_property = max_words_per_property
        self.min_items = min_items

    def triggers_on(self, view: View) -> bool:
        return view.is_collection and len(view.items) >= self.min_items

    def analyze(self, view: View, blackboard: Blackboard) -> None:
        workspace = view.workspace
        analyzer = workspace.text_index.analyzer
        size = len(view.items)
        # token document-frequency within the collection, per property;
        # surface forms are remembered so the pane shows "parsley", not
        # the stem "parslei" (TextMatch re-analyzes, so either works).
        per_property: dict = {}
        surfaces: dict = {}
        for item in view.items:
            for prop, values in workspace.graph.properties_of(item).items():
                if prop in ANNOTATION_PROPERTIES or workspace.schema.is_hidden(prop):
                    continue
                tokens: set[str] = set()
                for value in values:
                    if not isinstance(value, Literal):
                        continue
                    if value.is_numeric or value.is_temporal:
                        continue
                    for raw in tokenize(value.lexical):
                        if analyzer.stop_words and raw in analyzer.stop_words:
                            continue
                        stem = analyzer.stem_token(raw)
                        tokens.add(stem)
                        surfaces.setdefault((prop, stem), Counter())[raw] += 1
                if tokens:
                    bucket = per_property.setdefault(prop, Counter())
                    for token in tokens:
                        bucket[token] += 1
        for prop, counts in sorted(per_property.items(), key=lambda kv: kv[0].uri):
            corpus_df = workspace.text_index.token_frequencies(within=prop)
            universe = len(workspace.text_index.indexed_items) or 1
            group = f"words in {workspace.schema.label(prop)}"
            scored = []
            for token, count in counts.items():
                if count >= size:
                    continue  # in every item: not a refinement
                df = corpus_df.get(token, count)
                idf = _safe_idf(universe, df)
                weight = refinement_weight(count, size, idf)
                if weight > 0.0:
                    scored.append((weight, token, count))
            scored.sort(key=lambda entry: (-entry[0], entry[1]))
            for weight, token, count in scored[: self.max_words_per_property]:
                forms = surfaces.get((prop, token))
                display = forms.most_common(1)[0][0] if forms else token
                self.post(
                    blackboard,
                    REFINE_COLLECTION,
                    f"“{display}” ({count})",
                    Refine(TextMatch(display, within=prop)),
                    weight=weight,
                    group=group,
                )


def _safe_idf(universe: int, df: int) -> float:
    import math

    if df <= 0 or df >= universe:
        return 0.0
    return math.log(universe / df)


class KeywordSearchAnalyst(Analyst):
    """Posts the always-available "Query within this collection" entry.

    Selecting it requires user input, so the action is the most general
    kind §4.3 allows: an :class:`Invoke` whose callback the session wires
    to its ``search_within`` operation.
    """

    name = "keyword-search-within"

    def __init__(self, weight: float = 0.25):
        self.weight = weight

    def triggers_on(self, view: View) -> bool:
        return view.is_collection and bool(view.items)

    def analyze(self, view: View, blackboard: Blackboard) -> None:
        self.post(
            blackboard,
            REFINE_COLLECTION,
            "Query within this collection…",
            Invoke(lambda: None, "prompt for keywords, then refine"),
            weight=self.weight,
            group=None,
        )
