"""Type-scoped analyst triggering (§4.3's extensibility mechanism).

"Analysts are triggered by one of many mechanisms.  They can be
triggered when a user navigates to items of a given type (for example
collections or e-mails)" — and the advisor framework is "integrated in
an easily extensible manner to allow schema experts to support new
search activities".

:class:`TypeScopedAnalyst` wraps any analyst so it only fires when the
view concerns a given ``rdf:type``: an item view of that type, or a
collection where at least ``min_fraction`` of the items carry it.  This
is how a schema expert ships, say, an e-mail-specific analyst without
touching the engine.
"""

from __future__ import annotations

from ...rdf.terms import Resource
from ...rdf.vocab import RDF
from ..blackboard import Blackboard
from ..view import View
from .base import Analyst

__all__ = ["TypeScopedAnalyst"]


class TypeScopedAnalyst(Analyst):
    """Runs an inner analyst only for views of one rdf:type."""

    def __init__(
        self,
        rdf_type: Resource,
        inner: Analyst,
        min_fraction: float = 0.5,
    ):
        if not 0.0 < min_fraction <= 1.0:
            raise ValueError("min_fraction must be in (0, 1]")
        self.rdf_type = rdf_type
        self.inner = inner
        self.min_fraction = min_fraction
        self.name = f"{inner.name}@{rdf_type.local_name}"

    def triggers_on(self, view: View) -> bool:
        if not self._view_in_scope(view):
            return False
        return self.inner.triggers_on(view)

    def analyze(self, view: View, blackboard: Blackboard) -> None:
        self.inner.analyze(view, blackboard)

    def is_reactive(self) -> bool:
        return self.inner.is_reactive()

    def on_posted(self, view, blackboard, suggestion) -> None:
        if self._view_in_scope(view):
            self.inner.on_posted(view, blackboard, suggestion)

    def _view_in_scope(self, view: View) -> bool:
        graph = view.workspace.graph
        if view.is_item:
            return (view.item, RDF.type, self.rdf_type) in graph
        if not view.items:
            return False
        matching = sum(
            1
            for item in view.items
            if (item, RDF.type, self.rdf_type) in graph
        )
        return matching / len(view.items) >= self.min_fraction

    def __repr__(self) -> str:
        return (
            f"<TypeScopedAnalyst {self.rdf_type.local_name!r} "
            f"wrapping {self.inner!r}>"
        )
