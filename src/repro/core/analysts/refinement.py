"""The Refine-Collection facet analyst (§4.1, §4.3).

"One analyst looks for commonly occurring property values and adds them
as possible constraints to the current query."  For every facetable
(property, value) pair "common to some but not all items in the
collection", a refinement suggestion is posted, weighted by the §5.3
query-refinement convention (common-but-not-too-common, idf-adjusted).

Composed attribute chains (from schema annotations or important-property
expansion) are treated identically, which is what makes Figure 6's
"type / content / creator / date on the body" refinements appear.
"""

from __future__ import annotations

from ...query.ast import HasValue, PathValue
from ..advisors import REFINE_COLLECTION
from ..blackboard import Blackboard
from ..suggestions import Refine
from ..view import View
from ..weights import refinement_weight
from .base import Analyst
from .common import composed_facet_counts, path_label, value_idf

__all__ = ["RefinementAnalyst"]


class RefinementAnalyst(Analyst):
    """Posts facet-value refinements for collection views."""

    name = "refine-by-property-value"

    def __init__(self, max_values_per_property: int = 24):
        self.max_values_per_property = max_values_per_property

    def triggers_on(self, view: View) -> bool:
        return view.is_collection and len(view.items) > 1

    def analyze(self, view: View, blackboard: Blackboard) -> None:
        workspace = view.workspace
        size = len(view.items)
        universe = len(workspace.query_context.universe)
        for prop, values in sorted(
            workspace.facet_profile(view.items).facet_counts().items(),
            key=lambda kv: kv[0].uri,
        ):
            group = workspace.schema.label(prop)
            ranked = values.most_common(self.max_values_per_property)
            for value, count in ranked:
                if count >= size:
                    continue  # present in every item: cannot refine
                idf = value_idf(workspace.graph, universe, prop, value)
                weight = refinement_weight(count, size, idf)
                if weight <= 0.0:
                    continue
                self.post(
                    blackboard,
                    REFINE_COLLECTION,
                    f"{workspace.schema.label(value)} ({count})",
                    Refine(HasValue(prop, value)),
                    weight=weight,
                    group=group,
                )
        if not workspace.model.use_compositions:
            return
        for chain, values in sorted(
            composed_facet_counts(
                workspace.graph, workspace.schema, view.items
            ).items(),
            key=lambda kv: [p.uri for p in kv[0]],
        ):
            group = path_label(workspace.schema, chain)
            ranked = values.most_common(self.max_values_per_property)
            for value, count in ranked:
                if count >= size:
                    continue
                weight = refinement_weight(count, size, 1.0)
                if weight <= 0.0:
                    continue
                self.post(
                    blackboard,
                    REFINE_COLLECTION,
                    f"{workspace.schema.label(value)} ({count})",
                    Refine(PathValue(chain, value)),
                    weight=weight,
                    group=group,
                )
