"""Shared helpers for analysts: facet extraction and display names."""

from __future__ import annotations

import math
from collections import Counter
from typing import Iterable, Sequence

from ...rdf.graph import Graph
from ...rdf.schema import Schema, ValueType
from ...rdf.terms import Literal, Node, Resource
from ...rdf.vocab import MAGNET, RDFS
from ...vsm.composition import compose_values

__all__ = [
    "ANNOTATION_PROPERTIES",
    "facet_counts",
    "composed_facet_counts",
    "value_idf",
    "is_facetable_value",
    "path_label",
]

#: Properties that are schema plumbing, never navigation facets.
ANNOTATION_PROPERTIES = frozenset(
    {
        MAGNET.valueType,
        MAGNET.compose,
        MAGNET.hidden,
        MAGNET.importantProperty,
        RDFS.label,
    }
)

#: Literal values longer than this are "body text", not facet values.
_MAX_FACET_LITERAL_TOKENS = 6
_MAX_FACET_LITERAL_CHARS = 48


def is_facetable_value(value: Node, declared_type: str | None) -> bool:
    """True when a value can serve as an exact-match facet entry.

    Resources always can.  Literals obey the declared value type first:
    continuous types go to range widgets, ``text`` means prose (words-in
    refinements cover it, not exact values), ``object`` forces
    facetability.  Undeclared literals are sniffed: numeric/temporal are
    excluded, and only short strings qualify.
    """
    if not isinstance(value, Literal):
        return True
    if declared_type in ValueType.CONTINUOUS or declared_type == ValueType.TEXT:
        return False
    if declared_type == ValueType.OBJECT:
        return True
    if value.is_numeric or value.is_temporal:
        return False
    if len(value.lexical) > _MAX_FACET_LITERAL_CHARS:
        return False
    return len(value.lexical.split()) <= _MAX_FACET_LITERAL_TOKENS


def facet_counts(
    graph: Graph, schema: Schema, items: Sequence[Node]
) -> dict[Resource, Counter]:
    """Per-property value counts over a collection.

    Returns {property: Counter({value: item count})} for every facetable
    (property, value) pair, skipping hidden and annotation properties.
    Counts are item counts: a multi-valued item contributes once per
    distinct value.
    """
    counts: dict[Resource, Counter] = {}
    declared_cache: dict[Resource, str | None] = {}
    hidden_cache: dict[Resource, bool] = {}
    for item in items:
        for prop, values in graph.properties_of(item).items():
            if prop in ANNOTATION_PROPERTIES:
                continue
            hidden = hidden_cache.get(prop)
            if hidden is None:
                hidden = schema.is_hidden(prop)
                hidden_cache[prop] = hidden
            if hidden:
                continue
            declared = declared_cache.get(prop, "?")
            if declared == "?":
                declared = schema.value_type(prop)
                declared_cache[prop] = declared
            bucket = counts.setdefault(prop, Counter())
            for value in values:
                if is_facetable_value(value, declared):
                    bucket[value] += 1
    return {p: c for p, c in counts.items() if c}


def composed_facet_counts(
    graph: Graph, schema: Schema, items: Sequence[Node]
) -> dict[tuple[Resource, ...], Counter]:
    """Facet counts along each annotated attribute composition."""
    counts: dict[tuple[Resource, ...], Counter] = {}
    chains = schema.effective_compositions()
    for chain in chains:
        if any(schema.is_hidden(p) for p in chain):
            continue
        declared = schema.value_type(chain[-1])
        bucket = counts.setdefault(chain, Counter())
        for item in items:
            for value in set(compose_values(graph, item, chain)):
                if is_facetable_value(value, declared):
                    bucket[value] += 1
    return {c: b for c, b in counts.items() if b}


def value_idf(graph: Graph, universe_size: int, prop: Resource, value: Node) -> float:
    """Corpus idf of an exact (property, value) pair."""
    df = sum(1 for _ in graph.subjects(prop, value))
    if df <= 0 or universe_size <= 0 or df >= universe_size:
        return 0.0
    return math.log(universe_size / df)


def path_label(schema: Schema, path: Iterable[Resource]) -> str:
    """Display name of a property chain: "body → creator" style."""
    return " → ".join(schema.label(p) for p in path)
