"""Shared helpers for analysts: facet extraction and display names."""

from __future__ import annotations

import math
from collections import Counter
from typing import Iterable, Sequence

from ...rdf.graph import Graph
from ...rdf.schema import Schema, ValueType
from ...rdf.terms import Literal, Node, Resource
from ...rdf.vocab import MAGNET, RDFS
from ...vsm.composition import compose_values

__all__ = [
    "ANNOTATION_PROPERTIES",
    "PropertyProfile",
    "CollectionProfile",
    "collection_profile",
    "facet_counts",
    "composed_facet_counts",
    "value_idf",
    "is_facetable_value",
    "path_label",
]

#: Properties that are schema plumbing, never navigation facets.
ANNOTATION_PROPERTIES = frozenset(
    {
        MAGNET.valueType,
        MAGNET.compose,
        MAGNET.hidden,
        MAGNET.importantProperty,
        RDFS.label,
    }
)

#: Literal values longer than this are "body text", not facet values.
_MAX_FACET_LITERAL_TOKENS = 6
_MAX_FACET_LITERAL_CHARS = 48


def is_facetable_value(value: Node, declared_type: str | None) -> bool:
    """True when a value can serve as an exact-match facet entry.

    Resources always can.  Literals obey the declared value type first:
    continuous types go to range widgets, ``text`` means prose (words-in
    refinements cover it, not exact values), ``object`` forces
    facetability.  Undeclared literals are sniffed: numeric/temporal are
    excluded, and only short strings qualify.
    """
    if not isinstance(value, Literal):
        return True
    if declared_type in ValueType.CONTINUOUS or declared_type == ValueType.TEXT:
        return False
    if declared_type == ValueType.OBJECT:
        return True
    if value.is_numeric or value.is_temporal:
        return False
    if len(value.lexical) > _MAX_FACET_LITERAL_CHARS:
        return False
    return len(value.lexical.split()) <= _MAX_FACET_LITERAL_TOKENS


class PropertyProfile:
    """Everything one sweep learns about a single property.

    ``counts`` holds facetable-value item counts (the legacy
    :func:`facet_counts` payload), ``coverage`` the number of collection
    items carrying the property, ``continuous_tally``/``value_tally``
    the numeric-vs-total value occurrence split used for continuous
    detection, and ``readings`` every value mapped onto the real line
    (the legacy :func:`~repro.query.preview.collect_values` payload).
    """

    __slots__ = (
        "prop",
        "declared",
        "is_annotation",
        "counts",
        "coverage",
        "continuous_tally",
        "value_tally",
        "_readings",
        "_sorted_readings",
        "_value_info",
    )

    def __init__(self, prop: Resource, declared: str | None, is_annotation: bool):
        self.prop = prop
        self.declared = declared
        self.is_annotation = is_annotation
        self.counts: Counter = Counter()
        self.coverage = 0
        self.continuous_tally = 0
        self.value_tally = 0
        self._readings: list[float] = []
        self._sorted_readings: list[float] | None = None
        #: value -> (facetable, counts-as-continuous, numeric reading)
        self._value_info: dict[Node, tuple[bool, bool, float | None]] = {}

    def classify(self, value: Node) -> tuple[bool, bool, float | None]:
        """Per-value classification, memoized per distinct value.

        Facet values repeat heavily across a collection (a cuisine, an
        ingredient), so paying string-splitting and number-parsing once
        per *distinct* value is most of this sweep's speedup.
        """
        info = self._value_info.get(value)
        if info is None:
            facetable = is_facetable_value(value, self.declared)
            if isinstance(value, Literal):
                continuous = value.is_numeric or value.is_temporal
                number = value.as_number()
            else:
                continuous = False
                number = None
            info = (facetable, continuous, number)
            self._value_info[value] = info
        return info

    def sorted_readings(self) -> list[float]:
        """All numeric readings, sorted (computed once, then reused)."""
        if self._sorted_readings is None:
            self._sorted_readings = sorted(self._readings)
        return self._sorted_readings

    def __repr__(self) -> str:
        return (
            f"<PropertyProfile {self.prop!r} coverage={self.coverage} "
            f"values={self.value_tally}>"
        )


class CollectionProfile:
    """One-sweep summary of a collection's metadata occurrence.

    Replaces the layered scans the facet overview used to perform (one
    value-count pass, one coverage pass per property, one continuous-
    detection pass, one readings pass per continuous property) with a
    single pass over ``properties_of`` whose results every consumer
    shares.  All accessors reproduce the legacy functions' outputs
    exactly, including dict/Counter insertion order.
    """

    __slots__ = ("properties", "item_count")

    def __init__(self, item_count: int):
        #: property -> profile, in first-encounter order over the sweep
        self.properties: dict[Resource, PropertyProfile] = {}
        self.item_count = item_count

    def facet_counts(self) -> dict[Resource, Counter]:
        """The legacy {property: Counter} payload (same insertion order)."""
        return {
            prop: profile.counts
            for prop, profile in self.properties.items()
            if not profile.is_annotation and profile.counts
        }

    def coverage(self, prop: Resource) -> int:
        """Number of collection items carrying the property."""
        profile = self.properties.get(prop)
        return profile.coverage if profile is not None else 0

    def sorted_readings(self, prop: Resource) -> list[float]:
        """Numeric readings of a property, sorted ascending (copied)."""
        profile = self.properties.get(prop)
        return list(profile.sorted_readings()) if profile is not None else []

    def continuous_properties(
        self,
        schema: Schema,
        threshold: float = 0.9,
        skip_annotation: bool = False,
        require_numeric: bool = False,
    ) -> list[Resource]:
        """Properties qualifying for range treatment, sorted.

        A property qualifies when its schema annotation declares a
        continuous type or at least ``threshold`` of its observed value
        occurrences are numeric/temporal literals.  The two flags mirror
        the two historical call sites: the facet overview admits
        annotation properties and a 100%-non-numeric 0/0 never arises;
        the range analyst skips annotation properties and additionally
        requires at least one numeric occurrence.
        """
        qualified: list[Resource] = []
        for prop, profile in self.properties.items():
            if skip_annotation and profile.is_annotation:
                continue
            if schema.is_continuous(prop):
                qualified.append(prop)
                continue
            total = profile.value_tally
            if total and profile.continuous_tally / total >= threshold:
                if require_numeric and profile.continuous_tally <= 0:
                    continue
                qualified.append(prop)
        return sorted(qualified)

    def __repr__(self) -> str:
        return (
            f"<CollectionProfile {len(self.properties)} properties over "
            f"{self.item_count} items>"
        )


def collection_profile(
    graph: Graph, schema: Schema, items: Sequence[Node]
) -> CollectionProfile:
    """Single-pass metadata profile of a collection.

    The sweep iterates ``properties_of`` copies in the exact order the
    legacy multi-pass code did, so every derived payload — value
    Counters, coverage, continuous tallies, readings — is bit-for-bit
    what the separate scans produced.
    """
    profile = CollectionProfile(len(items))
    properties = profile.properties
    hidden_cache: dict[Resource, bool] = {}
    for item in items:
        for prop, values in graph.properties_of(item).items():
            prop_profile = properties.get(prop)
            if prop_profile is None:
                hidden = hidden_cache.get(prop)
                if hidden is None:
                    hidden = schema.is_hidden(prop)
                    hidden_cache[prop] = hidden
                if hidden:
                    continue
                prop_profile = PropertyProfile(
                    prop,
                    schema.value_type(prop),
                    prop in ANNOTATION_PROPERTIES,
                )
                properties[prop] = prop_profile
            prop_profile.coverage += 1
            classify = prop_profile.classify
            counts = prop_profile.counts
            readings = prop_profile._readings
            continuous_seen = 0
            for value in values:
                facetable, continuous, number = classify(value)
                if facetable:
                    counts[value] += 1
                if continuous:
                    continuous_seen += 1
                if number is not None:
                    readings.append(number)
            prop_profile.value_tally += len(values)
            prop_profile.continuous_tally += continuous_seen
    return profile


def facet_counts(
    graph: Graph, schema: Schema, items: Sequence[Node]
) -> dict[Resource, Counter]:
    """Per-property value counts over a collection.

    Returns {property: Counter({value: item count})} for every facetable
    (property, value) pair, skipping hidden and annotation properties.
    Counts are item counts: a multi-valued item contributes once per
    distinct value.
    """
    return collection_profile(graph, schema, items).facet_counts()


def composed_facet_counts(
    graph: Graph, schema: Schema, items: Sequence[Node]
) -> dict[tuple[Resource, ...], Counter]:
    """Facet counts along each annotated attribute composition."""
    counts: dict[tuple[Resource, ...], Counter] = {}
    chains = schema.effective_compositions()
    for chain in chains:
        if any(schema.is_hidden(p) for p in chain):
            continue
        declared = schema.value_type(chain[-1])
        bucket = counts.setdefault(chain, Counter())
        for item in items:
            for value in set(compose_values(graph, item, chain)):
                if is_facetable_value(value, declared):
                    bucket[value] += 1
    return {c: b for c, b in counts.items() if b}


def value_idf(graph: Graph, universe_size: int, prop: Resource, value: Node) -> float:
    """Corpus idf of an exact (property, value) pair."""
    df = graph.count_subjects(prop, value)
    if df <= 0 or universe_size <= 0 or df >= universe_size:
        return 0.0
    return math.log(universe_size / df)


def path_label(schema: Schema, path: Iterable[Resource]) -> str:
    """Display name of a property chain: "body → creator" style."""
    return " → ".join(schema.label(p) for p in path)
