"""Range-widget analyst for continuous attributes (§4.3, §5.4, Figure 5).

"Others provide support for refining the collection based on the type of
the data in the collection (for example having range widgets for
refining continuous valued types)."  A property qualifies when its
schema annotation declares a continuous type, or — absent annotations —
when its observed literal values are numeric/temporal (the heuristic
path §7 anticipates).  Compositions ending in a continuous property get
widgets too, which yields Figure 6's "date on the body" control.
"""

from __future__ import annotations

from ...query.preview import RangePreview
from ...rdf.terms import Literal, Resource
from ...vsm.composition import compose_values
from ..advisors import REFINE_COLLECTION
from ..blackboard import Blackboard
from ..suggestions import OpenRangeWidget
from ..view import View
from .base import Analyst
from .common import path_label

__all__ = ["RangeAnalyst"]


class RangeAnalyst(Analyst):
    """Posts range-widget suggestions for continuous attributes."""

    name = "refine-by-range"

    def __init__(self, min_items: int = 2, min_distinct: int = 2,
                 detection_support: float = 0.9):
        self.min_items = min_items
        self.min_distinct = min_distinct
        self.detection_support = detection_support

    def triggers_on(self, view: View) -> bool:
        return view.is_collection and len(view.items) >= self.min_items

    def analyze(self, view: View, blackboard: Blackboard) -> None:
        workspace = view.workspace
        profile = workspace.facet_profile(view.items)
        for prop in self._continuous_properties(view):
            values = profile.sorted_readings(prop)
            if len(set(values)) < self.min_distinct:
                continue
            coverage = len(values) / len(view.items)
            self.post(
                blackboard,
                REFINE_COLLECTION,
                f"{workspace.schema.label(prop)} range…",
                OpenRangeWidget(prop, RangePreview(values)),
                weight=0.9 * min(1.0, coverage),
                group=workspace.schema.label(prop),
            )
        if not workspace.model.use_compositions:
            return
        for chain in workspace.schema.effective_compositions():
            last = chain[-1]
            if not workspace.schema.is_continuous(last):
                continue
            if any(workspace.schema.is_hidden(p) for p in chain):
                continue
            values: list[float] = []
            for item in view.items:
                for value in compose_values(workspace.graph, item, chain):
                    if isinstance(value, Literal):
                        number = value.as_number()
                        if number is not None:
                            values.append(number)
            if len(set(values)) < self.min_distinct:
                continue
            label = path_label(workspace.schema, chain)
            self.post(
                blackboard,
                REFINE_COLLECTION,
                f"{label} range…",
                OpenRangeWidget(last, RangePreview(sorted(values))),
                weight=0.8,
                group=label,
            )

    def _continuous_properties(self, view: View) -> list[Resource]:
        workspace = view.workspace
        return workspace.facet_profile(view.items).continuous_properties(
            workspace.schema,
            threshold=self.detection_support,
            skip_annotation=True,
            require_numeric=True,
        )
