"""Sharing-a-property analyst (§4.1's Related Items → Sharing a property).

For an item view, suggests collections of items "that have a given
metadata attribute and value in common with the currently viewed item".
Rarer shared values weigh more (a shared corpus-unique ingredient is a
better hop than a shared ubiquitous one).
"""

from __future__ import annotations

from ..advisors import RELATED_ITEMS
from ..blackboard import Blackboard
from ..suggestions import GoToCollection
from ..view import View
from ..weights import share_weight
from .base import Analyst
from .common import ANNOTATION_PROPERTIES, is_facetable_value, value_idf

__all__ = ["SharingPropertyAnalyst"]


class SharingPropertyAnalyst(Analyst):
    """Posts "sharing <property>: <value>" hops for item views."""

    name = "sharing-a-property"

    def __init__(self, max_collection: int = 200):
        self.max_collection = max_collection

    def triggers_on(self, view: View) -> bool:
        return view.is_item

    def analyze(self, view: View, blackboard: Blackboard) -> None:
        workspace = view.workspace
        universe = len(workspace.query_context.universe)
        for prop, values in sorted(
            workspace.graph.properties_of(view.item).items(),
            key=lambda kv: kv[0].uri,
        ):
            if prop in ANNOTATION_PROPERTIES or workspace.schema.is_hidden(prop):
                continue
            declared = workspace.schema.value_type(prop)
            group = f"Sharing {workspace.schema.label(prop)}"
            for value in sorted(values, key=lambda v: v.n3()):
                if not is_facetable_value(value, declared):
                    continue
                fellows = sorted(
                    (
                        other
                        for other in workspace.graph.subjects(prop, value)
                        if other != view.item
                        and other in workspace.query_context.universe
                    ),
                    key=lambda n: n.n3(),
                )
                if not fellows:
                    continue
                idf = value_idf(workspace.graph, universe, prop, value)
                self.post(
                    blackboard,
                    RELATED_ITEMS,
                    (
                        f"{workspace.schema.label(prop)}: "
                        f"{workspace.schema.label(value)} ({len(fellows)})"
                    ),
                    GoToCollection(
                        fellows[: self.max_collection],
                        f"items sharing {workspace.schema.label(prop)} = "
                        f"{workspace.schema.label(value)}",
                    ),
                    weight=share_weight(len(fellows), idf),
                    group=group,
                )
