"""Magnet's analysts: the algorithmic units feeding the blackboard."""

from .base import Analyst
from .collection_nav import RelatedCollectionsAnalyst
from .contrary import ContraryAnalyst
from .history import (
    PreviousItemsAnalyst,
    RefinementTrailAnalyst,
    SimilarByVisitAnalyst,
)
from .keyword import KeywordSearchAnalyst, TextRefinementAnalyst
from .paths import PathAnalyst
from .property_share import SharingPropertyAnalyst
from .range_ import RangeAnalyst
from .refinement import RefinementAnalyst
from .scatter import ScatterGatherAnalyst
from .scoped import TypeScopedAnalyst
from .similarity import SimilarToCollectionAnalyst, SimilarToItemAnalyst

__all__ = [
    "Analyst",
    "RelatedCollectionsAnalyst",
    "ContraryAnalyst",
    "PreviousItemsAnalyst",
    "RefinementTrailAnalyst",
    "SimilarByVisitAnalyst",
    "KeywordSearchAnalyst",
    "TextRefinementAnalyst",
    "PathAnalyst",
    "SharingPropertyAnalyst",
    "RangeAnalyst",
    "RefinementAnalyst",
    "ScatterGatherAnalyst",
    "TypeScopedAnalyst",
    "SimilarToCollectionAnalyst",
    "SimilarToItemAnalyst",
    "standard_analysts",
    "baseline_analysts",
]


def standard_analysts() -> list[Analyst]:
    """The complete system's analyst roster (§6.3's "complete system")."""
    return [
        RefinementAnalyst(),
        PathAnalyst(),
        TextRefinementAnalyst(),
        KeywordSearchAnalyst(),
        RangeAnalyst(),
        SimilarToItemAnalyst(),
        SimilarToCollectionAnalyst(),
        SharingPropertyAnalyst(),
        ContraryAnalyst(),
        RelatedCollectionsAnalyst(),
        PreviousItemsAnalyst(),
        RefinementTrailAnalyst(),
        SimilarByVisitAnalyst(),
    ]


def baseline_analysts() -> list[Analyst]:
    """The user study's baseline: Flamenco-style refinements only (§6.3).

    "We ... built a baseline system consisting of navigation advisors
    suggesting refinements roughly the same as those in the Flamenco
    system.  The baseline system also included terms from the text of
    the documents and allowed users to negate the terms" — but no
    similarity, no contrary advisor, no intelligent history.
    """
    return [
        RefinementAnalyst(),
        TextRefinementAnalyst(),
        KeywordSearchAnalyst(),
        RangeAnalyst(),
        PreviousItemsAnalyst(),
        RefinementTrailAnalyst(),
    ]
