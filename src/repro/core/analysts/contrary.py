"""Contrary-constraints analyst (§4.1).

Suggests collections "that have one of the current collection
constraints inverted.  This advisor helps users get an overview of other
related information that is available" — and, per the user study
(§6.3.1), it is the hook that got stuck users "started in the process"
of negation during the no-nuts task.
"""

from __future__ import annotations

from ...query.ast import And, Predicate
from ..advisors import MODIFY
from ..blackboard import Blackboard
from ..suggestions import NewQuery
from ..view import View
from .base import Analyst

__all__ = ["ContraryAnalyst"]


class ContraryAnalyst(Analyst):
    """Posts one inverted-constraint query per current constraint chip."""

    name = "contrary-constraints"

    def __init__(self, weight: float = 0.6):
        self.weight = weight

    def triggers_on(self, view: View) -> bool:
        return view.is_collection and bool(view.constraints())

    def analyze(self, view: View, blackboard: Blackboard) -> None:
        constraints = view.constraints()
        context = view.workspace.query_context
        for index, constraint in enumerate(constraints):
            inverted = self._invert_at(constraints, index)
            self.post(
                blackboard,
                MODIFY,
                f"Instead: NOT ({constraint.describe(context)})",
                NewQuery(inverted),
                weight=self.weight,
                group="Contrary Constraints",
            )

    @staticmethod
    def _invert_at(constraints: list[Predicate], index: int) -> Predicate:
        parts = [
            constraint.negated() if i == index else constraint
            for i, constraint in enumerate(constraints)
        ]
        if len(parts) == 1:
            return parts[0]
        return And(parts)
