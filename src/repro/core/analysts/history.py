"""History analysts: Previous, Refinement trail, and Similar by Visit.

§4.1's History advisor suggests "navigation to previously seen items":
**Previous** (most recently seen) and **Refinement** (the refinement
trail, supporting undo).  **Similar by Visit** — "an intelligent history
that presents those suggestions that the user has followed often in the
past from the current document" — feeds the Related Items advisor.
"""

from __future__ import annotations

from ..advisors import HISTORY, RELATED_ITEMS
from ..blackboard import Blackboard
from ..history import NavigationHistory
from ..suggestions import GoToItem, NewQuery
from ..view import View
from ..weights import follow_weight, recency_weight
from .base import Analyst

__all__ = ["PreviousItemsAnalyst", "RefinementTrailAnalyst", "SimilarByVisitAnalyst"]


def _history(view: View) -> NavigationHistory | None:
    history = view.history
    return history if isinstance(history, NavigationHistory) else None


class PreviousItemsAnalyst(Analyst):
    """Suggests the most recently seen items."""

    name = "history-previous"

    def __init__(self, n: int = 5):
        self.n = n

    def triggers_on(self, view: View) -> bool:
        history = _history(view)
        return history is not None and len(history.visit_log) > 0

    def analyze(self, view: View, blackboard: Blackboard) -> None:
        history = _history(view)
        assert history is not None
        excluding = view.item if view.is_item else None
        for position, item in enumerate(
            history.visit_log.recent(self.n, excluding=excluding)
        ):
            self.post(
                blackboard,
                HISTORY,
                f"Previous: {view.workspace.label(item)}",
                GoToItem(item),
                weight=recency_weight(position),
                group="Previous",
            )


class RefinementTrailAnalyst(Analyst):
    """Suggests undoing back to earlier queries in the refinement trail."""

    name = "history-refinement"

    def __init__(self, n: int = 5):
        self.n = n

    def triggers_on(self, view: View) -> bool:
        history = _history(view)
        return history is not None and len(history.refinement_trail) > 0

    def analyze(self, view: View, blackboard: Blackboard) -> None:
        history = _history(view)
        assert history is not None
        context = view.workspace.query_context
        for position, (query, description) in enumerate(
            history.refinement_trail.recent(self.n)
        ):
            if query is None:
                continue
            title = description or query.describe(context)
            self.post(
                blackboard,
                HISTORY,
                f"Back to: {title}",
                NewQuery(query),
                weight=recency_weight(position),
                group="Refinement",
            )


class SimilarByVisitAnalyst(Analyst):
    """Suggests items the user previously moved to from this item."""

    name = "similar-by-visit"

    def __init__(self, n: int = 5):
        self.n = n

    def triggers_on(self, view: View) -> bool:
        if not view.is_item:
            return False
        history = _history(view)
        return history is not None and bool(
            history.visit_log.followed_from(view.item)
        )

    def analyze(self, view: View, blackboard: Blackboard) -> None:
        history = _history(view)
        assert history is not None
        assert view.item is not None
        for item, times in history.visit_log.followed_from(view.item)[: self.n]:
            self.post(
                blackboard,
                RELATED_ITEMS,
                f"Often visited next: {view.workspace.label(item)}",
                GoToItem(item),
                weight=follow_weight(times),
                group="Similar by Visit",
            )
