"""Magnet's navigation engine: blackboard, analysts, advisors (§4)."""

from .advisors import (
    HISTORY,
    MODIFY,
    REFINE_COLLECTION,
    RELATED_ITEMS,
    Advisor,
    standard_advisors,
)
from .analysts import (
    Analyst,
    baseline_analysts,
    standard_analysts,
)
from .blackboard import Blackboard
from .engine import NavigationEngine, NavigationResult
from .history import NavigationHistory, RefinementTrail, VisitLog
from .suggestions import (
    Action,
    GoToCollection,
    GoToItem,
    Invoke,
    NewQuery,
    OpenRangeWidget,
    Refine,
    RefineMode,
    Suggestion,
)
from .view import View
from .workspace import FrozenWorkspaceError, HistoricalWorkspaceError, Workspace

__all__ = [
    "HISTORY",
    "MODIFY",
    "REFINE_COLLECTION",
    "RELATED_ITEMS",
    "Advisor",
    "standard_advisors",
    "Analyst",
    "baseline_analysts",
    "standard_analysts",
    "Blackboard",
    "NavigationEngine",
    "NavigationResult",
    "NavigationHistory",
    "RefinementTrail",
    "VisitLog",
    "Action",
    "GoToCollection",
    "GoToItem",
    "Invoke",
    "NewQuery",
    "OpenRangeWidget",
    "Refine",
    "RefineMode",
    "Suggestion",
    "View",
    "Workspace",
    "FrozenWorkspaceError",
    "HistoricalWorkspaceError",
]
