"""The navigation engine: triggering analysts, presenting advisors (§4).

``NavigationEngine.suggest`` runs one blackboard cycle for a view:

1. a fresh :class:`Blackboard` is created;
2. reactive analysts register as post listeners (the "triggered by
   results from other analysts" mechanism);
3. every analyst whose :meth:`triggers_on` accepts the view runs;
4. each advisor selects and orders its suggestions.

The result — advisor id → presented suggestions — is what the
navigation pane renders.
"""

from __future__ import annotations

from .advisors import Advisor, standard_advisors
from .analysts import Analyst, standard_analysts
from .blackboard import Blackboard
from .suggestions import Suggestion
from .view import View

__all__ = ["NavigationEngine", "NavigationResult"]


class NavigationResult:
    """The outcome of one suggestion cycle."""

    def __init__(
        self,
        view: View,
        blackboard: Blackboard,
        presented: dict[str, list[Suggestion]],
        overflow: dict[str, list[str]],
    ):
        self.view = view
        self.blackboard = blackboard
        #: advisor id → ordered suggestions to display
        self.presented = presented
        #: advisor id → groups truncated by the per-group cap ('...')
        self.overflow = overflow

    def suggestions(self, advisor_id: str) -> list[Suggestion]:
        """The presented suggestions of one advisor ([] when silent)."""
        return self.presented.get(advisor_id, [])

    def all_suggestions(self) -> list[Suggestion]:
        """Every presented suggestion across advisors."""
        return [s for batch in self.presented.values() for s in batch]

    def find(self, fragment: str) -> list[Suggestion]:
        """Presented suggestions whose title contains a fragment."""
        needle = fragment.lower()
        return [s for s in self.all_suggestions() if needle in s.title.lower()]

    def groups(self, advisor_id: str) -> list[str]:
        """Distinct display groups of one advisor, in presented order."""
        seen: list[str] = []
        for suggestion in self.suggestions(advisor_id):
            if suggestion.group and suggestion.group not in seen:
                seen.append(suggestion.group)
        return seen

    def __repr__(self) -> str:
        total = sum(len(v) for v in self.presented.values())
        return f"<NavigationResult {total} suggestions over {len(self.presented)} advisors>"


class NavigationEngine:
    """Coordinates analysts and advisors for suggestion cycles."""

    def __init__(
        self,
        analysts: list[Analyst] | None = None,
        advisors: dict[str, Advisor] | None = None,
    ):
        self.analysts = analysts if analysts is not None else standard_analysts()
        self.advisors = advisors if advisors is not None else standard_advisors()

    def add_analyst(self, analyst: Analyst) -> None:
        """Register an additional analyst — the §4.1 extension hook."""
        self.analysts.append(analyst)

    def add_advisor(self, advisor: Advisor) -> None:
        """Register an additional advisor."""
        self.advisors[advisor.advisor_id] = advisor

    def suggest(self, view: View) -> NavigationResult:
        """Run one full blackboard cycle for a view."""
        blackboard = Blackboard()
        for analyst in self.analysts:
            if analyst.is_reactive():
                blackboard.add_listener(
                    lambda board, suggestion, analyst=analyst: analyst.on_posted(
                        view, board, suggestion
                    )
                )
        for analyst in self.analysts:
            if not analyst.is_reactive() and analyst.triggers_on(view):
                analyst.analyze(view, blackboard)
        presented: dict[str, list[Suggestion]] = {}
        overflow: dict[str, list[str]] = {}
        for advisor_id, advisor in self.advisors.items():
            chosen = advisor.select(blackboard)
            if chosen:
                presented[advisor_id] = chosen
            truncated = advisor.overflow_groups(blackboard)
            if truncated:
                overflow[advisor_id] = truncated
        return NavigationResult(view, blackboard, presented, overflow)

    def __repr__(self) -> str:
        return (
            f"<NavigationEngine analysts={len(self.analysts)} "
            f"advisors={len(self.advisors)}>"
        )
