"""The navigation engine: triggering analysts, presenting advisors (§4).

``NavigationEngine.suggest`` runs one blackboard cycle for a view:

1. a fresh :class:`Blackboard` is created;
2. reactive analysts register as post listeners (the "triggered by
   results from other analysts" mechanism);
3. every analyst whose :meth:`triggers_on` accepts the view runs;
4. each advisor selects and orders its suggestions.

The result — advisor id → presented suggestions — is what the
navigation pane renders.
"""

from __future__ import annotations

from ..obs import NULL_OBS
from .advisors import Advisor, standard_advisors
from .analysts import Analyst, standard_analysts
from .blackboard import Blackboard
from .suggestions import Suggestion
from .view import View

__all__ = ["NavigationEngine", "NavigationResult"]

#: Fixed buckets for the per-analyst posted-suggestion histogram.
_SUGGESTION_BUCKETS = (0, 1, 2, 5, 10, 20, 50)


class NavigationResult:
    """The outcome of one suggestion cycle."""

    def __init__(
        self,
        view: View,
        blackboard: Blackboard,
        presented: dict[str, list[Suggestion]],
        overflow: dict[str, list[str]],
    ):
        self.view = view
        self.blackboard = blackboard
        #: advisor id → ordered suggestions to display
        self.presented = presented
        #: advisor id → groups truncated by the per-group cap ('...')
        self.overflow = overflow

    def suggestions(self, advisor_id: str) -> list[Suggestion]:
        """The presented suggestions of one advisor ([] when silent)."""
        return self.presented.get(advisor_id, [])

    def all_suggestions(self) -> list[Suggestion]:
        """Every presented suggestion across advisors."""
        return [s for batch in self.presented.values() for s in batch]

    def find(self, fragment: str) -> list[Suggestion]:
        """Presented suggestions whose title contains a fragment."""
        needle = fragment.lower()
        return [s for s in self.all_suggestions() if needle in s.title.lower()]

    def groups(self, advisor_id: str) -> list[str]:
        """Distinct display groups of one advisor, in presented order."""
        seen: list[str] = []
        for suggestion in self.suggestions(advisor_id):
            if suggestion.group and suggestion.group not in seen:
                seen.append(suggestion.group)
        return seen

    def __repr__(self) -> str:
        total = sum(len(v) for v in self.presented.values())
        return f"<NavigationResult {total} suggestions over {len(self.presented)} advisors>"


class NavigationEngine:
    """Coordinates analysts and advisors for suggestion cycles."""

    def __init__(
        self,
        analysts: list[Analyst] | None = None,
        advisors: dict[str, Advisor] | None = None,
    ):
        self.analysts = analysts if analysts is not None else standard_analysts()
        self.advisors = advisors if advisors is not None else standard_advisors()

    def add_analyst(self, analyst: Analyst) -> None:
        """Register an additional analyst — the §4.1 extension hook."""
        self.analysts.append(analyst)

    def add_advisor(self, advisor: Advisor) -> None:
        """Register an additional advisor."""
        self.advisors[advisor.advisor_id] = advisor

    def suggest(self, view: View) -> NavigationResult:
        """Run one full blackboard cycle for a view.

        Each triggered analyst runs under its own ``nav.analyst`` span
        tagged with how many suggestions its turn put on the blackboard
        (including reactive postings it provoked), and the same count
        feeds the ``nav.analyst_suggestions`` histogram — the per-stage
        cost accounting of the blackboard dispatch.
        """
        obs = getattr(view.workspace, "obs", None) or NULL_OBS
        tracer = obs.tracer
        per_analyst = obs.metrics.histogram(
            "nav.analyst_suggestions", _SUGGESTION_BUCKETS
        )
        blackboard = Blackboard()
        for analyst in self.analysts:
            if analyst.is_reactive():
                blackboard.add_listener(
                    lambda board, suggestion, analyst=analyst: analyst.on_posted(
                        view, board, suggestion
                    )
                )
        with tracer.span("nav.suggest", view=view.kind) as cycle:
            for analyst in self.analysts:
                if analyst.is_reactive() or not analyst.triggers_on(view):
                    continue
                before = len(blackboard)
                with tracer.span("nav.analyst", name=analyst.name) as span:
                    analyst.analyze(view, blackboard)
                    posted = len(blackboard) - before
                    span.set_tag("suggestions", posted)
                per_analyst.observe(posted)
            presented: dict[str, list[Suggestion]] = {}
            overflow: dict[str, list[str]] = {}
            for advisor_id, advisor in self.advisors.items():
                with tracer.span("nav.advisor", name=advisor_id) as span:
                    chosen = advisor.select(blackboard)
                    truncated = advisor.overflow_groups(blackboard)
                    span.set_tag("selected", len(chosen))
                if chosen:
                    presented[advisor_id] = chosen
                if truncated:
                    overflow[advisor_id] = truncated
            cycle.set_tag("posted", len(blackboard))
        return NavigationResult(view, blackboard, presented, overflow)

    def __repr__(self) -> str:
        return (
            f"<NavigationEngine analysts={len(self.analysts)} "
            f"advisors={len(self.advisors)}>"
        )
