"""The blackboard: shared workspace between analysts and advisors (§4.3).

"Navigation recommendations are posted by analysts on a shared
blackboard that is published on the interface by navigation Advisors."
Analysts write; advisors read.  Analysts "can be triggered by results
from other analysts", so the blackboard also dispatches post events to
registered listeners (each posted suggestion is delivered to listeners
exactly once, including suggestions a listener itself posts — guarded
against runaway recursion by a dispatch budget).
"""

from __future__ import annotations

from typing import Callable, Iterable

from .suggestions import Suggestion

__all__ = ["Blackboard"]

#: A listener receives a freshly posted suggestion and may post more.
PostListener = Callable[["Blackboard", Suggestion], None]

_MAX_DISPATCHES = 10_000


class Blackboard:
    """Collects suggestions for one navigation step."""

    def __init__(self):
        self._entries: list[Suggestion] = []
        self._listeners: list[PostListener] = []
        self._pending: list[Suggestion] = []
        self._dispatching = False
        self._dispatch_count = 0

    def add_listener(self, listener: PostListener) -> None:
        """Register a callback fired for each posted suggestion."""
        self._listeners.append(listener)

    def post(self, suggestion: Suggestion) -> None:
        """Post one suggestion and notify listeners."""
        self._entries.append(suggestion)
        self._pending.append(suggestion)
        self._drain()

    def post_all(self, suggestions: Iterable[Suggestion]) -> None:
        """Post several suggestions."""
        for suggestion in suggestions:
            self.post(suggestion)

    def _drain(self) -> None:
        if self._dispatching:
            return
        self._dispatching = True
        try:
            while self._pending:
                suggestion = self._pending.pop(0)
                for listener in self._listeners:
                    self._dispatch_count += 1
                    if self._dispatch_count > _MAX_DISPATCHES:
                        raise RuntimeError(
                            "blackboard dispatch budget exceeded; "
                            "an analyst is likely posting in a loop"
                        )
                    listener(self, suggestion)
        finally:
            self._dispatching = False

    @property
    def entries(self) -> list[Suggestion]:
        """All posted suggestions, in posting order (copied)."""
        return list(self._entries)

    def for_advisor(self, advisor: str) -> list[Suggestion]:
        """Suggestions addressed to one advisor."""
        return [s for s in self._entries if s.advisor == advisor]

    def advisors(self) -> list[str]:
        """Advisor ids that received at least one suggestion (sorted)."""
        return sorted({s.advisor for s in self._entries})

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return f"<Blackboard entries={len(self._entries)}>"
