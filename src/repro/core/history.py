"""Navigation history: visit log and refinement trail (§4.1's History).

Two distinct memories back the History advisor:

* the **visit log** records every navigation step; "Previous" suggests
  the most recently seen items, and "Similar by Visit" is the
  "intelligent history" — items "visited the last time the user left the
  currently viewed item", weighted by how often the user followed that
  hop in the past;
* the **refinement trail** records the query at each collection view so
  the Refinement History advisor "allows the user to undo previous
  refinements".
"""

from __future__ import annotations

from collections import Counter

from ..query.ast import Predicate
from ..rdf.terms import Node

__all__ = ["VisitLog", "RefinementTrail", "NavigationHistory"]


class VisitLog:
    """Ordered log of visited items with transition statistics."""

    def __init__(self):
        self._visits: list[Node] = []
        self._transitions: dict[Node, Counter] = {}

    def visit(self, item: Node) -> None:
        """Record arriving at an item."""
        if self._visits:
            previous = self._visits[-1]
            if previous != item:
                self._transitions.setdefault(previous, Counter())[item] += 1
        self._visits.append(item)

    @property
    def visits(self) -> list[Node]:
        """Full visit sequence (copied)."""
        return list(self._visits)

    def recent(self, n: int = 5, excluding: Node | None = None) -> list[Node]:
        """The last ``n`` distinct items, most recent first."""
        seen: list[Node] = []
        for item in reversed(self._visits):
            if item == excluding or item in seen:
                continue
            seen.append(item)
            if len(seen) >= n:
                break
        return seen

    def restore(self, visits: "list[Node] | tuple[Node, ...]") -> None:
        """Rebuild the log from a raw visit sequence.

        Transition statistics are a pure function of the sequence, so
        replaying it reproduces them exactly — this is how a serialized
        :class:`~repro.service.state.SessionState` rehydrates its
        "intelligent history".
        """
        self._visits = []
        self._transitions = {}
        for item in visits:
            self.visit(item)

    def followed_from(self, item: Node) -> list[tuple[Node, int]]:
        """Items the user moved to after ``item``, most-followed first.

        Backs the "Similar by Visit" analyst: suggestions "that the user
        has followed often in the past from the current document".
        """
        transitions = self._transitions.get(item)
        if not transitions:
            return []
        return sorted(transitions.items(), key=lambda kv: (-kv[1], kv[0].n3()))

    def __len__(self) -> int:
        return len(self._visits)


class RefinementTrail:
    """The stack of queries behind the current collection."""

    def __init__(self):
        self._steps: list[tuple[Predicate | None, str]] = []

    def push(self, query: Predicate | None, description: str) -> None:
        """Record a refinement step."""
        self._steps.append((query, description))

    def pop(self) -> tuple[Predicate | None, str] | None:
        """Undo the most recent step; None when empty."""
        if not self._steps:
            return None
        return self._steps.pop()

    @property
    def steps(self) -> list[tuple[Predicate | None, str]]:
        return list(self._steps)

    def restore(
        self, steps: "list[tuple[Predicate | None, str]] | tuple"
    ) -> None:
        """Replace the trail with a saved step sequence."""
        self._steps = [tuple(step) for step in steps]

    def recent(self, n: int = 5) -> list[tuple[Predicate | None, str]]:
        """The last ``n`` steps, most recent first."""
        return list(reversed(self._steps[-n:]))

    def __len__(self) -> int:
        return len(self._steps)


class NavigationHistory:
    """The visit log and refinement trail bundled for a session."""

    def __init__(self):
        self.visit_log = VisitLog()
        self.refinement_trail = RefinementTrail()

    def restore(self, visits, trail_steps) -> None:
        """Synchronize both memories from their raw sequences in place.

        Mutating in place (rather than swapping objects) matters to the
        Session facade: live Views hold a reference to this history, so
        the advisors keep seeing the updated memories.
        """
        self.visit_log.restore(visits)
        self.refinement_trail.restore(trail_steps)

    def __repr__(self) -> str:
        return (
            f"<NavigationHistory visits={len(self.visit_log)} "
            f"refinements={len(self.refinement_trail)}>"
        )
