"""Navigation suggestions and the actions they perform (§4.1, §4.3).

Analysts post :class:`Suggestion` objects on the blackboard; advisors
select and present them.  Each suggestion carries

* the **advisor** it belongs to (the user-facing grouping),
* a display **title** and an optional **group** key ("the interface
  groups suggestions by properties"),
* an **IR weight** — "analysts providing suggestions to a shared advisor
  ... need to have a common approach to giving weights" — used by the
  advisor to select the most relevant, and
* an **action**: what selecting the suggestion does.  §4.3 names three
  escalating kinds: recommending "a specific document or collection",
  recommending "possible query terms", and "at the most general ...
  arbitrary action to be performed upon selection".
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..query.ast import Predicate
from ..query.preview import RangePreview
from ..rdf.terms import Node, Resource

__all__ = [
    "RefineMode",
    "Action",
    "Refine",
    "GoToItem",
    "GoToCollection",
    "NewQuery",
    "OpenRangeWidget",
    "Invoke",
    "Suggestion",
]


class RefineMode:
    """How a refinement predicate combines with the current collection.

    §4.1: "The selected property and value may be used to either filter
    the current collection, or remove matching items from the current
    collection.  Alternatively, a user can also use the refinement
    suggestions as terms to expand the collection."
    """

    FILTER = "filter"
    EXCLUDE = "exclude"
    EXPAND = "expand"

    ALL = frozenset({FILTER, EXCLUDE, EXPAND})


class Action:
    """Base class for what happens when a suggestion is selected."""

    __slots__ = ()


class Refine(Action):
    """Apply a predicate to the current collection."""

    __slots__ = ("predicate", "mode")

    def __init__(self, predicate: Predicate, mode: str = RefineMode.FILTER):
        if mode not in RefineMode.ALL:
            raise ValueError(f"unknown refine mode {mode!r}")
        self.predicate = predicate
        self.mode = mode

    def __repr__(self) -> str:
        return f"Refine({self.predicate!r}, mode={self.mode!r})"


class GoToItem(Action):
    """Navigate to a single item."""

    __slots__ = ("item",)

    def __init__(self, item: Node):
        self.item = item

    def __repr__(self) -> str:
        return f"GoToItem({self.item!r})"


class GoToCollection(Action):
    """Navigate to a fixed collection of items (e.g. similar items)."""

    __slots__ = ("items", "description")

    def __init__(self, items: Sequence[Node], description: str):
        self.items = list(items)
        self.description = description

    def __repr__(self) -> str:
        return f"GoToCollection({len(self.items)} items, {self.description!r})"


class NewQuery(Action):
    """Replace the current query with a brand-new one."""

    __slots__ = ("predicate",)

    def __init__(self, predicate: Predicate):
        self.predicate = predicate

    def __repr__(self) -> str:
        return f"NewQuery({self.predicate!r})"


class OpenRangeWidget(Action):
    """Open the two-slider range control of Figure 5 for a property."""

    __slots__ = ("prop", "preview")

    def __init__(self, prop: Resource, preview: RangePreview):
        self.prop = prop
        self.preview = preview

    def __repr__(self) -> str:
        return f"OpenRangeWidget({self.prop!r}, {self.preview!r})"


class Invoke(Action):
    """Arbitrary analyst-supplied behaviour, run on selection (§4.3)."""

    __slots__ = ("callback", "description")

    def __init__(self, callback: Callable[[], object], description: str):
        self.callback = callback
        self.description = description

    def __repr__(self) -> str:
        return f"Invoke({self.description!r})"


class Suggestion:
    """One navigation recommendation on the blackboard."""

    __slots__ = ("advisor", "title", "action", "weight", "group", "analyst")

    def __init__(
        self,
        advisor: str,
        title: str,
        action: Action,
        weight: float = 0.0,
        group: str | None = None,
        analyst: str | None = None,
    ):
        self.advisor = advisor
        self.title = title
        self.action = action
        self.weight = float(weight)
        self.group = group
        self.analyst = analyst

    def __repr__(self) -> str:
        return (
            f"Suggestion({self.advisor!r}, {self.title!r}, "
            f"w={self.weight:.3f}, group={self.group!r})"
        )
