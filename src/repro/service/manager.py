"""Multiplexing many named sessions over one shared workspace.

The serving story the refactor enables: a process holds ONE workspace
(the heavy, read-mostly artifact — graph, indexes, caches) and any
number of light per-user sessions over it.  :class:`SessionManager`
is that multiplexer in miniature, plus the JSON persistence used by the
CLI's ``session save``/``session load``.

Sessions created here carry their name as ``session_id``, so spans and
counters emitted on their behalf are tagged per session (the `obs`
layer's multi-tenant view).
"""

from __future__ import annotations

import json
import os
from dataclasses import replace
from typing import Callable, IO

from ..core.engine import NavigationEngine
from ..core.workspace import Workspace
from .serialize import StateLoadError, StateSerializationError
from .state import DEFAULT_BACK_LIMIT, SessionState

__all__ = ["SessionManager"]

#: Fault-injection seam for :meth:`SessionManager.save`: receives the
#: open temp-file handle and the full serialized text.  The default
#: writes everything; the correctness harness substitutes writers that
#: crash mid-write to prove the destination file survives.
StateWriter = Callable[[IO[str], str], None]


class SessionManager:
    """Named sessions over one workspace, with an active cursor."""

    def __init__(
        self,
        workspace: Workspace,
        engine: NavigationEngine | None = None,
        fuzzy_on_empty: bool = False,
        fuzzy_k: int = 10,
        back_limit: int = DEFAULT_BACK_LIMIT,
    ):
        self.workspace = workspace
        self.engine = engine if engine is not None else NavigationEngine()
        self._fuzzy_on_empty = fuzzy_on_empty
        self._fuzzy_k = fuzzy_k
        self._back_limit = back_limit
        self._sessions: dict = {}
        self._active_name: str | None = None
        #: Set by attach_epochs when serving a live-ingestion corpus.
        self._epochs = None

    # ------------------------------------------------------------------
    # Epochs (live ingestion)
    # ------------------------------------------------------------------

    def attach_epochs(self, epochs) -> None:
        """Serve from an :class:`~repro.core.epochs.EpochManager`.

        From here on every new session pins the current epoch (its
        refcount keeps the snapshot alive) and :meth:`sync_session`
        migrates sessions forward whenever a newer epoch has published.
        """
        self._epochs = epochs
        self.workspace = epochs.current.workspace

    @property
    def epochs(self):
        return self._epochs

    def sync_session(self, name: str):
        """Migrate the named session to the current epoch; returns it.

        No-op without an attached epoch manager or when the session is
        already current.  An ``as_of`` session re-resolves its pinned
        historical view from the new epoch's workspace (same tx, same
        log prefix — the view is identical), so even time-travel
        sessions release retired epochs promptly.
        """
        session = self.get(name)
        if self._epochs is None:
            return session
        pinned = session.state.epoch
        if pinned == self._epochs.current.number:
            return session
        epoch = self._epochs.acquire(session=name)
        try:
            workspace = epoch.workspace
            if session.state.as_of_tx is not None:
                workspace = workspace.as_of(session.state.as_of_tx)
            session.rebind(workspace, epoch.number)
        except BaseException:
            self._epochs.release(epoch.number, session=name)
            raise
        if pinned is not None:
            self._epochs.release(pinned, session=name)
        self.workspace = epoch.workspace
        return session

    def sync_all(self) -> int:
        """Migrate every session to the current epoch; returns count moved."""
        if self._epochs is None:
            return 0
        moved = 0
        current = self._epochs.current.number
        for name in list(self._sessions):
            if self._sessions[name].state.epoch != current:
                self.sync_session(name)
                moved += 1
        return moved

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def create(self, name: str, as_of: int | None = None):
        """Start a fresh named session; it becomes the active one.

        With ``as_of`` the session browses the workspace's historical
        view at that transaction id (time travel): navigation behaves
        identically but the corpus is pinned to what the datom log held
        through ``as_of``, and the pin round-trips through save/load.
        An out-of-range or ill-typed ``as_of`` raises ``ValueError``
        before the manager is touched.
        """
        if name in self._sessions:
            raise ValueError(f"session {name!r} already exists")
        epoch_no = None
        base = self.workspace
        if self._epochs is not None:
            epoch = self._epochs.acquire(session=name)
            epoch_no = epoch.number
            base = epoch.workspace
        try:
            workspace = base.as_of(as_of) if as_of is not None else base
        except BaseException:
            if epoch_no is not None:
                self._epochs.release(epoch_no, session=name)
            raise
        from ..browser.session import Session

        session = Session(
            workspace,
            engine=self.engine,
            fuzzy_on_empty=self._fuzzy_on_empty,
            fuzzy_k=self._fuzzy_k,
            back_limit=self._back_limit,
            session_id=name,
        )
        if as_of is not None or epoch_no is not None:
            session.restore(
                replace(session.state, as_of_tx=as_of, epoch=epoch_no)
            )
        self._sessions[name] = session
        self._active_name = name
        return session

    def adopt(self, name: str, session) -> None:
        """Register an externally built session under a name."""
        if name in self._sessions:
            raise ValueError(f"session {name!r} already exists")
        self._sessions[name] = session
        if self._active_name is None:
            self._active_name = name

    def get(self, name: str):
        """The named session (KeyError when unknown)."""
        try:
            return self._sessions[name]
        except KeyError:
            raise KeyError(f"no session named {name!r}") from None

    def names(self) -> list[str]:
        """All session names, in creation order."""
        return list(self._sessions)

    def remove(self, name: str) -> bool:
        """Drop a session; returns whether it existed."""
        if name not in self._sessions:
            return False
        session = self._sessions.pop(name)
        if self._active_name == name:
            self._active_name = next(iter(self._sessions), None)
        if self._epochs is not None and session.state.epoch is not None:
            # Named release: a session that never pinned through this
            # manager (adopt()) or was already released no-ops instead
            # of decrementing another reader's pin.
            self._epochs.release(session.state.epoch, session=name)
        return True

    def switch(self, name: str):
        """Make the named session active and return it."""
        session = self.get(name)
        self._active_name = name
        return session

    @property
    def active_name(self) -> str | None:
        return self._active_name

    @property
    def active(self):
        """The active session, or None when the manager is empty."""
        if self._active_name is None:
            return None
        return self._sessions[self._active_name]

    def __len__(self) -> int:
        return len(self._sessions)

    def __contains__(self, name: str) -> bool:
        return name in self._sessions

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def save(self, name: str, path, writer: StateWriter | None = None) -> None:
        """Write the named session's state as JSON, atomically.

        The state is serialized to a sibling temp file and renamed over
        ``path``, so a crash mid-write never leaves a truncated state
        where a valid one stood — the previous file (if any) survives
        intact.  ``writer`` is the harness's fault-injection seam; the
        default writes the whole payload in one call.
        """
        state = self.get(name).state
        text = json.dumps(state.to_dict(), indent=2, sort_keys=True)
        target = os.fspath(path)
        temp = f"{target}.tmp.{os.getpid()}"
        try:
            with open(temp, "w", encoding="utf-8") as handle:
                if writer is None:
                    handle.write(text)
                else:
                    writer(handle, text)
            os.replace(temp, target)
        finally:
            if os.path.exists(temp):
                os.unlink(temp)

    def load(self, name: str, path):
        """Resume a saved state under ``name`` (replacing any holder).

        The stored ``session_id`` is overridden by the new name, so a
        state saved from one session can seed several.  Every failure
        mode — unreadable file, truncated/corrupt JSON, unknown format
        version, malformed fields — raises :class:`StateLoadError`
        *before* the manager is touched: the named slot (and the active
        cursor) keep whatever session they held.
        """
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except OSError as error:
            raise StateLoadError(
                f"cannot read session state from {path}: {error}"
            ) from error
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            raise StateLoadError(
                f"corrupt session state in {path}: {error}"
            ) from error
        try:
            state = replace(SessionState.from_dict(data), session_id=name)
        except StateLoadError:
            raise
        except StateSerializationError as error:
            raise StateLoadError(
                f"invalid session state in {path}: {error}"
            ) from error
        epoch_no = None
        base = self.workspace
        if self._epochs is not None:
            # A resumed session re-pins the *current* epoch: its saved
            # epoch number belongs to a previous run's chain.
            epoch = self._epochs.acquire(session=name)
            epoch_no = epoch.number
            base = epoch.workspace
            state = replace(state, epoch=epoch_no)
        workspace = base
        if state.as_of_tx is not None:
            # A pinned state resumes against the same historical view it
            # was saved from; a log that no longer reaches that tx is a
            # load failure, not a silent unpin.
            try:
                workspace = base.as_of(state.as_of_tx)
            except ValueError as error:
                if epoch_no is not None:
                    self._epochs.release(epoch_no, session=name)
                raise StateLoadError(
                    f"cannot resume as-of session from {path}: {error}"
                ) from error
        from ..browser.session import Session

        session = Session.from_state(workspace, state, engine=self.engine)
        previous = self._sessions.get(name)
        if (
            previous is not None
            and self._epochs is not None
            and previous.state.epoch is not None
        ):
            self._epochs.release(previous.state.epoch, session=name)
        self._sessions[name] = session
        self._active_name = name
        return session

    def __repr__(self) -> str:
        return (
            f"<SessionManager {len(self._sessions)} session(s), "
            f"active={self._active_name!r}>"
        )
