"""Immutable, serializable per-user session state.

Query-by-navigation browsing is a state machine: every interaction is a
pure transition over (query, focus, trail).  :class:`SessionState`
captures everything one user's browsing amounts to — the current view,
the refinement trail, the visit log, the back stack, bookmarks, and
relevance-feedback marks — as frozen tuples, so a transition produces a
*new* state and the old one stays valid (undo, replay, migration, and
concurrent serving all fall out of this shape).

The state deliberately holds no workspace references: terms and
predicates are value objects, so a state built against one workspace can
be replayed against any workspace holding the same corpus.
``to_dict``/``from_dict`` give the JSON wire form used by session
save/load and the :class:`~repro.service.manager.SessionManager`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

from ..query.ast import And, Predicate
from ..rdf.terms import Node
from .serialize import (
    StateSerializationError,
    node_from_dict,
    node_to_dict,
    predicate_from_dict,
    predicate_to_dict,
)

__all__ = ["ViewState", "SessionState", "STATE_FORMAT_VERSION"]

#: Bumped whenever the serialized layout changes incompatibly.
STATE_FORMAT_VERSION = 1

#: Default back-stack depth, matching the pre-refactor hardcoded bound.
DEFAULT_BACK_LIMIT = 100


@dataclass(frozen=True)
class ViewState:
    """The value-object core of a :class:`~repro.core.view.View`.

    ``kind`` is ``"item"`` or ``"collection"``; exactly the fields the
    kind needs are populated, mirroring ``View``'s invariants.
    """

    kind: str
    item: Node | None = None
    items: tuple[Node, ...] = ()
    query: Predicate | None = None
    description: str | None = None

    KIND_ITEM = "item"
    KIND_COLLECTION = "collection"

    @property
    def is_item(self) -> bool:
        return self.kind == self.KIND_ITEM

    @property
    def is_collection(self) -> bool:
        return self.kind == self.KIND_COLLECTION

    def constraints(self) -> list[Predicate]:
        """The query's top-level conjuncts (the constraint chips)."""
        if self.query is None:
            return []
        if isinstance(self.query, And):
            return list(self.query.parts)
        return [self.query]

    @classmethod
    def of_item(cls, item: Node) -> "ViewState":
        return cls(kind=cls.KIND_ITEM, item=item)

    @classmethod
    def of_collection(
        cls,
        items: Iterable[Node],
        query: Predicate | None = None,
        description: str | None = None,
    ) -> "ViewState":
        return cls(
            kind=cls.KIND_COLLECTION,
            items=tuple(items),
            query=query,
            description=description,
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "item": node_to_dict(self.item) if self.item is not None else None,
            "items": [node_to_dict(n) for n in self.items],
            "query": (
                predicate_to_dict(self.query) if self.query is not None else None
            ),
            "description": self.description,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ViewState":
        kind = data["kind"]
        if kind not in (cls.KIND_ITEM, cls.KIND_COLLECTION):
            raise StateSerializationError(f"unknown view kind {kind!r}")
        if kind == cls.KIND_ITEM and data["item"] is None:
            raise StateSerializationError("item view without an item")
        return cls(
            kind=kind,
            item=node_from_dict(data["item"]) if data["item"] is not None else None,
            items=tuple(node_from_dict(n) for n in data["items"]),
            query=(
                predicate_from_dict(data["query"])
                if data["query"] is not None
                else None
            ),
            description=data["description"],
        )


@dataclass(frozen=True)
class SessionState:
    """One user's complete browsing state, as an immutable value.

    Transitions live in :class:`~repro.service.navigation.NavigationService`;
    this class only holds data plus the JSON round-trip.  ``visits`` is
    the raw visit sequence — transition statistics (the "intelligent
    history") are a pure function of it and are rebuilt on demand.
    """

    view: ViewState
    trail: tuple[tuple[Predicate | None, str], ...] = ()
    visits: tuple[Node, ...] = ()
    back_stack: tuple[ViewState, ...] = ()
    bookmarks: tuple[Node, ...] = ()
    feedback_relevant: tuple[Node, ...] = ()
    feedback_non_relevant: tuple[Node, ...] = ()
    feedback_seed: Predicate | None = None
    feedback_active: bool = False
    fuzzy_on_empty: bool = False
    fuzzy_k: int = 10
    last_was_fuzzy: bool = False
    back_limit: int = DEFAULT_BACK_LIMIT
    session_id: str | None = None
    #: When set, the session browses a historical ``as_of`` view of the
    #: workspace pinned at this transaction id (time-travel navigation).
    as_of_tx: int | None = None
    #: The epoch this session is pinned to when the server runs live
    #: ingestion.  None means "not epoch-managed" (static corpus); the
    #: key is omitted from the wire form in that case so pre-epoch
    #: payloads stay byte-identical.
    epoch: int | None = None

    @classmethod
    def initial(
        cls,
        items: Iterable[Node],
        fuzzy_on_empty: bool = False,
        fuzzy_k: int = 10,
        back_limit: int = DEFAULT_BACK_LIMIT,
        session_id: str | None = None,
    ) -> "SessionState":
        """The fresh-session state: viewing everything, empty memories."""
        if back_limit < 1:
            raise ValueError("back_limit must be at least 1")
        return cls(
            view=ViewState.of_collection(items, description="everything"),
            fuzzy_on_empty=fuzzy_on_empty,
            fuzzy_k=fuzzy_k,
            back_limit=back_limit,
            session_id=session_id,
        )

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """The JSON-safe wire form (lossless; see ``from_dict``)."""
        data = {
            "format": STATE_FORMAT_VERSION,
            "session_id": self.session_id,
            "view": self.view.to_dict(),
            "trail": [
                [
                    predicate_to_dict(query) if query is not None else None,
                    description,
                ]
                for query, description in self.trail
            ],
            "visits": [node_to_dict(n) for n in self.visits],
            "back_stack": [view.to_dict() for view in self.back_stack],
            "bookmarks": [node_to_dict(n) for n in self.bookmarks],
            "feedback": {
                "active": self.feedback_active,
                "seed": (
                    predicate_to_dict(self.feedback_seed)
                    if self.feedback_seed is not None
                    else None
                ),
                "relevant": [node_to_dict(n) for n in self.feedback_relevant],
                "non_relevant": [
                    node_to_dict(n) for n in self.feedback_non_relevant
                ],
            },
            "fuzzy_on_empty": self.fuzzy_on_empty,
            "fuzzy_k": self.fuzzy_k,
            "last_was_fuzzy": self.last_was_fuzzy,
            "back_limit": self.back_limit,
            "as_of": self.as_of_tx,
        }
        if self.epoch is not None:
            data["epoch"] = self.epoch
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "SessionState":
        """Rebuild a state from :meth:`to_dict` output.

        Every malformed payload — wrong version, missing keys, ill-typed
        fields — raises :class:`StateSerializationError` (never a raw
        ``KeyError``/``TypeError``), so persistence callers can promise
        "resumed losslessly or failed with a typed error".
        """
        if not isinstance(data, dict):
            raise StateSerializationError(
                f"session state must be a JSON object, got {type(data).__name__}"
            )
        version = data.get("format")
        if version != STATE_FORMAT_VERSION:
            raise StateSerializationError(
                f"unsupported session state format {version!r} "
                f"(this build reads {STATE_FORMAT_VERSION})"
            )
        try:
            return cls._from_dict_checked(data)
        except StateSerializationError:
            raise
        except (KeyError, IndexError, TypeError, AttributeError, ValueError) as error:
            raise StateSerializationError(
                f"malformed session state: {error!r}"
            ) from error

    @classmethod
    def _from_dict_checked(cls, data: dict[str, Any]) -> "SessionState":
        feedback = data["feedback"]
        back_limit = data["back_limit"]
        if not isinstance(back_limit, int) or back_limit < 1:
            raise StateSerializationError(
                f"back_limit must be a positive integer, got {back_limit!r}"
            )
        # States written before the store refactor lack the key: absent
        # means "live head", same as an explicit null.
        as_of_tx = data.get("as_of")
        if as_of_tx is not None and (
            not isinstance(as_of_tx, int)
            or isinstance(as_of_tx, bool)
            or as_of_tx < 0
        ):
            raise StateSerializationError(
                f"as_of must be a non-negative integer or null, got {as_of_tx!r}"
            )
        # Absent for static-corpus sessions and payloads written before
        # live ingestion existed.
        epoch = data.get("epoch")
        if epoch is not None and (
            not isinstance(epoch, int)
            or isinstance(epoch, bool)
            or epoch < 0
        ):
            raise StateSerializationError(
                f"epoch must be a non-negative integer or null, got {epoch!r}"
            )
        return cls(
            view=ViewState.from_dict(data["view"]),
            trail=tuple(
                (
                    predicate_from_dict(query) if query is not None else None,
                    description,
                )
                for query, description in data["trail"]
            ),
            visits=tuple(node_from_dict(n) for n in data["visits"]),
            back_stack=tuple(
                ViewState.from_dict(view) for view in data["back_stack"]
            ),
            bookmarks=tuple(node_from_dict(n) for n in data["bookmarks"]),
            feedback_relevant=tuple(
                node_from_dict(n) for n in feedback["relevant"]
            ),
            feedback_non_relevant=tuple(
                node_from_dict(n) for n in feedback["non_relevant"]
            ),
            feedback_seed=(
                predicate_from_dict(feedback["seed"])
                if feedback["seed"] is not None
                else None
            ),
            feedback_active=feedback["active"],
            fuzzy_on_empty=data["fuzzy_on_empty"],
            fuzzy_k=data["fuzzy_k"],
            last_was_fuzzy=data["last_was_fuzzy"],
            back_limit=back_limit,
            session_id=data["session_id"],
            as_of_tx=as_of_tx,
            epoch=epoch,
        )
