"""Typed commands: the closed vocabulary of session transitions.

Every mutator of the old monolithic ``Session`` is now a small frozen
dataclass.  A command is pure data — what the user did, not how to do
it — so command streams can be logged, replayed against a fresh state
(the equivalence suite does exactly this), or shipped to a server
frontend.  :meth:`~repro.service.navigation.NavigationService.apply`
is the single interpreter.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.suggestions import RefineMode
from ..query.ast import PathStep, Predicate
from ..rdf.terms import Node, Resource

__all__ = [
    "Command",
    "Search",
    "SearchWithin",
    "SearchRanked",
    "RankCurrent",
    "RunQuery",
    "Refine",
    "SelectRefine",
    "ApplyRange",
    "ApplyPath",
    "ApplyCompound",
    "ApplySubcollection",
    "RemoveConstraint",
    "NegateConstraint",
    "GoItem",
    "GoCollection",
    "GoBookmarks",
    "AddBookmark",
    "RemoveBookmark",
    "MarkRelevant",
    "MarkNonRelevant",
    "ClearFeedback",
    "MoreLikeMarked",
    "Back",
    "UndoRefinement",
]


@dataclass(frozen=True)
class Command:
    """Base class; exists so handlers can be looked up by type."""


# -- starting searches (§3.1) ------------------------------------------------


@dataclass(frozen=True)
class Search(Command):
    """Toolbar keyword search: a brand-new query."""

    text: str


@dataclass(frozen=True)
class SearchWithin(Command):
    """Keyword search restricted to the current collection (§4.3)."""

    text: str


@dataclass(frozen=True)
class SearchRanked(Command):
    """Ranked keyword search — the §6.2 document-reordering extension."""

    text: str
    k: int = 20


@dataclass(frozen=True)
class RankCurrent(Command):
    """Reorder the current collection by similarity (centroid if no text)."""

    text: str | None = None


@dataclass(frozen=True)
class RunQuery(Command):
    """Execute a query against the whole universe."""

    predicate: Predicate
    description: str | None = None


# -- refinements (§3.2, §4.1) ------------------------------------------------


@dataclass(frozen=True)
class Refine(Command):
    """The programmatic refine click (traced, counted)."""

    predicate: Predicate
    mode: str = RefineMode.FILTER


@dataclass(frozen=True)
class SelectRefine(Command):
    """A refinement executed by selecting a suggestion (untraced)."""

    predicate: Predicate
    mode: str = RefineMode.FILTER


@dataclass(frozen=True)
class ApplyRange(Command):
    """Commit a range-widget selection as a filter refinement."""

    prop: Resource
    low: float | None
    high: float | None


@dataclass(frozen=True)
class ApplyPath(Command):
    """Commit a property-path constraint as a filter refinement.

    ``steps`` is the hop sequence of a :class:`~repro.query.ast.Path`;
    ``value`` of None keeps every item whose path is non-empty.
    """

    steps: tuple[PathStep, ...]
    value: Node | None = None

    def __post_init__(self):
        object.__setattr__(self, "steps", tuple(self.steps))


@dataclass(frozen=True)
class ApplyCompound(Command):
    """Apply a compound ('and'/'or') refinement built from dragged parts."""

    parts: tuple[Predicate, ...]
    mode: str = "and"

    def __post_init__(self):
        object.__setattr__(self, "parts", tuple(self.parts))


@dataclass(frozen=True)
class ApplySubcollection(Command):
    """Browse-and-apply a sub-collection back onto the current items (§3.3)."""

    prop: Resource
    values: tuple[Node, ...]
    quantifier: str = "any"

    def __post_init__(self):
        object.__setattr__(self, "values", tuple(self.values))


@dataclass(frozen=True)
class RemoveConstraint(Command):
    """Click the 'X' by a constraint chip: drop it and re-run."""

    index: int


@dataclass(frozen=True)
class NegateConstraint(Command):
    """Context-menu negation of one constraint chip."""

    index: int


# -- direct navigation -------------------------------------------------------


@dataclass(frozen=True)
class GoItem(Command):
    """View a single item (records the visit)."""

    item: Node


@dataclass(frozen=True)
class GoCollection(Command):
    """View a fixed collection (no backing query)."""

    items: tuple[Node, ...]
    description: str | None = None

    def __post_init__(self):
        object.__setattr__(self, "items", tuple(self.items))


@dataclass(frozen=True)
class GoBookmarks(Command):
    """Open the bookmark pane's contents as a browsable collection."""


# -- bookmarks and feedback --------------------------------------------------


@dataclass(frozen=True)
class AddBookmark(Command):
    """Bookmark an item (None: the currently viewed one)."""

    item: Node | None = None


@dataclass(frozen=True)
class RemoveBookmark(Command):
    """Drop a bookmark; the transition outcome reports presence."""

    item: Node


@dataclass(frozen=True)
class MarkRelevant(Command):
    """'More like this' — positive relevance feedback."""

    item: Node


@dataclass(frozen=True)
class MarkNonRelevant(Command):
    """'Less like this' — negative relevance feedback."""

    item: Node


@dataclass(frozen=True)
class ClearFeedback(Command):
    """Forget all relevance judgments."""


@dataclass(frozen=True)
class MoreLikeMarked(Command):
    """Navigate to items matching the accumulated judgments."""

    k: int = 10


# -- history -----------------------------------------------------------------


@dataclass(frozen=True)
class Back(Command):
    """The browser-style back button: restore the previous view."""


@dataclass(frozen=True)
class UndoRefinement(Command):
    """Step back along the refinement trail."""
