"""The serving layer: immutable session state over a shared workspace.

This package is the scaling seam the ROADMAP calls for.  The heavy
artifact (the :class:`~repro.core.workspace.Workspace`) is shared and
read-mostly; each user's browsing reduces to an immutable
:class:`SessionState` value, advanced by the stateless
:class:`NavigationService` through typed :mod:`commands
<repro.service.commands>`.  ``browser.Session`` remains the ergonomic
facade; :class:`SessionManager` multiplexes named sessions and handles
JSON persistence.
"""

from . import commands
from .manager import SessionManager
from .navigation import NavigationService, Transition
from .serialize import (
    StateLoadError,
    StateSerializationError,
    node_from_dict,
    node_to_dict,
    predicate_from_dict,
    predicate_to_dict,
)
from .state import (
    DEFAULT_BACK_LIMIT,
    STATE_FORMAT_VERSION,
    SessionState,
    ViewState,
)

__all__ = [
    "commands",
    "SessionManager",
    "NavigationService",
    "Transition",
    "SessionState",
    "ViewState",
    "STATE_FORMAT_VERSION",
    "DEFAULT_BACK_LIMIT",
    "StateSerializationError",
    "StateLoadError",
    "node_to_dict",
    "node_from_dict",
    "predicate_to_dict",
    "predicate_from_dict",
]
