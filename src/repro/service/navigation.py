"""The stateless navigation service: pure transitions over SessionState.

Every method here is a function of ``(workspace, state, command)`` —
the workspace is a shared read-mostly artifact, the state is an
immutable value, and the return is a fresh state plus the transition's
outcome.  Nothing is stored on the service between calls (the only
attribute is the suggestion engine, itself stateless per user), so one
service instance can serve any number of concurrent sessions over one
frozen workspace.

The transition semantics are ported verbatim from the pre-refactor
mutable ``browser.Session``; that class survives as a thin facade over
this service, and the original browser test suite is the behavioural
oracle.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

from ..core.engine import NavigationEngine, NavigationResult
from ..core.history import NavigationHistory
from ..core.suggestions import RefineMode
from ..core.view import View
from ..core.workspace import Workspace
from ..query.ast import And, Not, Or, Path, Predicate, Range, TextMatch
from ..rdf.terms import Node
from ..vsm.vector import SparseVector
from . import commands as cmd
from .state import SessionState, ViewState

__all__ = ["Transition", "NavigationService"]


class Transition:
    """The result of applying one command: the new state plus an outcome.

    ``outcome`` is command-specific extra data (e.g. whether a
    ``RemoveBookmark`` actually removed anything); for view-changing
    commands it is None and callers read ``state.view``.
    """

    __slots__ = ("state", "outcome")

    def __init__(self, state: SessionState, outcome: object = None):
        self.state = state
        self.outcome = outcome

    def __iter__(self):
        return iter((self.state, self.outcome))

    def __repr__(self) -> str:
        return f"<Transition to {self.state.view!r}>"


class NavigationService:
    """Executes commands against (workspace, state) pairs.

    Holds only the suggestion engine (advisors + analysts), which is
    per-deployment configuration, not per-user state.
    """

    def __init__(self, engine: NavigationEngine | None = None):
        self.engine = engine if engine is not None else NavigationEngine()

    # ------------------------------------------------------------------
    # State construction and materialization
    # ------------------------------------------------------------------

    def initial_state(
        self,
        workspace: Workspace,
        fuzzy_on_empty: bool = False,
        fuzzy_k: int = 10,
        back_limit: int = 100,
        session_id: str | None = None,
    ) -> SessionState:
        """A fresh session over the workspace: viewing everything."""
        return SessionState.initial(
            workspace.items,
            fuzzy_on_empty=fuzzy_on_empty,
            fuzzy_k=fuzzy_k,
            back_limit=back_limit,
            session_id=session_id,
        )

    def history_of(self, state: SessionState) -> NavigationHistory:
        """A NavigationHistory rebuilt from the state's raw sequences."""
        history = NavigationHistory()
        history.restore(state.visits, state.trail)
        return history

    def materialize(
        self,
        workspace: Workspace,
        state: SessionState,
        history: NavigationHistory | None = None,
    ) -> View:
        """The analyst-facing :class:`View` for the state's focus.

        ``history`` lets a caller thread its own (already synchronized)
        history object into the view; by default one is rebuilt from the
        state.
        """
        if history is None:
            history = self.history_of(state)
        return self._view_of(workspace, state.view, history)

    def suggest(self, workspace: Workspace, state: SessionState) -> NavigationResult:
        """Run the suggestion cycle for the state's current view."""
        return self.engine.suggest(self.materialize(workspace, state))

    @staticmethod
    def _view_of(
        workspace: Workspace, view: ViewState, history: NavigationHistory
    ) -> View:
        if view.is_item:
            return View.of_item(workspace, view.item, history=history)
        return View.of_collection(
            workspace,
            list(view.items),
            query=view.query,
            history=history,
            description=view.description,
        )

    # ------------------------------------------------------------------
    # Command dispatch
    # ------------------------------------------------------------------

    def apply(
        self, workspace: Workspace, state: SessionState, command: cmd.Command
    ) -> Transition:
        """Execute one command: ``(workspace, state, command) → Transition``.

        Raises exactly what the equivalent ``Session`` method raised
        (``IndexError`` for bad chip indexes, ``RuntimeError`` for an
        empty back stack, ...), leaving the input state untouched.
        """
        handler = self._HANDLERS.get(type(command))
        if handler is None:
            raise TypeError(f"unknown command {command!r}")
        transition = handler(self, workspace, state, command)
        self._count_transition(workspace, state)
        return transition

    def _count_transition(self, workspace: Workspace, state: SessionState) -> None:
        """Per-session transition telemetry (only for named sessions)."""
        if state.session_id is not None:
            workspace.obs.metrics.counter(
                f"session.transitions{{session={state.session_id}}}"
            ).inc()

    def _session_tags(self, state: SessionState, **tags) -> dict:
        """Span tags, with the session id attached for named sessions."""
        if state.session_id is not None:
            tags["session"] = state.session_id
        return tags

    # ------------------------------------------------------------------
    # Searches and queries
    # ------------------------------------------------------------------

    def _do_search(self, workspace, state, command: cmd.Search) -> Transition:
        return self._run_query(
            workspace, state, TextMatch(command.text),
            description=f"search {command.text!r}",
        )

    def _do_search_within(
        self, workspace, state, command: cmd.SearchWithin
    ) -> Transition:
        return self._refine_with(
            workspace, state, TextMatch(command.text), RefineMode.FILTER
        )

    def _do_run_query(self, workspace, state, command: cmd.RunQuery) -> Transition:
        return self._run_query(
            workspace, state, command.predicate, command.description
        )

    def _run_query(
        self,
        workspace: Workspace,
        state: SessionState,
        predicate: Predicate,
        description: str | None = None,
    ) -> Transition:
        obs = workspace.obs
        with obs.tracer.span(
            "session.query", **self._session_tags(state)
        ) as span:
            items = workspace.query_engine.evaluate(predicate)
            transition = self._arrive_collection(
                workspace, state, predicate, items, description
            )
            span.set_tag("items", len(transition.state.view.items))
            return transition

    def _do_refine(self, workspace, state, command: cmd.Refine) -> Transition:
        obs = workspace.obs
        obs.metrics.counter("session.refinements").inc()
        if state.session_id is not None:
            obs.metrics.counter(
                f"session.refinements{{session={state.session_id}}}"
            ).inc()
        with obs.tracer.span(
            "session.refine", **self._session_tags(state, mode=command.mode)
        ) as span:
            transition = self._refine_with(
                workspace, state, command.predicate, command.mode
            )
            span.set_tag("items", len(transition.state.view.items))
            return transition

    def _do_select_refine(
        self, workspace, state, command: cmd.SelectRefine
    ) -> Transition:
        return self._refine_with(workspace, state, command.predicate, command.mode)

    def _do_apply_range(self, workspace, state, command: cmd.ApplyRange) -> Transition:
        predicate = Range(command.prop, low=command.low, high=command.high)
        return self._refine_with(workspace, state, predicate, RefineMode.FILTER)

    def _do_apply_path(self, workspace, state, command: cmd.ApplyPath) -> Transition:
        predicate = Path(command.steps, command.value)
        return self._refine_with(workspace, state, predicate, RefineMode.FILTER)

    def _do_apply_compound(
        self, workspace, state, command: cmd.ApplyCompound
    ) -> Transition:
        from ..browser.compound import CompoundBuilder

        builder = CompoundBuilder(command.mode)
        for part in command.parts:
            builder.drag(part)
        return self._refine_with(
            workspace, state, builder.build(), RefineMode.FILTER
        )

    def _do_apply_subcollection(
        self, workspace, state, command: cmd.ApplySubcollection
    ) -> Transition:
        from ..query.ast import ValueIn

        predicate = ValueIn(
            command.prop, command.values, quantifier=command.quantifier
        )
        return self._refine_with(workspace, state, predicate, RefineMode.FILTER)

    def _do_search_ranked(
        self, workspace, state, command: cmd.SearchRanked
    ) -> Transition:
        hits = workspace.vector_store.search_text(command.text, command.k)
        items = tuple(hit.item for hit in hits if hit.score > 0.0)
        view = ViewState.of_collection(
            items,
            query=TextMatch(command.text),
            description=f"ranked search {command.text!r}",
        )
        new_state = replace(
            state,
            view=view,
            back_stack=self._push_back(state),
            trail=state.trail + ((view.query, view.description),),
            last_was_fuzzy=False,
        )
        return Transition(new_state)

    def _do_rank_current(
        self, workspace, state, command: cmd.RankCurrent
    ) -> Transition:
        from ..index.ranking import Ranker

        current = state.view
        ranker = Ranker(workspace.model)
        items = list(current.items)
        if command.text is not None:
            hits = ranker.rank_for_text(items, command.text)
        else:
            centroid = workspace.model.centroid(items)
            hits = ranker.rank(items, centroid)
        view = ViewState.of_collection(
            tuple(hit.item for hit in hits),
            query=current.query,
            description=current.description,
        )
        new_state = replace(
            state, view=view, back_stack=self._push_back(state)
        )
        return Transition(new_state)

    # ------------------------------------------------------------------
    # Constraint chips (§3.2)
    # ------------------------------------------------------------------

    def _do_remove_constraint(
        self, workspace, state, command: cmd.RemoveConstraint
    ) -> Transition:
        parts = state.view.constraints()
        if not (0 <= command.index < len(parts)):
            raise IndexError(f"no constraint at {command.index}")
        remaining = [c for i, c in enumerate(parts) if i != command.index]
        if not remaining:
            return self._go_collection(
                workspace, state, tuple(workspace.items), "everything"
            )
        query = remaining[0] if len(remaining) == 1 else And(remaining)
        return self._run_query(workspace, state, query)

    def _do_negate_constraint(
        self, workspace, state, command: cmd.NegateConstraint
    ) -> Transition:
        parts = state.view.constraints()
        if not (0 <= command.index < len(parts)):
            raise IndexError(f"no constraint at {command.index}")
        parts[command.index] = parts[command.index].negated()
        query = parts[0] if len(parts) == 1 else And(parts)
        return self._run_query(workspace, state, query)

    # ------------------------------------------------------------------
    # Direct navigation
    # ------------------------------------------------------------------

    def _do_go_item(self, workspace, state, command: cmd.GoItem) -> Transition:
        new_state = replace(
            state,
            visits=state.visits + (command.item,),
            back_stack=self._push_back(state),
            view=ViewState.of_item(command.item),
            last_was_fuzzy=False,
        )
        return Transition(new_state)

    def _do_go_collection(
        self, workspace, state, command: cmd.GoCollection
    ) -> Transition:
        return self._go_collection(
            workspace, state, command.items, command.description
        )

    def _go_collection(
        self,
        workspace: Workspace,
        state: SessionState,
        items: tuple[Node, ...],
        description: str | None,
    ) -> Transition:
        new_state = replace(
            state,
            view=ViewState.of_collection(items, description=description),
            back_stack=self._push_back(state),
            trail=state.trail + ((None, description or "collection"),),
            last_was_fuzzy=False,
        )
        return Transition(new_state)

    def _do_go_bookmarks(
        self, workspace, state, command: cmd.GoBookmarks
    ) -> Transition:
        return self._go_collection(workspace, state, state.bookmarks, "bookmarks")

    # ------------------------------------------------------------------
    # Bookmarks
    # ------------------------------------------------------------------

    def _do_add_bookmark(
        self, workspace, state, command: cmd.AddBookmark
    ) -> Transition:
        item = command.item
        if item is None:
            if not state.view.is_item:
                raise RuntimeError("no item in view to bookmark")
            item = state.view.item
        if item in state.bookmarks:
            return Transition(state)
        return Transition(replace(state, bookmarks=state.bookmarks + (item,)))

    def _do_remove_bookmark(
        self, workspace, state, command: cmd.RemoveBookmark
    ) -> Transition:
        if command.item not in state.bookmarks:
            return Transition(state, outcome=False)
        bookmarks = tuple(b for b in state.bookmarks if b != command.item)
        return Transition(replace(state, bookmarks=bookmarks), outcome=True)

    # ------------------------------------------------------------------
    # Relevance feedback (§5.3)
    # ------------------------------------------------------------------

    def _seed_feedback(self, state: SessionState) -> SessionState:
        """Activate feedback, capturing the current query as the seed."""
        if state.feedback_active:
            return state
        return replace(
            state, feedback_active=True, feedback_seed=state.view.query
        )

    def feedback_session(self, workspace: Workspace, state: SessionState):
        """A live FeedbackSession reconstructed from the state's marks."""
        from ..vsm.feedback import FeedbackSession

        initial = (
            self._predicate_vector(workspace, state.feedback_seed)
            if state.feedback_seed is not None
            else None
        )
        session = FeedbackSession(workspace.model, initial)
        for item in state.feedback_relevant:
            session.mark_relevant(item)
        for item in state.feedback_non_relevant:
            session.mark_non_relevant(item)
        return session

    def _do_mark_relevant(
        self, workspace, state, command: cmd.MarkRelevant
    ) -> Transition:
        state = self._seed_feedback(state)
        if command.item not in workspace.model:
            raise KeyError(f"item not indexed: {command.item!r}")
        relevant = state.feedback_relevant
        if command.item not in relevant:
            relevant = relevant + (command.item,)
        non_relevant = tuple(
            n for n in state.feedback_non_relevant if n != command.item
        )
        return Transition(
            replace(
                state,
                feedback_relevant=relevant,
                feedback_non_relevant=non_relevant,
            )
        )

    def _do_mark_non_relevant(
        self, workspace, state, command: cmd.MarkNonRelevant
    ) -> Transition:
        state = self._seed_feedback(state)
        if command.item not in workspace.model:
            raise KeyError(f"item not indexed: {command.item!r}")
        non_relevant = state.feedback_non_relevant
        if command.item not in non_relevant:
            non_relevant = non_relevant + (command.item,)
        relevant = tuple(n for n in state.feedback_relevant if n != command.item)
        return Transition(
            replace(
                state,
                feedback_relevant=relevant,
                feedback_non_relevant=non_relevant,
            )
        )

    def _do_clear_feedback(
        self, workspace, state, command: cmd.ClearFeedback
    ) -> Transition:
        return Transition(
            replace(
                state,
                feedback_relevant=(),
                feedback_non_relevant=(),
                feedback_seed=None,
                feedback_active=False,
            )
        )

    def _do_more_like_marked(
        self, workspace, state, command: cmd.MoreLikeMarked
    ) -> Transition:
        state = self._seed_feedback(state)
        if not state.feedback_relevant and not state.feedback_non_relevant:
            raise RuntimeError("no relevance judgments yet")
        feedback = self.feedback_session(workspace, state)
        judged = feedback.judged()
        hits = workspace.vector_store.search(
            feedback.query_vector(), command.k, exclude=lambda item: item in judged
        )
        return self._go_collection(
            workspace,
            state,
            tuple(hit.item for hit in hits if hit.score > 0.0),
            "more like the marked items",
        )

    # ------------------------------------------------------------------
    # History
    # ------------------------------------------------------------------

    def _do_back(self, workspace, state, command: cmd.Back) -> Transition:
        if not state.back_stack:
            raise RuntimeError("no earlier view to go back to")
        view = state.back_stack[-1]
        new_state = replace(
            state,
            view=view,
            back_stack=state.back_stack[:-1],
            last_was_fuzzy=False,
        )
        return Transition(new_state)

    def _do_undo(self, workspace, state, command: cmd.UndoRefinement) -> Transition:
        trail = list(state.trail)
        if trail:
            trail.pop()  # discard the step that produced the current view
        previous = trail.pop() if trail else None
        state = replace(state, trail=tuple(trail))
        if previous is None:
            return self._go_collection(
                workspace, state, tuple(workspace.items), "everything"
            )
        query, description = previous
        if query is None:
            return self._go_collection(
                workspace, state, tuple(workspace.items), description
            )
        return self._run_query(workspace, state, query, description)

    # ------------------------------------------------------------------
    # Read-only probes (no transition)
    # ------------------------------------------------------------------

    def preview_count(
        self,
        workspace: Workspace,
        state: SessionState,
        predicate: Predicate,
        mode: str = RefineMode.FILTER,
    ) -> int:
        """How many items a refinement would keep, without applying it."""
        obs = workspace.obs
        obs.metrics.counter("session.preview_counts").inc()
        with obs.tracer.span(
            "session.preview_count", **self._session_tags(state, mode=mode)
        ) as span:
            count = self._preview_count(workspace, state, predicate, mode)
            span.set_tag("results", count)
            return count

    def _preview_count(
        self,
        workspace: Workspace,
        state: SessionState,
        predicate: Predicate,
        mode: str,
    ) -> int:
        engine = workspace.query_engine
        current = state.view
        if mode == RefineMode.FILTER:
            return engine.count(predicate, within=current.items)
        if mode == RefineMode.EXCLUDE:
            return engine.count(predicate.negated(), within=current.items)
        if mode == RefineMode.EXPAND:
            query = (
                predicate
                if current.query is None
                else Or([current.query, predicate])
            )
            return engine.count(query)
        raise ValueError(f"unknown refine mode {mode!r}")

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _push_back(self, state: SessionState) -> tuple[ViewState, ...]:
        """The back stack with the current view pushed, oldest dropped."""
        stack = state.back_stack + (state.view,)
        if len(stack) > state.back_limit:
            stack = stack[len(stack) - state.back_limit:]
        return stack

    def _refine_with(
        self,
        workspace: Workspace,
        state: SessionState,
        predicate: Predicate,
        mode: str,
    ) -> Transition:
        current = state.view
        if mode == RefineMode.FILTER:
            query = self._conjoin(current.query, predicate)
            items = workspace.query_engine.evaluate(
                predicate, within=current.items
            )
        elif mode == RefineMode.EXCLUDE:
            negated = predicate.negated()
            query = self._conjoin(current.query, negated)
            items = workspace.query_engine.evaluate(
                negated, within=current.items
            )
        elif mode == RefineMode.EXPAND:
            query = (
                predicate
                if current.query is None
                else Or([current.query, predicate])
            )
            items = workspace.query_engine.evaluate(query)
        else:
            raise ValueError(f"unknown refine mode {mode!r}")
        return self._arrive_collection(workspace, state, query, items)

    @staticmethod
    def _conjoin(query: Predicate | None, predicate: Predicate) -> Predicate:
        from ..query.simplify import simplify

        if query is None:
            return predicate
        if isinstance(query, And):
            combined = And(list(query.parts) + [predicate])
        else:
            combined = And([query, predicate])
        # Keep the chips tidy: clicking the same facet twice must not
        # grow the conjunction, and ¬¬p collapses.
        return simplify(combined)

    def _arrive_collection(
        self,
        workspace: Workspace,
        state: SessionState,
        query: Predicate | None,
        items,
        description: str | None = None,
    ) -> Transition:
        item_list = sorted(items, key=lambda n: n.n3())
        was_fuzzy = False
        if not item_list and state.fuzzy_on_empty and query is not None:
            fuzzy = self._fuzzy_results(workspace, state, query)
            if fuzzy:
                item_list = fuzzy
                was_fuzzy = True
        context = workspace.query_context
        description = description or (
            query.describe(context) if query is not None else "collection"
        )
        view = ViewState.of_collection(
            tuple(item_list), query=query, description=description
        )
        new_state = replace(
            state,
            view=view,
            back_stack=self._push_back(state),
            trail=state.trail + ((query, description),),
            last_was_fuzzy=was_fuzzy,
        )
        return Transition(new_state)

    def _fuzzy_results(
        self, workspace: Workspace, state: SessionState, query: Predicate
    ) -> list[Node]:
        vector = self._predicate_vector(workspace, query)
        if len(vector) == 0:
            return []
        hits = workspace.vector_store.search(vector, state.fuzzy_k)
        return [hit.item for hit in hits if hit.score > 0.0]

    def _predicate_vector(
        self, workspace: Workspace, predicate: Predicate
    ) -> SparseVector:
        """A best-effort fuzzy rendering of a boolean query (§6.3.1).

        Positive constraints contribute their vectors; negations are
        ignored (a fuzzy 'not' would need relevance feedback).
        """
        model = workspace.model
        from ..query.ast import HasValue

        if isinstance(predicate, HasValue):
            return model.pair_vector([(predicate.prop, predicate.value)])
        if isinstance(predicate, TextMatch):
            return model.text_vector(predicate.text)
        if isinstance(predicate, (And, Or)):
            total = SparseVector()
            for part in predicate.parts:
                total = total + self._predicate_vector(workspace, part)
            return total.normalized()
        if isinstance(predicate, Not):
            return SparseVector()
        return SparseVector()

    _HANDLERS = {
        cmd.Search: _do_search,
        cmd.SearchWithin: _do_search_within,
        cmd.SearchRanked: _do_search_ranked,
        cmd.RankCurrent: _do_rank_current,
        cmd.RunQuery: _do_run_query,
        cmd.Refine: _do_refine,
        cmd.SelectRefine: _do_select_refine,
        cmd.ApplyRange: _do_apply_range,
        cmd.ApplyPath: _do_apply_path,
        cmd.ApplyCompound: _do_apply_compound,
        cmd.ApplySubcollection: _do_apply_subcollection,
        cmd.RemoveConstraint: _do_remove_constraint,
        cmd.NegateConstraint: _do_negate_constraint,
        cmd.GoItem: _do_go_item,
        cmd.GoCollection: _do_go_collection,
        cmd.GoBookmarks: _do_go_bookmarks,
        cmd.AddBookmark: _do_add_bookmark,
        cmd.RemoveBookmark: _do_remove_bookmark,
        cmd.MarkRelevant: _do_mark_relevant,
        cmd.MarkNonRelevant: _do_mark_non_relevant,
        cmd.ClearFeedback: _do_clear_feedback,
        cmd.MoreLikeMarked: _do_more_like_marked,
        cmd.Back: _do_back,
        cmd.UndoRefinement: _do_undo,
    }

    def __repr__(self) -> str:
        return f"<NavigationService engine={self.engine!r}>"
