"""JSON codecs for RDF terms and predicate trees.

:class:`~repro.service.state.SessionState` must travel between
processes (session migration, save/load, a future server frontend), so
everything it references — terms and predicate ASTs — needs a stable,
dependency-free wire form.  The codecs below are total over the built-in
term and predicate types and raise :class:`StateSerializationError` for
anything else (custom predicate subclasses must register nothing here;
sessions using them simply are not portable).

The format is versioned dict-of-plain-values JSON: terms are tagged by
kind (``uri``/``bnode``/``lit``), predicates by a short type tag.
``ValueIn``'s value set is emitted sorted by N-Triples form so the same
predicate always serializes to the same bytes.
"""

from __future__ import annotations

from typing import Any

from ..query.ast import (
    And,
    Cardinality,
    HasProperty,
    HasValue,
    Not,
    Or,
    Path,
    PathStep,
    PathValue,
    Predicate,
    Range,
    TextMatch,
    TypeIs,
    ValueIn,
)
from ..rdf.terms import BlankNode, Literal, Node, Resource

__all__ = [
    "StateSerializationError",
    "StateLoadError",
    "node_to_dict",
    "node_from_dict",
    "path_step_to_dict",
    "path_step_from_dict",
    "predicate_to_dict",
    "predicate_from_dict",
]


class StateSerializationError(ValueError):
    """A term or predicate has no JSON representation."""


class StateLoadError(StateSerializationError):
    """A persisted session state cannot be resumed.

    Raised for every way a saved state can fail to load — unreadable
    file, truncated/corrupt JSON, unknown ``STATE_FORMAT_VERSION``,
    missing or ill-typed fields — so callers handle one exception type
    and are guaranteed the failure left no half-resumed session behind.
    """


# ----------------------------------------------------------------------
# Terms
# ----------------------------------------------------------------------


def node_to_dict(node: Node) -> dict[str, Any]:
    """Encode a term as a plain dict."""
    if isinstance(node, Resource):
        return {"t": "uri", "v": node.uri}
    if isinstance(node, BlankNode):
        return {"t": "bnode", "v": node.node_id}
    if isinstance(node, Literal):
        encoded: dict[str, Any] = {"t": "lit", "v": node.lexical}
        if node.datatype is not None:
            encoded["dt"] = node.datatype
        if node.language is not None:
            encoded["lang"] = node.language
        return encoded
    raise StateSerializationError(f"cannot serialize term {node!r}")


def node_from_dict(data: dict[str, Any]) -> Node:
    """Decode a term encoded by :func:`node_to_dict`."""
    kind = data.get("t")
    if kind == "uri":
        return Resource(data["v"])
    if kind == "bnode":
        return BlankNode(data["v"])
    if kind == "lit":
        return Literal(
            data["v"], datatype=data.get("dt"), language=data.get("lang")
        )
    raise StateSerializationError(f"unknown term tag {kind!r}")


# ----------------------------------------------------------------------
# Path steps
# ----------------------------------------------------------------------


def path_step_to_dict(step: PathStep) -> dict[str, Any]:
    """Encode one hop of a property path (shared with the wire codec)."""
    encoded: dict[str, Any] = {"prop": node_to_dict(step.prop)}
    if step.inverse:
        encoded["inverse"] = True
    if step.closure:
        encoded["closure"] = step.closure
    return encoded


def path_step_from_dict(data: dict[str, Any]) -> PathStep:
    """Decode a hop encoded by :func:`path_step_to_dict`."""
    prop = node_from_dict(data["prop"])
    if not isinstance(prop, Resource):
        raise StateSerializationError(
            f"path step property must be a resource, got {prop!r}"
        )
    try:
        return PathStep(
            prop,
            inverse=bool(data.get("inverse", False)),
            closure=data.get("closure", ""),
        )
    except ValueError as error:
        raise StateSerializationError(str(error)) from error


# ----------------------------------------------------------------------
# Predicates
# ----------------------------------------------------------------------


def predicate_to_dict(predicate: Predicate) -> dict[str, Any]:
    """Encode a predicate tree as a plain dict.

    ``TypeIs`` is checked before its base ``HasValue`` so the sugar
    round-trips to the same type (and keeps its chip description).
    """
    if isinstance(predicate, TypeIs):
        return {"t": "type_is", "type": node_to_dict(predicate.value)}
    if isinstance(predicate, HasValue):
        return {
            "t": "has_value",
            "prop": node_to_dict(predicate.prop),
            "value": node_to_dict(predicate.value),
        }
    if isinstance(predicate, HasProperty):
        return {"t": "has_property", "prop": node_to_dict(predicate.prop)}
    if isinstance(predicate, TextMatch):
        encoded: dict[str, Any] = {"t": "text", "text": predicate.text}
        if predicate.within is not None:
            encoded["within"] = node_to_dict(predicate.within)
        return encoded
    if isinstance(predicate, Range):
        return {
            "t": "range",
            "prop": node_to_dict(predicate.prop),
            "low": predicate.low,
            "high": predicate.high,
        }
    if isinstance(predicate, Path):
        encoded = {
            "t": "path",
            "steps": [path_step_to_dict(s) for s in predicate.steps],
        }
        if predicate.value is not None:
            encoded["value"] = node_to_dict(predicate.value)
        return encoded
    if isinstance(predicate, PathValue):
        return {
            "t": "path_value",
            "chain": [node_to_dict(p) for p in predicate.chain],
            "value": node_to_dict(predicate.value),
        }
    if isinstance(predicate, ValueIn):
        return {
            "t": "value_in",
            "prop": node_to_dict(predicate.prop),
            "values": [
                node_to_dict(v)
                for v in sorted(predicate.values, key=lambda n: n.n3())
            ],
            "quantifier": predicate.quantifier,
        }
    if isinstance(predicate, Cardinality):
        return {
            "t": "cardinality",
            "prop": node_to_dict(predicate.prop),
            "at_least": predicate.at_least,
            "at_most": predicate.at_most,
        }
    if isinstance(predicate, And):
        return {"t": "and", "parts": [predicate_to_dict(p) for p in predicate.parts]}
    if isinstance(predicate, Or):
        return {"t": "or", "parts": [predicate_to_dict(p) for p in predicate.parts]}
    if isinstance(predicate, Not):
        return {"t": "not", "part": predicate_to_dict(predicate.part)}
    raise StateSerializationError(
        f"cannot serialize predicate type {type(predicate).__name__}"
    )


def predicate_from_dict(data: dict[str, Any]) -> Predicate:
    """Decode a predicate encoded by :func:`predicate_to_dict`."""
    kind = data.get("t")
    if kind == "type_is":
        return TypeIs(node_from_dict(data["type"]))
    if kind == "has_value":
        return HasValue(node_from_dict(data["prop"]), node_from_dict(data["value"]))
    if kind == "has_property":
        return HasProperty(node_from_dict(data["prop"]))
    if kind == "text":
        within = data.get("within")
        return TextMatch(
            data["text"],
            within=node_from_dict(within) if within is not None else None,
        )
    if kind == "range":
        return Range(node_from_dict(data["prop"]), low=data["low"], high=data["high"])
    if kind == "path":
        value = data.get("value")
        return Path(
            [path_step_from_dict(s) for s in data["steps"]],
            node_from_dict(value) if value is not None else None,
        )
    if kind == "path_value":
        return PathValue(
            [node_from_dict(p) for p in data["chain"]],
            node_from_dict(data["value"]),
        )
    if kind == "value_in":
        return ValueIn(
            node_from_dict(data["prop"]),
            [node_from_dict(v) for v in data["values"]],
            quantifier=data["quantifier"],
        )
    if kind == "cardinality":
        return Cardinality(
            node_from_dict(data["prop"]),
            at_least=data["at_least"],
            at_most=data["at_most"],
        )
    if kind == "and":
        return And([predicate_from_dict(p) for p in data["parts"]])
    if kind == "or":
        return Or([predicate_from_dict(p) for p in data["parts"]])
    if kind == "not":
        return Not(predicate_from_dict(data["part"]))
    raise StateSerializationError(f"unknown predicate tag {kind!r}")
