"""Counters, gauges, and fixed-bucket histograms with pure snapshots.

The registry is pull-oriented: hot paths either bump a pre-resolved
:class:`Counter`/:class:`Histogram` (one attribute add), or — for the
PR-1 cache statistics that are already counted elsewhere — register a
*lazy gauge*, a callable read only when :meth:`MetricsRegistry.snapshot`
runs, so telemetry of an existing counter costs nothing until someone
asks for it.

``snapshot()`` is deterministic and pure: keys are sorted, the returned
structure is freshly built plain dicts/lists, and two snapshots with no
intervening observations compare equal.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Callable, Iterable, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SnapshotMergeError",
    "merge_snapshots",
]


class Counter:
    """A monotonically increasing count.

    Increments are lock-guarded: counters on a shared workspace are
    bumped from every serving thread, and ``value += n`` alone would
    drop updates under that contention.
    """

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self.value += amount

    def __repr__(self) -> str:
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """A point-in-time value, set explicitly."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def __repr__(self) -> str:
        return f"<Gauge {self.name}={self.value}>"


class Histogram:
    """Observations bucketed by fixed upper bounds.

    ``buckets`` are inclusive upper bounds in strictly increasing order;
    an implicit overflow bucket catches everything above the last bound.
    The bucket layout is fixed at registration so snapshots from
    different runs line up column-for-column.
    """

    __slots__ = (
        "name", "buckets", "counts", "count", "total", "max_value", "_lock"
    )

    def __init__(self, name: str, buckets: Sequence[float]):
        bounds = tuple(buckets)
        if not bounds:
            raise ValueError("a histogram needs at least one bucket bound")
        if any(b >= a for b, a in zip(bounds, bounds[1:])):
            raise ValueError("bucket bounds must be strictly increasing")
        self.name = name
        self.buckets = bounds
        #: one slot per bound, plus the trailing overflow slot
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total: float = 0
        #: largest value observed, or None before the first observation.
        #: The overflow bucket has no upper bound, so quantile estimates
        #: that land there need this to avoid understating the tail.
        self.max_value: float | None = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        slot = bisect_left(self.buckets, value)
        with self._lock:
            self.counts[slot] += 1
            self.count += 1
            self.total += value
            if self.max_value is None or value > self.max_value:
                self.max_value = value

    def quantile(self, q: float) -> float:
        """Estimated value at quantile ``q`` (0..1), from the buckets.

        Linear interpolation within the bucket that holds the target
        rank; the first bucket interpolates from 0 and the overflow
        bucket (no upper bound) interpolates from the last bound up to
        the observed maximum, so ``quantile(1.0)`` reports the actual
        max rather than silently understating tails that outran the
        layout.  With an empty histogram the answer is 0.  The
        estimate's resolution is the bucket layout — serving dashboards
        want p50/p99 without keeping raw samples around.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            counts = list(self.counts)
            count = self.count
            observed_max = self.max_value
        if count == 0:
            return 0.0
        rank = q * count
        cumulative = 0
        for slot, in_bucket in enumerate(counts):
            cumulative += in_bucket
            if cumulative >= rank and in_bucket:
                if slot >= len(self.buckets):
                    # Overflow slot is non-empty, so something above the
                    # last bound was observed and observed_max is set.
                    lower = self.buckets[-1]
                    upper = max(observed_max, lower)
                    fraction = (rank - (cumulative - in_bucket)) / in_bucket
                    return lower + (upper - lower) * fraction
                lower = 0.0 if slot == 0 else self.buckets[slot - 1]
                upper = self.buckets[slot]
                fraction = (rank - (cumulative - in_bucket)) / in_bucket
                return lower + (upper - lower) * fraction
        return self.buckets[-1]

    def __repr__(self) -> str:
        return f"<Histogram {self.name} count={self.count}>"


class MetricsRegistry:
    """Named metrics with get-or-create registration.

    Registration is idempotent — asking for an existing name returns the
    same instrument, so re-entrant or repeated wiring cannot shadow or
    reset live metrics — and a name can only ever denote one kind of
    instrument (a counter cannot become a gauge).
    """

    __slots__ = ("_counters", "_gauges", "_gauge_fns", "_histograms", "_lock")

    def __init__(self):
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._gauge_fns: dict[str, Callable[[], float]] = {}
        self._histograms: dict[str, Histogram] = {}
        #: Guards get-or-create so two threads first naming a metric
        #: cannot mint two instruments (one of which would lose counts).
        self._lock = threading.Lock()

    # -- registration ------------------------------------------------------

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            with self._lock:
                counter = self._counters.get(name)
                if counter is None:
                    self._claim(name, "counter")
                    counter = self._counters[name] = Counter(name)
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            with self._lock:
                gauge = self._gauges.get(name)
                if gauge is None:
                    self._claim(name, "gauge")
                    gauge = self._gauges[name] = Gauge(name)
        return gauge

    def gauge_fn(self, name: str, fn: Callable[[], float]) -> None:
        """Register a lazy gauge, read only at snapshot time.

        Re-registering the same name replaces the callable — rebuilding
        a workspace substrate may legitimately re-wire its collector.
        """
        with self._lock:
            if name not in self._gauge_fns:
                self._claim(name, "gauge_fn")
            self._gauge_fns[name] = fn

    def histogram(self, name: str, buckets: Sequence[float] | None = None) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            with self._lock:
                histogram = self._histograms.get(name)
                if histogram is None:
                    if buckets is None:
                        raise ValueError(f"histogram {name!r} needs bucket bounds")
                    self._claim(name, "histogram")
                    histogram = self._histograms[name] = Histogram(name, buckets)
                    return histogram
        if buckets is not None and tuple(buckets) != histogram.buckets:
            raise ValueError(
                f"histogram {name!r} already registered with different buckets"
            )
        return histogram

    def _claim(self, name: str, kind: str) -> None:
        for other_kind, table in (
            ("counter", self._counters),
            ("gauge", self._gauges),
            ("gauge_fn", self._gauge_fns),
            ("histogram", self._histograms),
        ):
            if other_kind != kind and name in table:
                raise ValueError(
                    f"metric {name!r} is already a {other_kind}, "
                    f"cannot register as {kind}"
                )

    # -- reading -----------------------------------------------------------

    def snapshot(self) -> dict:
        """A deterministic, freshly built view of every metric."""
        gauges = {name: gauge.value for name, gauge in self._gauges.items()}
        for name, fn in self._gauge_fns.items():
            gauges[name] = fn()
        return {
            "counters": {
                name: self._counters[name].value
                for name in sorted(self._counters)
            },
            "gauges": {name: gauges[name] for name in sorted(gauges)},
            "histograms": {
                name: self._histogram_snapshot(self._histograms[name])
                for name in sorted(self._histograms)
            },
        }

    @staticmethod
    def _histogram_snapshot(histogram: Histogram) -> dict:
        return {
            "buckets": list(histogram.buckets),
            "counts": list(histogram.counts),
            "count": histogram.count,
            "sum": histogram.total,
            "max": histogram.max_value,
        }

    def reset(self) -> None:
        """Zero counters and histograms; registrations are kept."""
        for counter in self._counters.values():
            counter.value = 0
        for gauge in self._gauges.values():
            gauge.value = 0
        for histogram in self._histograms.values():
            histogram.counts = [0] * (len(histogram.buckets) + 1)
            histogram.count = 0
            histogram.total = 0
            histogram.max_value = None

    def __repr__(self) -> str:
        return (
            f"<MetricsRegistry counters={len(self._counters)} "
            f"gauges={len(self._gauges) + len(self._gauge_fns)} "
            f"histograms={len(self._histograms)}>"
        )


# ----------------------------------------------------------------------
# Snapshot merging (multi-process aggregation)
# ----------------------------------------------------------------------


class SnapshotMergeError(ValueError):
    """Snapshots being merged are structurally incompatible.

    Raised (instead of silently misfiling observations) when two
    per-process snapshots registered the same histogram with different
    bucket bounds.  Carries the metric name and both layouts.
    """

    def __init__(self, name: str, expected, got):
        super().__init__(
            f"histogram {name!r} has mismatched bucket layouts: "
            f"{expected!r} vs {got!r}"
        )
        self.metric = name
        self.expected = list(expected)
        self.got = list(got)


def _merge_histogram(
    name: str, merged: dict | None, addend: dict
) -> dict:
    """Bucket-wise exact sum of two histogram snapshots.

    Both snapshots must share the bucket layout — the registries that
    produced them registered the histogram with the same bounds — or
    the merge would silently misfile observations; a mismatch raises
    :class:`SnapshotMergeError` instead.
    """
    if merged is None:
        return {
            "buckets": list(addend["buckets"]),
            "counts": list(addend["counts"]),
            "count": addend["count"],
            "sum": addend["sum"],
            "max": addend.get("max"),
        }
    if list(merged["buckets"]) != list(addend["buckets"]):
        raise SnapshotMergeError(name, merged["buckets"], addend["buckets"])
    merged["counts"] = [
        a + b for a, b in zip(merged["counts"], addend["counts"])
    ]
    merged["count"] += addend["count"]
    merged["sum"] += addend["sum"]
    addend_max = addend.get("max")
    if addend_max is not None:
        merged_max = merged.get("max")
        merged["max"] = (
            addend_max if merged_max is None else max(merged_max, addend_max)
        )
    return merged


def merge_snapshots(snapshots: Iterable[dict]) -> dict:
    """Aggregate per-process :meth:`MetricsRegistry.snapshot` dicts.

    The sharded serving tier runs one registry per worker process; its
    front door answers ``/metrics`` with this merge:

    * **counters** sum by full name, so tagged families
      (``net.commands{command=Search}``) stay distinct per tag;
    * **histograms** merge exactly, bucket by bucket (same resolution
      as any single process — no re-bucketing error), and refuse
      mismatched layouts;
    * **gauges** sum, which is the right reading for the level-style
      gauges the serving tier exposes (queue depths, session counts).
      Ratio-style gauges do not survive a sum meaningfully; consumers
      that need them must read per-process snapshots.

    The result is deterministic (keys sorted) and freshly built, like
    any single-registry snapshot.
    """
    counters: dict[str, int] = {}
    gauges: dict[str, float] = {}
    histograms: dict[str, dict] = {}
    for snapshot in snapshots:
        for name, value in snapshot.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + value
        for name, value in snapshot.get("gauges", {}).items():
            gauges[name] = gauges.get(name, 0) + value
        for name, data in snapshot.get("histograms", {}).items():
            histograms[name] = _merge_histogram(
                name, histograms.get(name), data
            )
    return {
        "counters": {name: counters[name] for name in sorted(counters)},
        "gauges": {name: gauges[name] for name in sorted(gauges)},
        "histograms": {name: histograms[name] for name in sorted(histograms)},
    }
