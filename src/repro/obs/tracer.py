"""Nested spans over an injectable clock.

A :class:`Span` records one timed region of the pipeline — a
``Session.refine``, one analyst's turn on the blackboard, one predicate
node's extent resolution.  Spans nest: the tracer keeps a *current*
span, and every span opened while another is active becomes its child.

Re-entrancy is the one subtle requirement.  An analyst running inside a
``nav.analyst`` span may call back into ``QueryEngine.evaluate``, which
opens spans of its own; a blackboard listener may even post suggestions
that trigger further analysts mid-span.  Each span scope therefore
restores, on exit, exactly the current-span reference it saw on entry —
never a blind stack pop — so mis-ordered or exception-unwound exits
cannot corrupt the ancestry of spans that are still open.

:class:`NullTracer` is the zero-overhead default: ``enabled`` is False
(hot paths skip instrumentation entirely) and ``span()`` hands back a
shared do-nothing scope for the call sites that do not bother checking.
"""

from __future__ import annotations

from typing import Iterator

from .clock import monotonic_clock

__all__ = ["Span", "Tracer", "NullTracer", "NULL_TRACER"]


class Span:
    """One timed, tagged region; children are spans opened within it."""

    __slots__ = ("name", "tags", "start", "end", "children")

    def __init__(self, name: str, tags: dict | None = None):
        self.name = name
        self.tags: dict = tags if tags is not None else {}
        self.start: float | None = None
        self.end: float | None = None
        self.children: list[Span] = []

    def set_tag(self, key: str, value) -> None:
        """Attach/overwrite one tag (usable while the span is open)."""
        self.tags[key] = value

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        """Elapsed clock units; 0.0 while the span is still open."""
        if self.start is None or self.end is None:
            return 0.0
        return self.end - self.start

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first preorder."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:
        state = f"{self.duration:g}" if self.finished else "open"
        return f"<Span {self.name!r} {state} children={len(self.children)}>"


class _SpanScope:
    """Context manager for one span; restores the saved parent on exit."""

    __slots__ = ("_tracer", "_span", "_prev")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span
        self._prev: Span | None = None

    def __enter__(self) -> Span:
        tracer = self._tracer
        span = self._span
        parent = tracer._current
        self._prev = parent
        if parent is None:
            tracer.roots.append(span)
        else:
            parent.children.append(span)
        tracer._current = span
        span.start = tracer._clock()
        return span

    def __exit__(self, exc_type, exc, tb) -> bool:
        span = self._span
        span.end = self._tracer._clock()
        if exc_type is not None:
            span.set_tag("error", exc_type.__name__)
        # Restore what we saw, not whatever is on top now: a re-entrant
        # caller that misnests cannot damage our ancestors.
        self._tracer._current = self._prev
        return False


class Tracer:
    """Collects span trees; one instance per observability context."""

    #: Hot paths consult this before building any span machinery.
    enabled = True

    def __init__(self, clock=None):
        self._clock = clock if clock is not None else monotonic_clock
        #: finished (or still-open) top-level spans, in start order
        self.roots: list[Span] = []
        self._current: Span | None = None

    def span(self, name: str, /, **tags) -> _SpanScope:
        """Open a span as a context manager: ``with tracer.span(...)``.

        ``name`` is positional-only so any keyword — including ``name``
        itself — stays available as a tag.
        """
        return _SpanScope(self, Span(name, tags or None))

    @property
    def current(self) -> Span | None:
        """The innermost open span, if any."""
        return self._current

    def clear(self) -> None:
        """Drop recorded roots (open spans keep tracking their scope)."""
        self.roots = []

    def spans(self) -> Iterator[Span]:
        """Every recorded span, depth-first across all roots."""
        for root in self.roots:
            yield from root.walk()

    def __repr__(self) -> str:
        return f"<Tracer roots={len(self.roots)} enabled={self.enabled}>"


class _NullScope:
    """Shared do-nothing span scope."""

    __slots__ = ()

    def __enter__(self) -> "_NullScope":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set_tag(self, key: str, value) -> None:
        pass


_NULL_SCOPE = _NullScope()


class NullTracer:
    """The disabled tracer: every operation is a no-op."""

    enabled = False
    roots: tuple = ()
    current = None

    __slots__ = ()

    def span(self, name: str, /, **tags) -> _NullScope:
        return _NULL_SCOPE

    def clear(self) -> None:
        pass

    def spans(self) -> Iterator[Span]:
        return iter(())

    def __repr__(self) -> str:
        return "<NullTracer>"


#: Shared instance — stateless, so one is enough for the whole process.
NULL_TRACER = NullTracer()
