"""Deterministic text renderers for trace trees and metric snapshots.

Same contract as the pane renderers in ``browser/render.py``: plain
text, stable ordering, no timestamps or addresses — so golden tests can
assert the output byte-for-byte when spans were timed by a
:class:`~repro.obs.clock.ManualClock`.
"""

from __future__ import annotations

from typing import Iterable

from .tracer import Span

__all__ = ["render_trace", "render_trace_forest", "render_metrics"]


def _format_number(value) -> str:
    """Integers render bare; floats keep six decimals for stability."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if value == int(value):
            return str(int(value))
        return f"{value:.6f}"
    return str(value)


def _span_line(span: Span) -> str:
    parts = [span.name]
    for key in sorted(span.tags):
        parts.append(f"{key}={_format_number(span.tags[key])}")
    parts.append(f"[{_format_number(span.duration)}]")
    return " ".join(parts)


def render_trace(root: Span) -> str:
    """One span tree, two-space indentation per nesting level."""
    lines: list[str] = []

    def emit(span: Span, depth: int) -> None:
        lines.append("  " * depth + _span_line(span))
        for child in span.children:
            emit(child, depth + 1)

    emit(root, 0)
    return "\n".join(lines)


def render_trace_forest(roots: Iterable[Span]) -> str:
    """Several root spans in recording order."""
    return "\n".join(render_trace(root) for root in roots)


def render_metrics(snapshot: dict, width: int = 72) -> str:
    """A metrics snapshot as the CLI's ``metrics`` command prints it."""
    rule = "=" * width
    lines = [rule, "METRICS", rule]
    counters = snapshot.get("counters", {})
    if counters:
        lines.append("counters:")
        for name in sorted(counters):
            lines.append(f"  {name} = {_format_number(counters[name])}")
    gauges = snapshot.get("gauges", {})
    if gauges:
        lines.append("gauges:")
        for name in sorted(gauges):
            lines.append(f"  {name} = {_format_number(gauges[name])}")
    histograms = snapshot.get("histograms", {})
    if histograms:
        lines.append("histograms:")
        for name in sorted(histograms):
            data = histograms[name]
            lines.append(
                f"  {name}  count={data['count']} "
                f"sum={_format_number(data['sum'])}"
            )
            bounds = [f"<={_format_number(b)}" for b in data["buckets"]]
            bounds.append("+inf")
            for bound, count in zip(bounds, data["counts"]):
                lines.append(f"    {bound:>12}  {count}")
    lines.append(rule)
    return "\n".join(lines)
