"""Observability: spans, metrics, and cache telemetry for the hot path.

Magnet's interactive loop is a multi-stage pipeline — refine, evaluate
predicates over cached bitset extents, run the blackboard of analysts,
rank with the vector store — and the performance layer's value depends
entirely on cache behaviour.  This package makes that behaviour visible
without perturbing it:

* :class:`Tracer` / :class:`Span` — nested spans with monotonic-clock
  durations and an injectable :class:`ManualClock` for deterministic
  golden-trace tests; :data:`NULL_TRACER` is the zero-overhead default.
* :class:`MetricsRegistry` — counters, gauges (eager and lazy), and
  fixed-bucket histograms with a deterministic, pure ``snapshot()``.
* :func:`render_trace` / :func:`render_metrics` — plain-text renderers
  in the style of the figure renderers in ``browser/render.py``.
* :class:`Observability` — the bundle a
  :class:`~repro.core.workspace.Workspace` threads through its
  substrates; ``python -m repro --trace`` turns it on interactively.

Everything here is dependency-free and imports nothing from the rest of
``repro`` — it sits at the very bottom of the dependency stack.
"""

from .clock import ManualClock, monotonic_clock
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SnapshotMergeError,
    merge_snapshots,
)
from .observability import NULL_OBS, Observability
from .render import render_metrics, render_trace, render_trace_forest
from .tracer import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "ManualClock",
    "MetricsRegistry",
    "NULL_OBS",
    "NULL_TRACER",
    "NullTracer",
    "Observability",
    "SnapshotMergeError",
    "Span",
    "Tracer",
    "merge_snapshots",
    "monotonic_clock",
    "render_metrics",
    "render_trace",
    "render_trace_forest",
]
