"""Clocks for span timing: monotonic for production, manual for tests.

A clock is just a zero-argument callable returning a monotonically
non-decreasing float.  The tracer never assumes a unit — wall-clock
spans carry seconds, :class:`ManualClock` spans carry "ticks" — so
golden-trace tests can assert durations exactly.
"""

from __future__ import annotations

import time

__all__ = ["ManualClock", "monotonic_clock"]

#: The production clock: monotonic, high resolution, unit = seconds.
monotonic_clock = time.perf_counter


class ManualClock:
    """A deterministic clock that advances by ``step`` on every read.

    Each read returns the current time *then* advances, so a span whose
    body performs no further clock reads lasts exactly one step, and a
    span enclosing ``n`` reads lasts ``n + 1`` steps.  Durations are
    therefore a pure function of the code path — the property the
    golden-trace tests rely on.  :meth:`advance` injects extra elapsed
    time between reads when a test wants a specific duration.
    """

    __slots__ = ("now", "step")

    def __init__(self, start: float = 0.0, step: float = 1.0):
        self.now = float(start)
        self.step = float(step)

    def __call__(self) -> float:
        value = self.now
        self.now += self.step
        return value

    def advance(self, amount: float) -> None:
        """Move time forward without counting as a read."""
        if amount < 0:
            raise ValueError("a monotonic clock cannot go backwards")
        self.now += amount

    def __repr__(self) -> str:
        return f"<ManualClock now={self.now:g} step={self.step:g}>"
