"""The bundle a workspace threads through its substrates.

One :class:`Observability` holds the tracer and the metrics registry
every instrumented component shares.  The default is *disabled* tracing
— a shared :data:`~repro.obs.tracer.NULL_TRACER` whose ``enabled`` flag
hot paths check before doing any span work — with a live (but idle,
pull-based) metrics registry, so cache telemetry is always available
while the trace machinery costs nothing until switched on.
"""

from __future__ import annotations

from .metrics import MetricsRegistry
from .tracer import NULL_TRACER, Tracer

__all__ = ["Observability", "NULL_OBS"]


class Observability:
    """Tracer + metrics registry, shared by one workspace's substrates."""

    __slots__ = ("tracer", "metrics", "_clock")

    def __init__(self, tracing: bool = False, clock=None,
                 metrics: MetricsRegistry | None = None):
        self._clock = clock
        self.tracer = Tracer(clock) if tracing else NULL_TRACER
        self.metrics = metrics if metrics is not None else MetricsRegistry()

    @property
    def tracing(self) -> bool:
        return self.tracer.enabled

    def enable_tracing(self, clock=None) -> Tracer:
        """Switch tracing on (idempotent); returns the live tracer."""
        if not self.tracer.enabled:
            self.tracer = Tracer(clock if clock is not None else self._clock)
        return self.tracer

    def disable_tracing(self) -> None:
        """Back to the shared no-op tracer; recorded spans are dropped."""
        self.tracer = NULL_TRACER

    def __repr__(self) -> str:
        return f"<Observability tracing={self.tracing} {self.metrics!r}>"


#: Default for components constructed without a workspace (e.g. a bare
#: ``QueryEngine`` in a benchmark): no tracing, and a registry nobody
#: reads.  Shared process-wide — instruments registered here by
#: unattached components are intentionally inconsequential.
NULL_OBS = Observability(tracing=False)
