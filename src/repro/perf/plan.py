"""Flat bytecode query plans over compressed bitset containers.

A parsed predicate tree compiles to a postorder instruction tuple — a
stack machine with five opcodes — whose leaf extents are resolved *at
compile time* into :class:`~repro.perf.containers.RoaringBitmap`
containers.  Two ordering rules make the plan safe:

* **Leaves resolve in syntactic order.**  Whatever errors leaf
  resolution can raise (``TextMatch`` without a text index) surface in
  exactly the order the legacy bitset walk raises them, and unknown
  leaves (``candidates() is None``) propagate with the same
  And-resolves-everything / Or-stops-at-first-unknown shape, so the
  fallback decision is bit-compatible with the legacy engine.

* **Conjuncts combine in estimated-selectivity order.**  Intersection is
  commutative, so after all leaves are resolved the compiler is free to
  emit an ``And``'s operand fragments most-selective-first (estimates:
  leaf = exact container cardinality, And = min of parts, Or = capped
  sum, Not = universe minus part).  The running intersection shrinks as
  fast as possible; results are identical by construction.

``compile_predicate`` returns None when any reachable leaf has no
enumerable extent — the engine then falls back to per-item filtering,
exactly like the legacy paths.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from .containers import RoaringBitmap

__all__ = [
    "OP_LEAF",
    "OP_AND",
    "OP_OR",
    "OP_NOT",
    "OP_UNIVERSE",
    "CompiledPlan",
    "compile_predicate",
]

#: Push the pre-resolved leaf container ``arg``.
OP_LEAF = 0
#: Pop ``arg`` containers, push their intersection.
OP_AND = 1
#: Pop ``arg`` containers, push their union (``arg`` may be 0 → empty).
OP_OR = 2
#: Pop one container, push its complement within the universe.
OP_NOT = 3
#: Push the universe container (empty ``And``).
OP_UNIVERSE = 4


class CompiledPlan:
    """An executable flat plan: opcodes plus resolved leaf containers."""

    __slots__ = ("ops", "leaves", "estimate")

    def __init__(
        self,
        ops: tuple[tuple[int, int], ...],
        leaves: tuple[RoaringBitmap, ...],
        estimate: int,
    ):
        self.ops = ops
        self.leaves = leaves
        #: the root's selectivity estimate (exact for leaves)
        self.estimate = estimate

    def execute(self, universe: RoaringBitmap) -> RoaringBitmap:
        """Run the stack machine; the caller scopes the result itself.

        ``universe`` only feeds ``OP_NOT`` / ``OP_UNIVERSE`` — leaf
        containers are deliberately *not* universe-clipped, matching the
        legacy bitmask walk (callers intersect the root with the
        universe or a ``within`` restriction afterwards).
        """
        leaves = self.leaves
        stack: list[RoaringBitmap] = []
        for op, arg in self.ops:
            if op == OP_LEAF:
                stack.append(leaves[arg])
            elif op == OP_AND:
                parts = stack[-arg:]
                del stack[-arg:]
                acc = parts[0]
                for part in parts[1:]:
                    if not acc:
                        break
                    acc = acc & part
                stack.append(acc)
            elif op == OP_OR:
                if arg == 0:
                    stack.append(RoaringBitmap.empty())
                else:
                    parts = stack[-arg:]
                    del stack[-arg:]
                    acc = parts[0]
                    for part in parts[1:]:
                        acc = acc | part
                    stack.append(acc)
            elif op == OP_NOT:
                stack[-1] = universe.andnot(stack[-1])
            else:  # OP_UNIVERSE
                stack.append(universe)
        return stack[-1]

    def __repr__(self) -> str:
        return (
            f"<CompiledPlan ops={len(self.ops)} leaves={len(self.leaves)} "
            f"est={self.estimate}>"
        )


def _selectivity_order(estimates: Sequence[int]) -> list[int]:
    """Operand order for an And: ascending estimate, stable on ties.

    Module-level on purpose: the harness-sensitivity tests monkeypatch
    this seam with a conjunct-dropping bug to prove the three-way
    fuzzer notices.
    """
    return sorted(range(len(estimates)), key=lambda i: (estimates[i], i))


def compile_predicate(
    predicate,
    resolve_leaf: Callable[[object], Optional[RoaringBitmap]],
    universe_size: int,
) -> Optional[CompiledPlan]:
    """Compile a predicate tree into a flat plan, or None to fall back.

    ``resolve_leaf`` maps a leaf predicate to its extent container (or
    None when the leaf cannot enumerate one); it may raise, and is
    called in syntactic order so errors surface exactly as on the
    legacy paths.
    """
    from ..query.ast import And, Not, Or

    leaves: list[RoaringBitmap] = []

    def emit(pred) -> Optional[tuple[list[tuple[int, int]], int]]:
        if isinstance(pred, And):
            if not pred.parts:
                return [(OP_UNIVERSE, 0)], universe_size
            # Resolve *every* part even after an unknown one — errors in
            # later parts must surface exactly as on the bitset path.
            fragments = [emit(part) for part in pred.parts]
            if any(fragment is None for fragment in fragments):
                return None
            order = _selectivity_order(
                [estimate for _ops, estimate in fragments]
            )
            ops: list[tuple[int, int]] = []
            for index in order:
                ops.extend(fragments[index][0])
            ops.append((OP_AND, len(fragments)))
            return ops, min(estimate for _ops, estimate in fragments)
        if isinstance(pred, Or):
            ops = []
            total = 0
            for part in pred.parts:
                # First unknown part aborts — later parts stay
                # unresolved, exactly like the bitset walk.
                fragment = emit(part)
                if fragment is None:
                    return None
                ops.extend(fragment[0])
                total += fragment[1]
            ops.append((OP_OR, len(pred.parts)))
            return ops, min(total, universe_size)
        if isinstance(pred, Not):
            fragment = emit(pred.part)
            if fragment is None:
                return None
            ops, estimate = fragment
            return ops + [(OP_NOT, 0)], max(0, universe_size - estimate)
        container = resolve_leaf(pred)
        if container is None:
            return None
        leaves.append(container)
        return [(OP_LEAF, len(leaves) - 1)], container.cardinality()

    compiled = emit(predicate)
    if compiled is None:
        return None
    ops, estimate = compiled
    return CompiledPlan(tuple(ops), tuple(leaves), estimate)
