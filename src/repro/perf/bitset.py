"""Bitset primitives over arbitrary-precision Python ints.

A collection of interned items is one int with bit ``i`` set for item id
``i``.  Intersection, union, and complement of whole collections are
then single C-level bitwise operations, and cardinality is one
``bit_count`` — the machinery behind the query layer's near-O(result)
refinement clicks.
"""

from __future__ import annotations

from typing import Iterable, Iterator

__all__ = ["bits_from_ids", "bits_from_nodes", "iter_ids", "popcount"]


def bits_from_ids(ids: Iterable[int]) -> int:
    """A bitmask with every id's bit set.

    Builds through a byte buffer rather than repeated ``1 << id`` shifts
    so constructing a corpus-wide mask is linear in the corpus size.
    """
    collected = list(ids)
    if not collected:
        return 0
    buf = bytearray(max(collected) // 8 + 1)
    for idx in collected:
        buf[idx >> 3] |= 1 << (idx & 7)
    return int.from_bytes(buf, "little")


def bits_from_nodes(interner, nodes: Iterable) -> int:
    """Convenience: intern each node and build the mask."""
    return interner.bits_of(nodes)


def iter_ids(mask: int) -> Iterator[int]:
    """Yield the set bit positions of ``mask`` in ascending order."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def popcount(mask: int) -> int:
    """Number of set bits (collection cardinality)."""
    return mask.bit_count()
