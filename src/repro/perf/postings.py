"""Precomputed per-facet posting data feeding the compiled hot paths.

Two structures, both keyed to one graph version:

* **per-item facet records** — for every universe item, the outcome of
  the classification work :func:`repro.core.analysts.common.
  collection_profile` performs per value (facetable? continuous?
  numeric reading?), captured once at build time.  Profiling a
  collection then reduces to a single pass of C-level
  ``Counter.update`` / ``list.extend`` calls per (item, property) —
  no per-value Python loop, no ``properties_of`` copies.

* **per-property numeric arrays** — every ``(reading, subject)`` pair of
  a property, sorted by reading, built lazily on the first ``Range``
  leaf over that property.  A range extent becomes two bisects instead
  of a full triple scan.

Bit-identity is load-bearing, not best-effort: facet Counters leak their
*insertion order* into suggestion ranking via ``Counter.most_common``
tie-breaking, so the records store facet values in exactly the order the
legacy sweep would encounter them — the iteration order of the same
``properties_of`` value-set copies, captured from the same frozen graph
version.  ``profile`` replays items in caller order, so the rebuilt
:class:`~repro.core.analysts.common.CollectionProfile` matches the
legacy sweep byte for byte (the equivalence suite pins this, including
Counter item order).  Range arrays cover *all* subjects of the property
(annotation nodes included), mirroring ``Range.candidates`` exactly.
"""

from __future__ import annotations

import itertools as _chain_mod
import math
from bisect import bisect_left, bisect_right
from typing import TYPE_CHECKING, Iterable

_chain = _chain_mod.chain

from ..rdf.terms import Literal, Node, Resource

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.analysts.common import CollectionProfile
    from ..rdf.graph import Graph
    from ..rdf.schema import Schema

__all__ = ["FacetPostings"]


#: One record entry per (item, property):
#: (prop index into ``_props``, facet values in sweep order,
#:  value count, continuous count, numeric readings in sweep order).
#: Per-property constants (the resource itself, declared type,
#: is_annotation) live once in ``_props`` — the int index keeps the
#: profile hot loop free of Node hashing entirely.
_Entry = tuple[int, tuple[Node, ...], int, int, tuple[float, ...]]


class FacetPostings:
    """Version-pinned posting data for compiled profiles and range leaves."""

    __slots__ = (
        "graph",
        "schema",
        "version",
        "n_items",
        "n_entries",
        "reused_records",
        "rebuilt_records",
        "_props",
        "_records",
        "_range_arrays",
    )

    def __init__(self, graph: "Graph", schema: "Schema", version: int):
        self.graph = graph
        self.schema = schema
        self.version = version
        self.n_items = 0
        self.n_entries = 0
        #: records carried over unchanged from a prior build (advance).
        self.reused_records = 0
        #: records swept from the graph this build.
        self.rebuilt_records = 0
        #: prop_idx -> (prop, declared type, is_annotation).
        self._props: list[tuple[Resource, "str | None", bool]] = []
        self._records: dict[Node, tuple[_Entry, ...]] = {}
        #: prop -> (sorted readings, parallel subjects); built lazily.
        self._range_arrays: dict[
            Resource, tuple[list[float], list[Node]]
        ] = {}

    # ------------------------------------------------------------------
    # Build
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls, graph: "Graph", schema: "Schema", items: Iterable[Node]
    ) -> "FacetPostings":
        """Sweep ``items`` once, capturing per-item facet records.

        The sweep iterates ``properties_of`` copies — the same objects
        the legacy profile iterates — so the captured value order is the
        order any later legacy sweep of the same graph version would
        see.
        """
        from ..core.analysts.common import (
            ANNOTATION_PROPERTIES,
            is_facetable_value,
        )

        postings = cls(graph, schema, graph.version)
        records = postings._records
        #: prop -> None (hidden) | (prop_idx, declared, value memo)
        prop_meta: dict[Resource, tuple | None] = {}
        n_entries = 0
        for item in items:
            rec = postings._sweep_item(item, prop_meta)
            records[item] = rec
            n_entries += len(rec)
        postings.n_items = len(records)
        postings.n_entries = n_entries
        postings.rebuilt_records = len(records)
        return postings

    @classmethod
    def advance(
        cls,
        prior: "FacetPostings",
        graph: "Graph",
        schema: "Schema",
        items: Iterable[Node],
        dirty: "set[Node]",
        dirty_props: "set[Resource]",
    ) -> "FacetPostings":
        """Build postings for the next epoch, re-sweeping only ``dirty``.

        Records of items outside ``dirty`` are carried over verbatim —
        valid because an untouched item's ``properties_of`` view (and
        hence its sweep outcome) is shared, unchanged, between the prior
        graph and the fork.  Range posting arrays carry over for every
        property no delta datom mentions; touched properties rebuild
        lazily.  ``items`` must be the new build population in sweep
        order; the property table extends the prior one so carried
        records' indices stay valid.
        """
        postings = cls(graph, schema, graph.version)
        postings._props = list(prior._props)
        prop_meta: dict[Resource, tuple | None] = {
            prop: (idx, declared, {})
            for idx, (prop, declared, _ann) in enumerate(prior._props)
        }
        prior_records = prior._records
        records = postings._records
        n_entries = 0
        reused = rebuilt = 0
        for item in items:
            rec = prior_records.get(item) if item not in dirty else None
            if rec is None:
                rec = postings._sweep_item(item, prop_meta)
                rebuilt += 1
            else:
                reused += 1
            records[item] = rec
            n_entries += len(rec)
        postings.n_items = len(records)
        postings.n_entries = n_entries
        postings.reused_records = reused
        postings.rebuilt_records = rebuilt
        for prop, pair in prior._range_arrays.items():
            if prop not in dirty_props:
                postings._range_arrays[prop] = pair
        return postings

    def _sweep_item(
        self, item: Node, prop_meta: "dict[Resource, tuple | None]"
    ) -> tuple[_Entry, ...]:
        """Classify one item's values exactly as the legacy sweep would."""
        from ..core.analysts.common import (
            ANNOTATION_PROPERTIES,
            is_facetable_value,
        )

        graph = self.graph
        schema = self.schema
        props = self._props
        entries: list[_Entry] = []
        for prop, values in graph.properties_of(item).items():
            meta = prop_meta.get(prop, _MISSING)
            if meta is _MISSING:
                if schema.is_hidden(prop):
                    meta = None
                else:
                    declared = schema.value_type(prop)
                    meta = (len(props), declared, {})
                    props.append(
                        (prop, declared, prop in ANNOTATION_PROPERTIES)
                    )
                prop_meta[prop] = meta
            if meta is None:
                continue
            prop_idx, declared, value_info = meta
            facet_values: list[Node] = []
            readings: list[float] = []
            continuous_seen = 0
            for value in values:
                info = value_info.get(value)
                if info is None:
                    facetable = is_facetable_value(value, declared)
                    if isinstance(value, Literal):
                        continuous = value.is_numeric or value.is_temporal
                        number = value.as_number()
                    else:
                        continuous = False
                        number = None
                    info = (facetable, continuous, number)
                    value_info[value] = info
                facetable, continuous, number = info
                if facetable:
                    facet_values.append(value)
                if continuous:
                    continuous_seen += 1
                if number is not None:
                    readings.append(number)
            entries.append(
                (
                    prop_idx,
                    tuple(facet_values),
                    len(values),
                    continuous_seen,
                    tuple(readings),
                )
            )
        return tuple(entries)

    def covers(self, items: Iterable[Node]) -> bool:
        """True when every item has a record (profile won't fall back)."""
        records = self._records
        return all(item in records for item in items)

    # ------------------------------------------------------------------
    # Compiled facet profile
    # ------------------------------------------------------------------

    def profile(self, items) -> "CollectionProfile | None":
        """A :class:`CollectionProfile` bit-identical to the legacy sweep.

        Returns None when any item lacks a record (an item outside the
        build population) — the caller falls back to the legacy sweep.

        Two-phase for speed: a minimal item-order pass buckets entries
        per property (this fixes both the property *first-encounter*
        order and, within each bucket, the item-order value sequence),
        then each property aggregates with C-level ``chain`` +
        ``Counter.update`` calls.  Concatenated-then-counted values see
        first occurrences in exactly the order per-entry updates would,
        so Counter insertion order — which ``most_common`` tie-breaking
        leaks into suggestions — is preserved.
        """
        from ..core.analysts.common import CollectionProfile, PropertyProfile

        records = self._records
        props = self._props
        profile = CollectionProfile(len(items))
        properties = profile.properties
        buckets: list[list[_Entry] | None] = [None] * len(props)
        order: list[int] = []
        append_order = order.append
        for item in items:
            rec = records.get(item)
            if rec is None:
                return None
            for entry in rec:
                idx = entry[0]
                bucket = buckets[idx]
                if bucket is None:
                    buckets[idx] = [entry]
                    append_order(idx)
                else:
                    bucket.append(entry)
        chain = _chain.from_iterable
        for idx in order:
            bucket = buckets[idx]
            prop, declared, is_annotation = props[idx]
            prop_profile = PropertyProfile(prop, declared, is_annotation)
            properties[prop] = prop_profile
            prop_profile.coverage = len(bucket)
            prop_profile.value_tally = sum([entry[2] for entry in bucket])
            prop_profile.continuous_tally = sum(
                [entry[3] for entry in bucket]
            )
            prop_profile.counts.update(
                chain([entry[1] for entry in bucket])
            )
            prop_profile._readings = list(
                chain([entry[4] for entry in bucket])
            )
        return profile

    # ------------------------------------------------------------------
    # Range posting arrays
    # ------------------------------------------------------------------

    def _range_array(
        self, prop: Resource
    ) -> tuple[list[float], list[Node]]:
        arrays = self._range_arrays
        pair = arrays.get(prop)
        if pair is None:
            pairs: list[tuple[float, Node]] = []
            for subject, _p, value in self.graph.triples(None, prop, None):
                if not isinstance(value, Literal):
                    continue
                number = value.as_number()
                if number is None or math.isnan(number):
                    continue
                pairs.append((number, subject))
            pairs.sort(key=lambda entry: entry[0])
            pair = (
                [number for number, _s in pairs],
                [subject for _n, subject in pairs],
            )
            arrays[prop] = pair
        return pair

    def range_extent(
        self, prop: Resource, low: float | None, high: float | None
    ) -> set[Node]:
        """Exactly ``Range(prop, low, high).candidates(...)``, by bisect.

        A NaN bound compares False against every reading on the scan
        path, i.e. it never excludes anything — treated as unbounded
        here so the two paths agree.
        """
        readings, subjects = self._range_array(prop)
        lo_idx = 0
        hi_idx = len(readings)
        if low is not None and not math.isnan(low):
            lo_idx = bisect_left(readings, low)
        if high is not None and not math.isnan(high):
            hi_idx = bisect_right(readings, high)
        return set(subjects[lo_idx:hi_idx])

    def __repr__(self) -> str:
        return (
            f"<FacetPostings v{self.version} items={self.n_items} "
            f"entries={self.n_entries} "
            f"range_props={len(self._range_arrays)}>"
        )


_MISSING = object()
