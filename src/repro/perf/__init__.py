"""Performance substrate: interning, bitsets, and cache instrumentation.

Magnet's interactivity (§3–§5: suggestions and query previews recomputed
on every refinement click) rests on the repository being fast at
repeated set algebra and facet counting over the same corpus.  This
package supplies the shared low-level pieces:

* :class:`InternTable` — a monotonic ``Node ↔ int`` intern table, so
  item sets can be represented as Python-int bitmasks;
* bitset utilities (:func:`bits_from_ids`, :func:`iter_ids`,
  :func:`popcount`) — AND/OR/NOT over whole collections become single
  bitwise operations;
* :class:`CacheStats` / :class:`IndexMaintenanceStats` — counters that
  make cache behaviour observable in tests and benchmarks;
* :class:`RoaringBitmap` — roaring-style compressed bitsets
  (array/bitmap/run chunks) for the compiled query path;
* :class:`CompiledPlan` / :func:`compile_predicate` — flat bytecode
  query plans with selectivity-ordered conjuncts;
* :class:`FacetPostings` — precomputed per-item facet records and
  per-property numeric posting arrays feeding the single-pass facet
  profile and ``Range`` leaves.

Everything here is pure bookkeeping: no component changes any query,
facet, or ranking *output*, only the time taken to produce it.
"""

from .bitset import bits_from_ids, bits_from_nodes, iter_ids, popcount
from .containers import ARRAY_MAX_CARD, RUN_COMPRESSION_FACTOR, RoaringBitmap
from .intern import InternTable
from .plan import CompiledPlan, compile_predicate
from .postings import FacetPostings
from .stats import CacheStats, IndexMaintenanceStats

__all__ = [
    "ARRAY_MAX_CARD",
    "RUN_COMPRESSION_FACTOR",
    "InternTable",
    "CacheStats",
    "IndexMaintenanceStats",
    "RoaringBitmap",
    "CompiledPlan",
    "FacetPostings",
    "bits_from_ids",
    "bits_from_nodes",
    "compile_predicate",
    "iter_ids",
    "popcount",
]
