"""Performance substrate: interning, bitsets, and cache instrumentation.

Magnet's interactivity (§3–§5: suggestions and query previews recomputed
on every refinement click) rests on the repository being fast at
repeated set algebra and facet counting over the same corpus.  This
package supplies the shared low-level pieces:

* :class:`InternTable` — a monotonic ``Node ↔ int`` intern table, so
  item sets can be represented as Python-int bitmasks;
* bitset utilities (:func:`bits_from_ids`, :func:`iter_ids`,
  :func:`popcount`) — AND/OR/NOT over whole collections become single
  bitwise operations;
* :class:`CacheStats` / :class:`IndexMaintenanceStats` — counters that
  make cache behaviour observable in tests and benchmarks.

Everything here is pure bookkeeping: no component changes any query,
facet, or ranking *output*, only the time taken to produce it.
"""

from .bitset import bits_from_ids, bits_from_nodes, iter_ids, popcount
from .intern import InternTable
from .stats import CacheStats, IndexMaintenanceStats

__all__ = [
    "InternTable",
    "CacheStats",
    "IndexMaintenanceStats",
    "bits_from_ids",
    "bits_from_nodes",
    "iter_ids",
    "popcount",
]
