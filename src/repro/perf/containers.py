"""Roaring-style compressed bitsets: array / bitmap / run chunks.

The plain-int bitmasks of :mod:`repro.perf.bitset` treat every extent as
one huge integer; dense corpora pay for every absent region of the id
space on each operation.  A :class:`RoaringBitmap` splits the id space
into 2^16-wide chunks keyed by the ids' high bits and stores each chunk
in whichever of three formats fits it:

* **array** — a sorted tuple of 16-bit offsets, for sparse chunks
  (cardinality ≤ :data:`ARRAY_MAX_CARD`);
* **bitmap** — a 65,536-bit Python int, for dense chunks;
* **run** — a tuple of ``(start, length)`` intervals, chosen by
  :meth:`RoaringBitmap.run_optimize` when a chunk is run-heavy
  (``n_runs * RUN_COMPRESSION_FACTOR <= cardinality``).

Set algebra dispatches per chunk pair; absent chunks cost nothing.
Operation *results* normalize between array and bitmap at the
:data:`ARRAY_MAX_CARD` threshold; run chunks are only produced by
explicit ``run_optimize`` (posting-list build time), exactly like the
roaring reference implementation's ``runOptimize``.

Everything here is a value-semantics set of non-negative ints; the query
compiler stores predicate extents in these and the equivalence suites
pin them against the plain-bitmask and per-item paths.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Iterable, Iterator

__all__ = [
    "ARRAY_MAX_CARD",
    "RUN_COMPRESSION_FACTOR",
    "CHUNK_BITS",
    "CHUNK_SIZE",
    "RoaringBitmap",
]

#: Chunk width: ids share a chunk when they agree on all but 16 low bits.
CHUNK_BITS = 16
CHUNK_SIZE = 1 << CHUNK_BITS
_LOW_MASK = CHUNK_SIZE - 1

#: A chunk holding more than this many ids is stored as a bitmap.
ARRAY_MAX_CARD = 4096

#: ``run_optimize`` converts a chunk to runs when
#: ``n_runs * RUN_COMPRESSION_FACTOR <= cardinality``.
RUN_COMPRESSION_FACTOR = 8


class _ArrayChunk:
    """Sparse chunk: sorted tuple of 16-bit offsets."""

    __slots__ = ("values",)
    kind = "array"

    def __init__(self, values: tuple[int, ...]):
        self.values = values

    def cardinality(self) -> int:
        return len(self.values)


class _BitmapChunk:
    """Dense chunk: one 65,536-bit integer."""

    __slots__ = ("mask", "card")
    kind = "bitmap"

    def __init__(self, mask: int, card: int):
        self.mask = mask
        self.card = card

    def cardinality(self) -> int:
        return self.card


class _RunChunk:
    """Run-length chunk: sorted disjoint ``(start, length)`` intervals."""

    __slots__ = ("runs", "starts", "card")
    kind = "run"

    def __init__(self, runs: tuple[tuple[int, int], ...]):
        self.runs = runs
        self.starts = tuple(start for start, _length in runs)
        self.card = sum(length for _start, length in runs)

    def cardinality(self) -> int:
        return self.card

    def contains(self, value: int) -> bool:
        idx = bisect_right(self.starts, value) - 1
        if idx < 0:
            return False
        start, length = self.runs[idx]
        return value < start + length


_Chunk = _ArrayChunk | _BitmapChunk | _RunChunk


# ----------------------------------------------------------------------
# Chunk construction / conversion
# ----------------------------------------------------------------------


def _mask_from_sorted(values) -> int:
    buf = bytearray(CHUNK_SIZE // 8)
    for v in values:
        buf[v >> 3] |= 1 << (v & 7)
    return int.from_bytes(buf, "little")


def _values_from_mask(mask: int) -> tuple[int, ...]:
    out = []
    append = out.append
    while mask:
        low = mask & -mask
        append(low.bit_length() - 1)
        mask ^= low
    return tuple(out)


def _chunk_from_sorted(values: tuple[int, ...]) -> _Chunk:
    """Array or bitmap, by the cardinality threshold."""
    if len(values) <= ARRAY_MAX_CARD:
        return _ArrayChunk(values)
    return _BitmapChunk(_mask_from_sorted(values), len(values))


def _chunk_from_mask(mask: int, card: int | None = None) -> _Chunk:
    if card is None:
        card = mask.bit_count()
    if card <= ARRAY_MAX_CARD:
        return _ArrayChunk(_values_from_mask(mask))
    return _BitmapChunk(mask, card)


def _chunk_mask(chunk: _Chunk) -> int:
    if type(chunk) is _BitmapChunk:
        return chunk.mask
    if type(chunk) is _ArrayChunk:
        return _mask_from_sorted(chunk.values)
    mask = 0
    for start, length in chunk.runs:
        mask |= ((1 << length) - 1) << start
    return mask


def _chunk_values(chunk: _Chunk) -> tuple[int, ...]:
    """The chunk's offsets, sorted ascending."""
    if type(chunk) is _ArrayChunk:
        return chunk.values
    if type(chunk) is _BitmapChunk:
        return _values_from_mask(chunk.mask)
    out = []
    for start, length in chunk.runs:
        out.extend(range(start, start + length))
    return tuple(out)


def _runs_from_sorted(values) -> tuple[tuple[int, int], ...]:
    """Maximal runs of consecutive offsets."""
    runs = []
    run_start = None
    prev = None
    for v in values:
        if run_start is None:
            run_start = prev = v
        elif v == prev + 1:
            prev = v
        else:
            runs.append((run_start, prev - run_start + 1))
            run_start = prev = v
    if run_start is not None:
        runs.append((run_start, prev - run_start + 1))
    return tuple(runs)


def _optimize_chunk(chunk: _Chunk) -> _Chunk:
    """Convert to a run chunk when run encoding compresses enough."""
    if type(chunk) is _RunChunk:
        return chunk
    values = _chunk_values(chunk)
    if not values:
        return chunk
    runs = _runs_from_sorted(values)
    if len(runs) * RUN_COMPRESSION_FACTOR <= len(values):
        return _RunChunk(runs)
    return chunk


# ----------------------------------------------------------------------
# Chunk set algebra
# ----------------------------------------------------------------------


def _intersect_sorted(a: tuple[int, ...], b: tuple[int, ...]) -> tuple[int, ...]:
    """Sorted intersection of two sorted offset tuples.

    Module-level on purpose: the harness-sensitivity tests monkeypatch
    this seam with an off-by-one to prove the three-way fuzzer notices.
    """
    if len(a) > len(b):
        a, b = b, a
    b_set = set(b)
    return tuple(v for v in a if v in b_set)


def _chunk_and(a: _Chunk, b: _Chunk) -> _Chunk | None:
    """Intersection; None when empty (caller drops the chunk)."""
    ta, tb = type(a), type(b)
    if ta is _ArrayChunk and tb is _ArrayChunk:
        values = _intersect_sorted(a.values, b.values)
        return _ArrayChunk(values) if values else None
    if ta is _BitmapChunk and tb is _BitmapChunk:
        mask = a.mask & b.mask
        return _chunk_from_mask(mask) if mask else None
    if ta is _ArrayChunk and tb is _BitmapChunk:
        mask = b.mask
        values = tuple(v for v in a.values if (mask >> v) & 1)
        return _ArrayChunk(values) if values else None
    if ta is _BitmapChunk and tb is _ArrayChunk:
        return _chunk_and(b, a)
    if ta is _ArrayChunk and tb is _RunChunk:
        values = tuple(v for v in a.values if b.contains(v))
        return _ArrayChunk(values) if values else None
    if tb is _ArrayChunk:  # run ∩ array
        return _chunk_and(b, a)
    # At least one run against a bitmap or another run: go through masks.
    mask = _chunk_mask(a) & _chunk_mask(b)
    return _chunk_from_mask(mask) if mask else None


def _chunk_or(a: _Chunk, b: _Chunk) -> _Chunk:
    ta, tb = type(a), type(b)
    if ta is _ArrayChunk and tb is _ArrayChunk:
        if len(a.values) + len(b.values) <= ARRAY_MAX_CARD:
            return _ArrayChunk(tuple(sorted(set(a.values) | set(b.values))))
        return _chunk_from_mask(_mask_from_sorted(a.values) | _mask_from_sorted(b.values))
    mask = _chunk_mask(a) | _chunk_mask(b)
    return _chunk_from_mask(mask)


def _chunk_andnot(a: _Chunk, b: _Chunk) -> _Chunk | None:
    """a minus b; None when empty."""
    ta, tb = type(a), type(b)
    if ta is _ArrayChunk and tb is _ArrayChunk:
        b_set = set(b.values)
        values = tuple(v for v in a.values if v not in b_set)
        return _ArrayChunk(values) if values else None
    if ta is _ArrayChunk and tb is _BitmapChunk:
        mask = b.mask
        values = tuple(v for v in a.values if not ((mask >> v) & 1))
        return _ArrayChunk(values) if values else None
    if ta is _ArrayChunk and tb is _RunChunk:
        values = tuple(v for v in a.values if not b.contains(v))
        return _ArrayChunk(values) if values else None
    mask = _chunk_mask(a) & ~_chunk_mask(b)
    return _chunk_from_mask(mask) if mask else None


def _chunk_contains(chunk: _Chunk, value: int) -> bool:
    t = type(chunk)
    if t is _ArrayChunk:
        idx = bisect_left(chunk.values, value)
        return idx < len(chunk.values) and chunk.values[idx] == value
    if t is _BitmapChunk:
        return bool((chunk.mask >> value) & 1)
    return chunk.contains(value)


# ----------------------------------------------------------------------
# The top-level bitmap
# ----------------------------------------------------------------------


class RoaringBitmap:
    """A compressed set of non-negative ints, chunked by high bits."""

    __slots__ = ("_chunks", "_card")

    def __init__(self, chunks: dict[int, _Chunk] | None = None):
        self._chunks: dict[int, _Chunk] = chunks if chunks is not None else {}
        self._card: int | None = None

    # -- construction ------------------------------------------------------

    @classmethod
    def from_ids(cls, ids: Iterable[int]) -> "RoaringBitmap":
        """Build from any iterable of non-negative ints.

        One C-level sort then chunk slicing by bisect — measurably
        faster than per-id set insertion at posting-list sizes.
        """
        ordered = sorted(set(ids))
        chunks: dict[int, _Chunk] = {}
        start = 0
        n = len(ordered)
        while start < n:
            high = ordered[start] >> CHUNK_BITS
            stop = bisect_right(ordered, ((high + 1) << CHUNK_BITS) - 1, start)
            base = high << CHUNK_BITS
            chunks[high] = _chunk_from_sorted(
                tuple(v - base for v in ordered[start:stop])
            )
            start = stop
        return cls(chunks)

    @classmethod
    def empty(cls) -> "RoaringBitmap":
        return cls({})

    # -- inspection --------------------------------------------------------

    def cardinality(self) -> int:
        if self._card is None:
            self._card = sum(c.cardinality() for c in self._chunks.values())
        return self._card

    def __len__(self) -> int:
        return self.cardinality()

    def __bool__(self) -> bool:
        return bool(self._chunks)

    def __contains__(self, idx: int) -> bool:
        chunk = self._chunks.get(idx >> CHUNK_BITS)
        return chunk is not None and _chunk_contains(chunk, idx & _LOW_MASK)

    def iter_ids(self) -> Iterator[int]:
        """Yield member ids in ascending order."""
        for high in sorted(self._chunks):
            base = high << CHUNK_BITS
            for v in _chunk_values(self._chunks[high]):
                yield base + v

    def to_set(self) -> set[int]:
        return set(self.iter_ids())

    def chunk_kinds(self) -> dict[int, str]:
        """{chunk high bits: "array" | "bitmap" | "run"} (for tests)."""
        return {high: chunk.kind for high, chunk in self._chunks.items()}

    # -- set algebra -------------------------------------------------------

    def __and__(self, other: "RoaringBitmap") -> "RoaringBitmap":
        a, b = self._chunks, other._chunks
        if len(a) > len(b):
            a, b = b, a
        out: dict[int, _Chunk] = {}
        for high, chunk in a.items():
            other_chunk = b.get(high)
            if other_chunk is None:
                continue
            merged = _chunk_and(chunk, other_chunk)
            if merged is not None:
                out[high] = merged
        return RoaringBitmap(out)

    def __or__(self, other: "RoaringBitmap") -> "RoaringBitmap":
        out = dict(self._chunks)
        for high, chunk in other._chunks.items():
            mine = out.get(high)
            out[high] = chunk if mine is None else _chunk_or(mine, chunk)
        return RoaringBitmap(out)

    def andnot(self, other: "RoaringBitmap") -> "RoaringBitmap":
        """Set difference ``self - other``."""
        out: dict[int, _Chunk] = {}
        other_chunks = other._chunks
        for high, chunk in self._chunks.items():
            theirs = other_chunks.get(high)
            if theirs is None:
                out[high] = chunk
                continue
            merged = _chunk_andnot(chunk, theirs)
            if merged is not None:
                out[high] = merged
        return RoaringBitmap(out)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RoaringBitmap):
            return NotImplemented
        a, b = self._chunks, other._chunks
        if a.keys() != b.keys():
            return False
        for high, chunk in a.items():
            theirs = b[high]
            if chunk.cardinality() != theirs.cardinality():
                return False
            if type(chunk) is type(theirs):
                if type(chunk) is _ArrayChunk and chunk.values != theirs.values:
                    return False
                if type(chunk) is _BitmapChunk and chunk.mask != theirs.mask:
                    return False
                if type(chunk) is _RunChunk and chunk.runs != theirs.runs:
                    return False
            elif _chunk_mask(chunk) != _chunk_mask(theirs):
                return False
        return True

    def __hash__(self):  # pragma: no cover - mutability guard
        raise TypeError("RoaringBitmap is unhashable")

    # -- representation tuning --------------------------------------------

    def run_optimize(self) -> "RoaringBitmap":
        """Re-encode run-heavy chunks as run containers (in place)."""
        chunks = self._chunks
        for high, chunk in chunks.items():
            optimized = _optimize_chunk(chunk)
            if optimized is not chunk:
                chunks[high] = optimized
        return self

    def __repr__(self) -> str:
        kinds = sorted(self.chunk_kinds().values())
        return (
            f"<RoaringBitmap card={self.cardinality()} "
            f"chunks={len(self._chunks)} kinds={kinds}>"
        )
