"""A monotonic intern table mapping hashable nodes to dense small ints.

Interned ids are assigned in first-seen order and are never reused or
reassigned, so any bitmask built against the table stays valid for the
table's whole lifetime — growing the corpus only appends ids.  This is
the property that lets the query layer cache extents as plain ints and
invalidate purely on the graph's mutation version.
"""

from __future__ import annotations

import threading
from typing import Hashable, Iterable

from .bitset import bits_from_ids, iter_ids

__all__ = ["InternTable"]


class InternTable:
    """Bidirectional ``node ↔ int`` mapping with monotonic ids."""

    __slots__ = ("_id_of", "_node_at", "_lock")

    def __init__(self):
        self._id_of: dict[Hashable, int] = {}
        self._node_at: list[Hashable] = []
        self._lock = threading.Lock()

    def intern(self, node: Hashable) -> int:
        """The node's id, minting a fresh one on first sight.

        Double-checked: the lock-free fast path serves the read-mostly
        steady state; minting takes the lock so two threads first seeing
        the same node cannot assign it two ids (which would silently
        split its extent bits).  The list append happens before the dict
        publish so a concurrent ``node_at`` on a freshly read id cannot
        observe a hole.
        """
        idx = self._id_of.get(node)
        if idx is None:
            with self._lock:
                idx = self._id_of.get(node)
                if idx is None:
                    idx = len(self._node_at)
                    self._node_at.append(node)
                    self._id_of[node] = idx
        return idx

    def id_of(self, node: Hashable) -> int | None:
        """The node's id without minting; None when never interned."""
        return self._id_of.get(node)

    def node_at(self, idx: int) -> Hashable:
        """The node carrying an id (raises IndexError for unknown ids)."""
        return self._node_at[idx]

    def __len__(self) -> int:
        return len(self._node_at)

    def __contains__(self, node: Hashable) -> bool:
        return node in self._id_of

    # ------------------------------------------------------------------
    # Bitmask bridging
    # ------------------------------------------------------------------

    def bits_of(self, nodes: Iterable[Hashable]) -> int:
        """A bitmask over the nodes' ids (minting ids as needed)."""
        intern = self.intern
        return bits_from_ids(intern(node) for node in nodes)

    def nodes_of(self, mask: int) -> set:
        """The set of nodes whose ids are set in ``mask``."""
        node_at = self._node_at
        return {node_at[idx] for idx in iter_ids(mask)}

    def __repr__(self) -> str:
        return f"<InternTable size={len(self._node_at)}>"
