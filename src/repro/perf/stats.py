"""Counters that make cache and index-maintenance behaviour observable.

These are deliberately dumb mutable records: hot paths bump plain int
attributes, and tests/benchmarks read them to prove a cache actually hit
or an index update actually stayed incremental.

:class:`CacheStats` additionally offers ``record_*`` increments guarded
by a lock: a frozen workspace is read concurrently by many sessions, and
`x += 1` on a shared counter is a read-modify-write that loses updates
under races.  The concurrency stress tests assert exact counts, so the
shared-cache call sites use the locked path.
"""

from __future__ import annotations

import threading

__all__ = ["CacheStats", "IndexMaintenanceStats"]


class CacheStats:
    """Hit/miss/invalidation counters for a versioned cache."""

    __slots__ = ("hits", "misses", "invalidations", "_lock")

    def __init__(self):
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self._lock = threading.Lock()

    def record_hit(self) -> None:
        """Atomically count a hit (safe under concurrent readers)."""
        with self._lock:
            self.hits += 1

    def record_miss(self) -> None:
        """Atomically count a miss."""
        with self._lock:
            self.misses += 1

    def record_invalidation(self) -> None:
        """Atomically count an invalidation."""
        with self._lock:
            self.invalidations += 1

    def reset(self) -> None:
        with self._lock:
            self.hits = 0
            self.misses = 0
            self.invalidations = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        total = self.lookups
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
        }

    def __repr__(self) -> str:
        return (
            f"<CacheStats hits={self.hits} misses={self.misses} "
            f"invalidations={self.invalidations}>"
        )


class IndexMaintenanceStats:
    """How a refreshable index has been kept up to date."""

    __slots__ = ("full_rebuilds", "incremental_updates", "items_reindexed")

    def __init__(self):
        self.full_rebuilds = 0
        self.incremental_updates = 0
        self.items_reindexed = 0

    def reset(self) -> None:
        self.full_rebuilds = 0
        self.incremental_updates = 0
        self.items_reindexed = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "full_rebuilds": self.full_rebuilds,
            "incremental_updates": self.incremental_updates,
            "items_reindexed": self.items_reindexed,
        }

    def __repr__(self) -> str:
        return (
            f"<IndexMaintenanceStats full={self.full_rebuilds} "
            f"incremental={self.incremental_updates} "
            f"reindexed={self.items_reindexed}>"
        )
