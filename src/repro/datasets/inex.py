"""A synthetic INEX-style XML retrieval collection (§6.2).

The INitiative for the Evaluation of XML retrieval supplies search
topics of two kinds over an IEEE article corpus:

* **CO** (content-only) topics — plain keyword needs such as
  "software cost estimation";
* **CAS** (content-and-structure) topics — needs that constrain the XML
  structure, the paper's example being "Vitae of graduate students
  researching Information Retrieval".

The real corpus is licensed, so this module generates an XML collection
with the same moving parts — front matter with authors (name, role,
research interest), keywords, titles, and body sections — and, because
the documents are generated, **exact relevance sets per topic**.  §6.2's
evaluation question ("did the engine have the flexibility to retrieve
the documents needed?") becomes directly measurable.
"""

from __future__ import annotations

import random
from typing import Sequence

from ..rdf.graph import Graph
from ..rdf.namespace import Namespace
from ..rdf.terms import Resource
from ..rdf.xml2rdf import XmlImportResult, paths_as_compositions, xml_to_graph
from .base import Corpus

__all__ = ["InexTopic", "CO_TOPICS", "build_corpus"]

BASE_URI = "http://repro.example/inex/"

#: (topic id, title, distinctive keyword trio)
CO_TOPICS: list[tuple[str, str, list[str]]] = [
    ("co-1", "software cost estimation", ["software", "cost", "estimation"]),
    ("co-2", "wavelet image compression", ["wavelet", "image", "compression"]),
    ("co-3", "distributed consensus protocols", ["distributed", "consensus", "protocols"]),
    ("co-4", "speech recognition acoustics", ["speech", "recognition", "acoustics"]),
    ("co-5", "query optimization joins", ["query", "optimization", "joins"]),
]

_FILLER_TOPICS = [
    ["compiler", "register", "allocation"],
    ["network", "routing", "latency"],
    ["graphics", "rendering", "shadows"],
    ["security", "encryption", "keys"],
    ["storage", "caching", "locality"],
    ["learning", "classifiers", "features"],
]

_ROLES = ["graduate student", "professor", "postdoc", "research staff"]
_INTERESTS = [
    "information retrieval", "operating systems", "machine learning",
    "computational biology", "computer architecture",
]
_NAMES = [
    "J. Alvarez", "M. Kumar", "S. Park", "L. Fischer", "A. Osei",
    "T. Nakamura", "R. Costa", "E. Johansson", "D. Petrov", "N. Haddad",
]


class InexTopic:
    """One evaluation topic with its exact relevance set."""

    KIND_CO = "CO"
    KIND_CAS = "CAS"

    def __init__(
        self,
        topic_id: str,
        kind: str,
        title: str,
        keywords: list[str],
        structure: list[tuple[tuple[str, ...], str]],
        relevant: set[Resource],
    ):
        self.topic_id = topic_id
        self.kind = kind
        self.title = title
        #: content terms (both kinds)
        self.keywords = keywords
        #: structural constraints: (property local-name path, value text)
        self.structure = structure
        #: ground truth: document roots that satisfy the need
        self.relevant = relevant

    def __repr__(self) -> str:
        return (
            f"<InexTopic {self.topic_id} [{self.kind}] {self.title!r} "
            f"rel={len(self.relevant)}>"
        )


def _article_xml(
    rng: random.Random,
    title_words: Sequence[str],
    body_words: Sequence[str],
    authors: Sequence[tuple[str, str, str]],
    keywords: Sequence[str],
    doc_kind: str = "article",
) -> str:
    def _para(words: Sequence[str]) -> str:
        chosen = [rng.choice(list(words)) for _ in range(rng.randint(12, 24))]
        return " ".join(chosen)

    author_xml = "".join(
        f"<au><nm>{name}</nm><role>{role}</role>"
        f"<interest>{interest}</interest></au>"
        for name, role, interest in authors
    )
    keyword_xml = "".join(f"<kwd>{k}</kwd>" for k in keywords)
    sections = "".join(
        f"<sec><st>section {i}</st><p>{_para(body_words)}</p></sec>"
        for i in range(1, rng.randint(2, 4))
    )
    return (
        f"<article><fm><ty>{doc_kind}</ty>"
        f"<ti>{' '.join(title_words)}</ti>"
        f"{author_xml}{keyword_xml}</fm>"
        f"<bdy>{sections}</bdy></article>"
    )


def build_corpus(
    seed: int = 19,
    relevant_per_co_topic: int = 6,
    n_filler: int = 80,
    with_path_compositions: bool = False,
) -> Corpus:
    """Generate the XML collection and its topics.

    ``with_path_compositions`` applies the §6.2 fix — registering the
    observed XML paths as composition annotations — so the ablation
    bench can compare Magnet's default (graph-general, single-step)
    behaviour against the tree-aware variant.

    ``extras['topics']`` maps topic id → :class:`InexTopic`;
    ``extras['doc_roots']`` lists every article root.
    """
    rng = random.Random(seed)
    graph = Graph()
    ns = Namespace(BASE_URI)
    doc_roots: list[Resource] = []
    topics: dict[str, InexTopic] = {}
    doc_counter = [0]
    last_result: list[XmlImportResult] = []

    def _import(xml: str) -> Resource:
        doc_counter[0] += 1
        result = xml_to_graph(
            xml, BASE_URI, doc_id=f"a{doc_counter[0]:04d}", graph=graph
        )
        last_result.append(result)
        doc_roots.append(result.root)
        return result.root

    def _random_authors(force: tuple[str, str] | None = None) -> list:
        authors = []
        for _ in range(rng.randint(1, 3)):
            authors.append(
                (rng.choice(_NAMES), rng.choice(_ROLES), rng.choice(_INTERESTS))
            )
        if force is not None:
            role, interest = force
            authors[0] = (rng.choice(_NAMES), role, interest)
        return authors

    # CO topics: seed relevant documents with the keyword trio.
    for topic_id, title, trio in CO_TOPICS:
        relevant: set[Resource] = set()
        for _ in range(relevant_per_co_topic):
            root = _import(
                _article_xml(
                    rng,
                    title_words=trio + ["methods"],
                    body_words=trio + ["evaluation", "approach", "results"],
                    authors=_random_authors(),
                    keywords=trio,
                )
            )
            relevant.add(root)
        topics[topic_id] = InexTopic(
            topic_id, InexTopic.KIND_CO, title, trio, [], relevant
        )

    # The CAS topic of §6.2: vitae of graduate students researching IR.
    cas_relevant: set[Resource] = set()
    for _ in range(5):
        root = _import(
            _article_xml(
                rng,
                title_words=["curriculum", "vitae"],
                body_words=["research", "teaching", "publications", "service"],
                authors=_random_authors(
                    force=("graduate student", "information retrieval")
                ),
                keywords=["vitae"],
                doc_kind="vita",
            )
        )
        cas_relevant.add(root)
    # Distractor vitae: wrong role or wrong interest.
    for role, interest in [
        ("professor", "information retrieval"),
        ("graduate student", "operating systems"),
        ("postdoc", "machine learning"),
        ("professor", "computer architecture"),
    ]:
        _import(
            _article_xml(
                rng,
                title_words=["curriculum", "vitae"],
                body_words=["research", "teaching", "publications"],
                authors=[(rng.choice(_NAMES), role, interest)],
                keywords=["vitae"],
                doc_kind="vita",
            )
        )
    topics["cas-1"] = InexTopic(
        "cas-1",
        InexTopic.KIND_CAS,
        "Vitae of graduate students researching Information Retrieval",
        ["vitae"],
        [
            (("fm", "au", "role"), "graduate student"),
            (("fm", "au", "interest"), "information retrieval"),
            (("fm", "ty"), "vita"),
        ],
        cas_relevant,
    )

    # Filler articles on unrelated themes.
    for _ in range(n_filler):
        theme = rng.choice(_FILLER_TOPICS)
        _import(
            _article_xml(
                rng,
                title_words=theme,
                body_words=theme + ["study", "design", "analysis"],
                authors=_random_authors(),
                keywords=theme[:2],
            )
        )

    if with_path_compositions:
        merged = XmlImportResult(graph, doc_roots[0], sum(
            (r.paths for r in last_result), start=type(last_result[0].paths)()
        ))
        paths_as_compositions(merged, min_count=2, max_length=3)

    extras = {
        "topics": topics,
        "doc_roots": list(doc_roots),
        "with_path_compositions": with_path_compositions,
    }
    return Corpus("inex", graph, ns, list(doc_roots), extras)
