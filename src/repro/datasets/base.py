"""Shared dataset plumbing: the Corpus container and helpers."""

from __future__ import annotations

from ..rdf.graph import Graph
from ..rdf.namespace import Namespace
from ..rdf.schema import Schema
from ..rdf.terms import Node, Resource

__all__ = ["Corpus"]


class Corpus:
    """A generated dataset: graph, schema view, namespace, and items.

    ``extras`` carries dataset-specific handles (facet-value resources,
    ground-truth relevance for INEX topics, the walnut recipe of the
    user study, ...) so benchmarks and tests need no URI spelunking.
    """

    def __init__(
        self,
        name: str,
        graph: Graph,
        ns: Namespace,
        items: list[Node],
        extras: dict | None = None,
    ):
        self.name = name
        self.graph = graph
        self.ns = ns
        self.items = items
        self.schema = Schema(graph)
        self.extras = extras if extras is not None else {}

    def property(self, local_name: str) -> Resource:
        """A dataset property by local name (under the corpus namespace)."""
        return self.ns[local_name]

    def __repr__(self) -> str:
        return (
            f"<Corpus {self.name!r}: {len(self.items)} items, "
            f"{len(self.graph)} triples>"
        )
