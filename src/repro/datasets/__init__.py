"""Synthetic stand-ins for every corpus the paper evaluates on (§6).

| module     | paper corpus                               |
|------------|--------------------------------------------|
| `recipes`  | Epicurious.com (6,444 recipes, 244 ingredients) |
| `states`   | 50states.com CSV                           |
| `factbook` | CIA World Factbook RDF                     |
| `inbox`    | the system's own Inbox (e-mails + news)    |
| `ocw`      | MIT OpenCourseWare RDF conversion          |
| `artstor`  | ArtSTOR RDF conversion                     |
| `inex`     | INEX XML topics (CO + CAS)                 |
"""

from . import artstor, factbook, inbox, inex, linked, ocw, recipes, scaled, states
from .base import Corpus

__all__ = [
    "Corpus",
    "artstor",
    "factbook",
    "inbox",
    "inex",
    "linked",
    "ocw",
    "recipes",
    "scaled",
    "states",
]
