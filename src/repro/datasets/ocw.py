"""An OpenCourseWare-style course dataset (§6.1).

The paper used an independent RDF conversion of MIT OCW that "did have
label and attribute-value annotations, allowing Magnet to present easy
to understand navigation suggestions", but also surfaced attributes that
"were not human-readable ... algorithmically significant for refining
[but] not deemed important for end-user navigation", which custom
annotations can hide.

This generator reproduces both behaviours: readable facets (department,
level, semester, instructor) and an opaque ``exportChecksum`` property
that is statistically significant yet meaningless to users — hideable
via ``magnet:hidden``.
"""

from __future__ import annotations

import random

from ..rdf.graph import Graph
from ..rdf.namespace import Namespace
from ..rdf.schema import Schema, ValueType
from ..rdf.terms import Literal, Resource
from ..rdf.vocab import RDF
from .base import Corpus
from .text import sentences

__all__ = ["build_corpus", "DEPARTMENTS"]

NS = Namespace("http://repro.example/ocw/")

DEPARTMENTS = [
    ("Electrical Engineering and Computer Science", "6"),
    ("Mathematics", "18"),
    ("Physics", "8"),
    ("Biology", "7"),
    ("Economics", "14"),
    ("Linguistics", "24"),
]

_LEVELS = ["Undergraduate", "Graduate"]
_SEMESTERS = ["Fall 2002", "Spring 2003", "Fall 2003", "Spring 2004"]

_SUBJECTS = [
    "algorithms", "circuits", "databases", "networks", "mechanics",
    "genetics", "optimization", "probability", "syntax", "markets",
    "topology", "signals", "thermodynamics", "automata", "statistics",
]

_INSTRUCTORS = [
    "Prof. Rivera", "Prof. Okafor", "Prof. Lindgren", "Prof. Watanabe",
    "Prof. Haddad", "Prof. Kowalski", "Prof. Mbeki", "Prof. Duval",
]


def build_corpus(
    n_courses: int = 120, seed: int = 13, hide_internal: bool = False
) -> Corpus:
    """Generate the course graph.

    ``hide_internal=True`` applies the §6.1 custom annotation hiding the
    non-human-readable ``exportChecksum`` attribute from suggestions.
    """
    rng = random.Random(seed)
    graph = Graph()
    schema = Schema(graph)

    course_type = NS["type/Course"]
    p_department = NS["property/department"]
    p_number = NS["property/courseNumber"]
    p_level = NS["property/level"]
    p_semester = NS["property/semester"]
    p_instructor = NS["property/instructor"]
    p_title = NS["property/title"]
    p_description = NS["property/description"]
    p_units = NS["property/units"]
    p_checksum = NS["property/exportChecksum"]

    schema.set_label(course_type, "Course")
    for prop, label in [
        (p_department, "department"), (p_number, "course number"),
        (p_level, "level"), (p_semester, "semester"),
        (p_instructor, "instructor"), (p_title, "title"),
        (p_description, "description"), (p_units, "units"),
    ]:
        schema.set_label(prop, label)
    # exportChecksum deliberately gets NO label: it renders as a raw
    # identifier, the §6.1 "not human-readable" case.
    schema.set_value_type(p_title, ValueType.TEXT)
    schema.set_value_type(p_description, ValueType.TEXT)
    schema.set_value_type(p_units, ValueType.INTEGER)
    if hide_internal:
        schema.hide_property(p_checksum)

    items: list[Resource] = []
    for index in range(1, n_courses + 1):
        dept_name, dept_prefix = rng.choice(DEPARTMENTS)
        course = NS[f"course/c{index:04d}"]
        graph.add(course, RDF.type, course_type)
        number = f"{dept_prefix}.{rng.randint(1, 899):03d}"
        subject = rng.choice(_SUBJECTS)
        title = f"Introduction to {subject.capitalize()}"
        graph.add(course, p_department, Literal(dept_name))
        graph.add(course, p_number, Literal(number))
        graph.add(course, p_level, Literal(rng.choice(_LEVELS)))
        graph.add(course, p_semester, Literal(rng.choice(_SEMESTERS)))
        graph.add(course, p_instructor, Literal(rng.choice(_INSTRUCTORS)))
        graph.add(course, p_title, Literal(title))
        graph.add(
            course,
            p_description,
            Literal(sentences(rng, [subject, "course", "problem", "set"])),
        )
        graph.add(course, p_units, Literal(rng.choice([6, 9, 12])))
        # Opaque batch identifier shared by export runs: statistically a
        # great refiner, humanly meaningless.
        graph.add(
            course, p_checksum, Literal(f"0x{rng.randrange(16**6):06x}"[:6])
        )
        schema.set_label(course, f"{number} {title}")
        items.append(course)

    extras = {
        "properties": {
            "department": p_department,
            "courseNumber": p_number,
            "level": p_level,
            "semester": p_semester,
            "instructor": p_instructor,
            "title": p_title,
            "description": p_description,
            "units": p_units,
            "exportChecksum": p_checksum,
        },
        "course_type": course_type,
        "hide_internal": hide_internal,
    }
    return Corpus("ocw", graph, NS, items, extras)
