"""The system-generated Inbox dataset (§6.1, Figures 5 & 6).

"We used the system on a collection of e-mails in the system's Inbox.
Magnet suggested refining by the document type since the inbox contains
messages as well as news items from subscription services.  The system
also used the annotation that body is an important property to compose
with a second level of attributes and suggested refining by the type,
content, creator and date on the body.  Additionally, the system
provided a range control to refine by the sent dates of items."

The generator therefore produces:

* items of two types — ``Message`` and ``NewsItem``;
* a ``body`` property pointing at Body resources that carry their own
  ``type`` / ``content`` / ``creator`` / ``date``, plus the
  ``magnet:importantProperty`` annotation on ``body`` so the
  important-property expansion derives exactly those compositions;
* ``sentDate`` datetime literals spanning mid-2003 (the paper's
  Thu July 31 / Fri August 1 example dates included) for the Figure 5
  range control;
* senders as Person resources with names and organizations.
"""

from __future__ import annotations

import datetime as dt
import random

from ..rdf.graph import Graph
from ..rdf.namespace import Namespace
from ..rdf.schema import Schema, ValueType
from ..rdf.terms import Literal, Resource
from ..rdf.vocab import RDF
from .base import Corpus

__all__ = ["build_corpus", "TOPICS"]

NS = Namespace("http://repro.example/inbox/")

TOPICS = [
    "databases", "retrieval", "semantics", "scheduling", "budget",
    "hiring", "conference", "deadlines", "seminar", "release",
]

_PEOPLE = [
    ("Alice Chen", "MIT CSAIL"),
    ("Bob Ortiz", "MIT CSAIL"),
    ("Carol Singh", "W3C"),
    ("Dan Novak", "Packard Foundation"),
    ("Eve Tanaka", "MIT Libraries"),
    ("Frank Moreau", "NTT"),
]

_FEEDS = [
    ("ACM TechNews", "ACM"),
    ("Daily Science Wire", "Science Wire"),
    ("Campus Events Digest", "MIT Events"),
]


def build_corpus(
    n_messages: int = 80, n_news: int = 40, seed: int = 11
) -> Corpus:
    """Generate the inbox graph.

    ``extras['paper_dates']`` holds the two e-mails sent a day apart
    (Thu July 31 / Fri Aug 1, 2003) used by §5.4's similarity example.
    """
    rng = random.Random(seed)
    graph = Graph()
    schema = Schema(graph)

    message_type = NS["type/Message"]
    news_type = NS["type/NewsItem"]
    body_type = NS["type/Body"]
    person_type = NS["type/Person"]
    p_subject = NS["property/subject"]
    p_sent = NS["property/sentDate"]
    p_from = NS["property/from"]
    p_body = NS["property/body"]
    p_topic = NS["property/topic"]
    p_name = NS["property/name"]
    p_org = NS["property/organization"]
    # Body-level attributes (the second level Figure 6 surfaces).
    p_b_type = NS["property/bodyType"]
    p_b_content = NS["property/content"]
    p_b_creator = NS["property/creator"]
    p_b_date = NS["property/date"]

    for node, label in [
        (message_type, "Message"), (news_type, "News Item"),
        (body_type, "Body"), (person_type, "Person"),
        (p_subject, "subject"), (p_sent, "sent date"), (p_from, "from"),
        (p_body, "body"), (p_topic, "topic"), (p_name, "name"),
        (p_org, "organization"), (p_b_type, "type"),
        (p_b_content, "content"), (p_b_creator, "creator"),
        (p_b_date, "date"),
    ]:
        schema.set_label(node, label)
    schema.set_value_type(p_subject, ValueType.TEXT)
    schema.set_value_type(p_sent, ValueType.DATETIME)
    schema.set_value_type(p_b_date, ValueType.DATE)
    # The §6.1 annotation: compose one more level through `body`.
    schema.mark_important(p_body)

    people: list[Resource] = []
    for name, org in _PEOPLE:
        person = NS[f"person/{name.lower().replace(' ', '-')}"]
        graph.add(person, RDF.type, person_type)
        graph.add(person, p_name, Literal(name))
        graph.add(person, p_org, Literal(org))
        schema.set_label(person, name)
        people.append(person)
    feeds: list[Resource] = []
    for name, org in _FEEDS:
        feed = NS[f"feed/{name.lower().replace(' ', '-')}"]
        graph.add(feed, RDF.type, person_type)
        graph.add(feed, p_name, Literal(name))
        graph.add(feed, p_org, Literal(org))
        schema.set_label(feed, name)
        feeds.append(feed)

    start = dt.datetime(2003, 6, 1, 8, 0, 0)
    items: list[Resource] = []
    body_counter = [0]

    def _add_body(item: Resource, kind: str, creator: Resource,
                  topic: str, when: dt.datetime) -> None:
        body_counter[0] += 1
        body = NS[f"body/b{body_counter[0]:04d}"]
        graph.add(body, RDF.type, body_type)
        graph.add(item, p_body, body)
        graph.add(body, p_b_type, Literal(kind))
        graph.add(body, p_b_content, Literal(topic))
        graph.add(body, p_b_creator, creator)
        graph.add(body, p_b_date, Literal(when.date()))

    def _mint(kind: str, index: int, when: dt.datetime,
              sender: Resource, topic: str) -> Resource:
        item = NS[f"item/{kind.lower()}-{index:04d}"]
        graph.add(
            item, RDF.type, message_type if kind == "msg" else news_type
        )
        graph.add(item, p_from, sender)
        graph.add(item, p_sent, Literal(when))
        graph.add(item, p_topic, Literal(topic))
        subject = f"{topic} {'update' if kind == 'msg' else 'digest'}"
        graph.add(item, p_subject, Literal(subject))
        schema.set_label(item, subject)
        body_kind = "plain text" if kind == "msg" else "html"
        _add_body(item, body_kind, sender, topic, when)
        return item

    # The §5.4 pair: e-mails sent Thu July 31 and Fri August 1, 2003.
    paper_dates = []
    for index, when in enumerate(
        [dt.datetime(2003, 7, 31, 14, 5), dt.datetime(2003, 8, 1, 9, 40)]
    ):
        item = _mint("msg", index + 1, when, people[0], "deadlines")
        items.append(item)
        paper_dates.append(item)

    for index in range(3, n_messages + 1):
        when = start + dt.timedelta(
            days=rng.randint(0, 89),
            hours=rng.randint(0, 12),
            minutes=rng.randint(0, 59),
        )
        items.append(
            _mint("msg", index, when, rng.choice(people), rng.choice(TOPICS))
        )
    for index in range(1, n_news + 1):
        when = start + dt.timedelta(
            days=rng.randint(0, 89), hours=rng.randint(0, 23)
        )
        items.append(
            _mint("news", index, when, rng.choice(feeds), rng.choice(TOPICS))
        )

    extras = {
        "properties": {
            "subject": p_subject,
            "sentDate": p_sent,
            "from": p_from,
            "body": p_body,
            "topic": p_topic,
            "bodyType": p_b_type,
            "content": p_b_content,
            "creator": p_b_creator,
            "date": p_b_date,
        },
        "types": {
            "Message": message_type,
            "NewsItem": news_type,
            "Body": body_type,
            "Person": person_type,
        },
        "people": people,
        "feeds": feeds,
        "paper_dates": paper_dates,
    }
    return Corpus("inbox", graph, NS, items, extras)
