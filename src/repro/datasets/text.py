"""Deterministic filler-prose generation for dataset bodies.

Bodies must look like real prose to the text pipeline — mixed common
words (which tf.idf learns to ignore) plus topical words (which become
discriminating coordinates) — while staying fully reproducible from a
seed.
"""

from __future__ import annotations

import random
from typing import Sequence

__all__ = ["COMMON_WORDS", "sentences", "title_case"]

COMMON_WORDS = (
    "place heat time serve combine large small bowl pan mixture cook stir "
    "minutes add cover remove prepare gently slowly carefully fresh warm "
    "cool set aside blend taste season layer pour drain rinse chop slice "
    "whisk fold simmer boil reduce rest finish garnish plate"
).split()


def sentences(
    rng: random.Random,
    topical: Sequence[str],
    count: int = 3,
    words_per_sentence: tuple[int, int] = (7, 14),
) -> str:
    """Generate ``count`` sentences mixing common and topical words.

    Roughly a third of the words are drawn from ``topical`` so that the
    topical vocabulary dominates the idf-weighted vector while common
    words supply realistic bulk.
    """
    if not topical:
        topical = ["thing"]
    out: list[str] = []
    for _ in range(count):
        length = rng.randint(*words_per_sentence)
        words = []
        for position in range(length):
            pool = topical if rng.random() < 0.34 else COMMON_WORDS
            words.append(rng.choice(pool))
        sentence = " ".join(words)
        out.append(sentence[0].upper() + sentence[1:] + ".")
    return " ".join(out)


def title_case(words: Sequence[str]) -> str:
    """Join words into a Title Cased phrase."""
    return " ".join(word.capitalize() for word in words)
