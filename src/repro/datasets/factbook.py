"""A CIA-World-Factbook-style country dataset (§6.1).

The paper used an RDF conversion of the Factbook and observed that
"the navigation system did recommend navigating to countries that have
the same independence day or currencies", with results improving once
label and value-type annotations were added.  This synthetic equivalent
encodes exactly those shareable attributes: currencies used by several
countries (euro, CFA franc, US dollar), shared independence days, and
numeric population/area for range controls.
"""

from __future__ import annotations

from ..rdf.graph import Graph
from ..rdf.namespace import Namespace
from ..rdf.schema import Schema, ValueType
from ..rdf.terms import Literal, Resource
from ..rdf.vocab import RDF
from .base import Corpus

__all__ = ["COUNTRY_ROWS", "build_corpus"]

NS = Namespace("http://repro.example/factbook/")

# (country, continent, currency, independence day, population M, area k km2)
COUNTRY_ROWS: list[tuple[str, str, str, str, float, int]] = [
    ("France", "Europe", "euro", "July 14", 68.0, 644),
    ("Germany", "Europe", "euro", "October 3", 84.0, 358),
    ("Italy", "Europe", "euro", "June 2", 59.0, 301),
    ("Spain", "Europe", "euro", "October 12", 48.0, 506),
    ("Portugal", "Europe", "euro", "December 1", 10.3, 92),
    ("Greece", "Europe", "euro", "March 25", 10.4, 132),
    ("Austria", "Europe", "euro", "October 26", 9.1, 84),
    ("Ireland", "Europe", "euro", "December 6", 5.1, 70),
    ("Netherlands", "Europe", "euro", "July 26", 17.8, 42),
    ("Belgium", "Europe", "euro", "July 21", 11.7, 31),
    ("United States", "North America", "US dollar", "July 4", 335.0, 9834),
    ("Ecuador", "South America", "US dollar", "May 24", 18.0, 284),
    ("El Salvador", "North America", "US dollar", "September 15", 6.3, 21),
    ("Panama", "North America", "US dollar", "November 3", 4.4, 75),
    ("Guatemala", "North America", "quetzal", "September 15", 17.6, 109),
    ("Honduras", "North America", "lempira", "September 15", 10.6, 112),
    ("Nicaragua", "North America", "cordoba", "September 15", 7.0, 130),
    ("Costa Rica", "North America", "colon", "September 15", 5.2, 51),
    ("Senegal", "Africa", "CFA franc", "April 4", 17.3, 197),
    ("Mali", "Africa", "CFA franc", "September 22", 21.9, 1240),
    ("Niger", "Africa", "CFA franc", "August 3", 25.4, 1267),
    ("Benin", "Africa", "CFA franc", "August 1", 13.4, 115),
    ("Togo", "Africa", "CFA franc", "April 27", 8.7, 57),
    ("Burkina Faso", "Africa", "CFA franc", "August 5", 22.7, 274),
    ("Ivory Coast", "Africa", "CFA franc", "August 7", 28.2, 322),
    ("Cameroon", "Africa", "CFA franc", "January 1", 28.6, 475),
    ("Chad", "Africa", "CFA franc", "August 11", 17.7, 1284),
    ("Gabon", "Africa", "CFA franc", "August 17", 2.4, 268),
    ("United Kingdom", "Europe", "pound sterling", "none", 67.8, 244),
    ("Japan", "Asia", "yen", "February 11", 124.5, 378),
    ("China", "Asia", "renminbi", "October 1", 1412.0, 9597),
    ("India", "Asia", "rupee", "August 15", 1417.0, 3287),
    ("Pakistan", "Asia", "Pakistani rupee", "August 14", 240.5, 796),
    ("Brazil", "South America", "real", "September 7", 216.4, 8516),
    ("Argentina", "South America", "peso", "July 9", 46.2, 2780),
    ("Chile", "South America", "Chilean peso", "September 18", 19.6, 757),
    ("Mexico", "North America", "Mexican peso", "September 16", 128.5, 1964),
    ("Canada", "North America", "Canadian dollar", "July 1", 38.9, 9985),
    ("Australia", "Oceania", "Australian dollar", "January 26", 26.5, 7741),
    ("New Zealand", "Oceania", "New Zealand dollar", "February 6", 5.2, 268),
    ("Egypt", "Africa", "Egyptian pound", "July 23", 109.3, 1002),
    ("Kenya", "Africa", "shilling", "December 12", 55.1, 580),
    ("Nigeria", "Africa", "naira", "October 1", 223.8, 924),
    ("South Africa", "Africa", "rand", "April 27", 60.4, 1219),
    ("Turkey", "Asia", "lira", "October 29", 85.3, 784),
    ("South Korea", "Asia", "won", "August 15", 51.7, 100),
    ("Indonesia", "Asia", "rupiah", "August 17", 277.5, 1905),
    ("Vietnam", "Asia", "dong", "September 2", 98.9, 331),
    ("Thailand", "Asia", "baht", "none", 71.8, 513),
    ("Russia", "Europe", "ruble", "June 12", 144.4, 17098),
]


def build_corpus(annotated: bool = True) -> Corpus:
    """Build the country graph.

    ``annotated`` adds labels and value-type annotations — the step §6.1
    reports improved the Factbook results.
    """
    graph = Graph()
    schema = Schema(graph)
    country_type = NS["type/Country"]
    p_continent = NS["property/continent"]
    p_currency = NS["property/currency"]
    p_independence = NS["property/independenceDay"]
    p_population = NS["property/populationMillions"]
    p_area = NS["property/areaThousandKm2"]
    p_name = NS["property/name"]

    if annotated:
        schema.set_label(country_type, "Country")
        for prop, label in [
            (p_continent, "continent"), (p_currency, "currency"),
            (p_independence, "independence day"),
            (p_population, "population (millions)"),
            (p_area, "area (thousand km²)"), (p_name, "name"),
        ]:
            schema.set_label(prop, label)
        schema.set_value_type(p_population, ValueType.FLOAT)
        schema.set_value_type(p_area, ValueType.INTEGER)

    items: list[Resource] = []
    for name, continent, currency, independence, population, area in COUNTRY_ROWS:
        country = NS[f"country/{name.lower().replace(' ', '-')}"]
        graph.add(country, RDF.type, country_type)
        graph.add(country, p_name, Literal(name))
        if annotated:
            schema.set_label(country, name)
        graph.add(country, p_continent, Literal(continent))
        graph.add(country, p_currency, Literal(currency))
        if independence != "none":
            graph.add(country, p_independence, Literal(independence))
        graph.add(country, p_population, Literal(population))
        graph.add(country, p_area, Literal(area))
        items.append(country)

    extras = {
        "properties": {
            "continent": p_continent,
            "currency": p_currency,
            "independenceDay": p_independence,
            "population": p_population,
            "area": p_area,
            "name": p_name,
        },
        "country_type": country_type,
        "annotated": annotated,
    }
    return Corpus("factbook", graph, NS, items, extras)
