"""Deterministic synthetic corpora at 10–100× the paper's scale.

The ROADMAP targets interactive navigation at corpus sizes far beyond
the study's 6,444 recipes.  This module generates an item population of
any requested size with the facet shape the hot paths care about —
shared by the compiled-equivalence tests, the container kind-transition
tests, and the ``benchmarks/test_perf_scaled.py`` regression bench, so
all three measure the same data:

* one ``rdf:type`` per item drawn from 8 types;
* a ``category`` facet over 32 values (dense postings — these cross the
  array→bitmap container threshold at 64k items);
* a ``tag`` facet over 256 values, 0–3 per item (sparse postings —
  array containers);
* numeric ``year``/``weight`` literals, with a sprinkle of the
  adversarial shapes the fuzz corpus uses ("nan", "inf", "n/a"
  strings) so scaled runs hit the same literal edge cases;
* a text ``title`` so profiles exercise the text/annotation paths.

Everything is deterministic given ``(n_items, seed)`` — the generator
uses one private :class:`random.Random` and no ambient entropy.
"""

from __future__ import annotations

import random

from ..rdf.graph import Graph
from ..rdf.namespace import Namespace
from ..rdf.schema import Schema, ValueType
from ..rdf.terms import Literal
from ..rdf.vocab import RDF
from .base import Corpus

__all__ = ["NS", "N_TYPES", "N_CATEGORIES", "N_TAGS", "build_corpus"]

NS = Namespace("http://repro.example/scaled/")

N_TYPES = 8
N_CATEGORIES = 32
N_TAGS = 256

#: One item in this many carries an adversarial (non-numeric-parseable
#: or non-finite) literal on a numeric property.
_ADVERSARIAL_EVERY = 97


def build_corpus(
    n_items: int = 65_536, seed: int = 20260808, freeze: bool = True
) -> Corpus:
    """A scaled corpus of ``n_items`` items, deterministic in ``seed``.

    ``extras`` carries the property/value handles tests and benches
    refine on: ``types``, ``categories``, ``tags``, and the property
    resources under ``p_*`` keys.
    """
    rng = random.Random(seed)
    graph = Graph()
    schema = Schema(graph)

    p_category = NS["category"]
    p_tag = NS["tag"]
    p_year = NS["year"]
    p_weight = NS["weight"]
    p_title = NS["title"]

    types = [NS[f"Type{i}"] for i in range(N_TYPES)]
    categories = [NS[f"category/{i:02d}"] for i in range(N_CATEGORIES)]
    tags = [NS[f"tag/{i:03d}"] for i in range(N_TAGS)]

    for label, prop in (
        ("category", p_category),
        ("tag", p_tag),
        ("year", p_year),
        ("weight", p_weight),
        ("title", p_title),
    ):
        schema.set_label(prop, label)
    schema.set_value_type(p_year, ValueType.INTEGER)
    schema.set_value_type(p_weight, ValueType.FLOAT)
    schema.set_value_type(p_title, ValueType.TEXT)
    for i, rtype in enumerate(types):
        schema.set_label(rtype, f"Type {i}")
    for i, category in enumerate(categories):
        schema.set_label(category, f"Category {i:02d}")

    items = []
    for i in range(n_items):
        item = NS[f"item/{i:06d}"]
        items.append(item)
        graph.add(item, RDF.type, types[i % N_TYPES])
        # Zipf-ish category skew: low categories are dense, high sparse.
        category = categories[min(int(rng.expovariate(0.18)), N_CATEGORIES - 1)]
        graph.add(item, p_category, category)
        for _ in range(rng.randint(0, 3)):
            graph.add(item, p_tag, tags[rng.randrange(N_TAGS)])
        if i % _ADVERSARIAL_EVERY == 13:
            graph.add(item, p_year, Literal(rng.choice(["nan", "inf", "n/a"])))
        else:
            graph.add(item, p_year, Literal(1900 + rng.randrange(126)))
        graph.add(item, p_weight, Literal(round(rng.uniform(0.0, 1000.0), 3)))
        graph.add(item, p_title, Literal(f"Item {i} alpha beta {i % 17}"))

    if freeze:
        graph.freeze()
    return Corpus(
        "scaled",
        graph,
        NS,
        items,
        extras={
            "types": types,
            "categories": categories,
            "tags": tags,
            "p_category": p_category,
            "p_tag": p_tag,
            "p_year": p_year,
            "p_weight": p_weight,
            "p_title": p_title,
            "seed": seed,
        },
    )
