"""Deterministic linked corpus: a citation/affiliation graph for paths.

The path-predicate benchmark needs a corpus whose *structure* matters:
items connected to each other (so closures walk real cycles) and to a
small entity layer (so multi-hop chains like ``author/affiliation``
discriminate).  This module generates one:

* ``n_items`` papers, each ``rdf:type Paper``, with a title and a year;
* a ``cites`` relation between papers — mostly backward (citation-DAG
  shaped) but with a deterministic sprinkle of forward edges, mutual
  citations, and self-citations, so ``cites+``/``cites*`` closures must
  terminate on genuinely cyclic input;
* an entity layer: papers → ``author`` → authors → ``affiliation`` →
  institutions → ``locatedIn`` → countries, giving 2- and 3-hop
  composition chains whose extents are small fractions of the corpus.

Authors, institutions, and countries carry no ``rdf:type`` statement
and are not in ``Corpus.items``, so the navigation universe stays
papers-only.  Everything is deterministic given ``(n_items, seed)``.
"""

from __future__ import annotations

import random

from ..rdf.graph import Graph
from ..rdf.namespace import Namespace
from ..rdf.schema import Schema, ValueType
from ..rdf.terms import Literal
from ..rdf.vocab import RDF
from .base import Corpus

__all__ = [
    "NS",
    "N_AUTHORS",
    "N_INSTITUTIONS",
    "N_COUNTRIES",
    "build_corpus",
]

NS = Namespace("http://repro.example/linked/")

N_AUTHORS = 4_096
N_INSTITUTIONS = 64
N_COUNTRIES = 16

#: One paper in this many self-cites; one in this many pairs cites
#: mutually with its predecessor (a guaranteed 2-cycle).
_SELF_CITE_EVERY = 211
_MUTUAL_CITE_EVERY = 173
#: One citation in this many points *forward* (breaks the DAG shape).
_FORWARD_EVERY = 29


def build_corpus(
    n_items: int = 65_536, seed: int = 20260808, freeze: bool = True
) -> Corpus:
    """A linked corpus of ``n_items`` papers, deterministic in ``seed``.

    ``extras`` carries the handles the benchmark and tests refine on:
    the ``cites``/``author``/``affiliation``/``locatedIn`` properties,
    the entity pools, and the seed.
    """
    rng = random.Random(seed)
    graph = Graph()
    schema = Schema(graph)

    p_cites = NS["cites"]
    p_author = NS["author"]
    p_affiliation = NS["affiliation"]
    p_located_in = NS["locatedIn"]
    p_year = NS["year"]
    p_title = NS["title"]
    paper_type = NS["Paper"]

    for label, prop in (
        ("cites", p_cites),
        ("author", p_author),
        ("affiliation", p_affiliation),
        ("located in", p_located_in),
        ("year", p_year),
        ("title", p_title),
    ):
        schema.set_label(prop, label)
    schema.set_value_type(p_year, ValueType.INTEGER)
    schema.set_value_type(p_title, ValueType.TEXT)
    schema.set_label(paper_type, "Paper")

    n_authors = min(N_AUTHORS, max(8, n_items // 16))
    authors = [NS[f"author/{i:04d}"] for i in range(n_authors)]
    institutions = [NS[f"institution/{i:02d}"] for i in range(N_INSTITUTIONS)]
    countries = [NS[f"country/{i:02d}"] for i in range(N_COUNTRIES)]

    # The entity layer first: author → institution → country.  Zipf-ish
    # skew keeps a few institutions dense (big path extents) and the
    # tail sparse (selective ones).
    for i, author in enumerate(authors):
        slot = min(int(rng.expovariate(0.12)), N_INSTITUTIONS - 1)
        graph.add(author, p_affiliation, institutions[slot])
    for i, institution in enumerate(institutions):
        graph.add(institution, p_located_in, countries[i % N_COUNTRIES])

    items = []
    for i in range(n_items):
        item = NS[f"paper/{i:06d}"]
        items.append(item)
        graph.add(item, RDF.type, paper_type)
        for _ in range(rng.randint(1, 2)):
            graph.add(item, p_author, authors[rng.randrange(n_authors)])
        # Citations: mostly backward, deterministically sprinkled with
        # forward edges, self-citations, and mutual pairs, so the cites
        # relation is cyclic by construction at every corpus size.
        if i > 0:
            for _ in range(rng.randint(1, 3)):
                if rng.randrange(_FORWARD_EVERY) == 0:
                    target = rng.randrange(n_items)
                else:
                    target = rng.randrange(i)
                graph.add(item, p_cites, NS[f"paper/{target:06d}"])
        if i % _SELF_CITE_EVERY == 7:
            graph.add(item, p_cites, item)
        if i % _MUTUAL_CITE_EVERY == 11 and i > 0:
            prev = NS[f"paper/{i - 1:06d}"]
            graph.add(item, p_cites, prev)
            graph.add(prev, p_cites, item)
        graph.add(item, p_year, Literal(1970 + rng.randrange(56)))
        graph.add(item, p_title, Literal(f"Paper {i} on topic {i % 23}"))

    if freeze:
        graph.freeze()
    return Corpus(
        "linked",
        graph,
        NS,
        items,
        extras={
            "p_cites": p_cites,
            "p_author": p_author,
            "p_affiliation": p_affiliation,
            "p_located_in": p_located_in,
            "p_year": p_year,
            "p_title": p_title,
            "paper_type": paper_type,
            "authors": authors,
            "institutions": institutions,
            "countries": countries,
            "seed": seed,
        },
    )
