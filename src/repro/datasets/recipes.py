"""The Epicurious-style recipe corpus of the user study (§6.3).

The study "used data from 6,444 recipes and metadata extracted from the
site Epicurious.com.  244 ingredients were semi-automatically extracted
from the recipes and grouped to supplement the data."  That corpus is
proprietary, so this module generates a synthetic equivalent with the
same shape:

* 6,444 recipes by default (parameterizable for tests);
* exactly 244 ingredient resources, grouped (dairy, vegetables, nuts,
  ...) and tagged with an origin region (for §3.3's "ingredients found
  only in North America" walkthrough);
* the facet axes the figures show — cuisine, course, cooking method,
  ingredient — plus text title/body and numeric serves/prep-time;
* a Zipf-like ingredient popularity with cloves, garlic, olives, and
  olive oil near the top (the Figure 1 observation), cuisine-specific
  ingredient affinities, and guaranteed fixtures: Greek recipes with
  parsley (Figure 1's result set) and the walnut recipe of directed
  task 1.

Everything is deterministic given ``seed``.
"""

from __future__ import annotations

import random

from ..rdf.graph import Graph
from ..rdf.namespace import Namespace
from ..rdf.schema import Schema, ValueType
from ..rdf.terms import Literal, Resource
from ..rdf.vocab import RDF
from .base import Corpus
from .text import sentences, title_case

__all__ = ["CUISINES", "COURSES", "METHODS", "ingredient_catalog", "build_corpus"]

NS = Namespace("http://repro.example/recipes/")

# ---------------------------------------------------------------------------
# Vocabulary
# ---------------------------------------------------------------------------

_BASE_INGREDIENTS: dict[str, list[str]] = {
    "dairy": [
        "butter", "milk", "cream", "yogurt", "feta", "parmesan", "cheddar",
        "mozzarella", "ricotta", "sour cream", "goat cheese", "mascarpone",
        "buttermilk", "cream cheese", "gruyere", "halloumi",
    ],
    "vegetables": [
        "onion", "garlic", "tomato", "carrot", "celery", "spinach", "potato",
        "zucchini", "eggplant", "bell pepper", "mushroom", "broccoli",
        "cauliflower", "cabbage", "leek", "cucumber", "pumpkin", "beet",
        "corn", "asparagus", "artichoke", "kale", "fennel", "radish",
        "shallot", "scallion", "avocado", "olives",
    ],
    "fruits": [
        "lemon", "lime", "orange", "apple", "pear", "banana", "strawberry",
        "raspberry", "blueberry", "peach", "apricot", "cherry", "mango",
        "pineapple", "grape", "fig", "date", "pomegranate", "cranberry",
        "coconut", "raisin", "plum",
    ],
    "nuts": [
        "walnut", "almond", "pecan", "pistachio", "hazelnut", "cashew",
        "peanut", "pine nut", "macadamia", "chestnut",
    ],
    "meats": [
        "chicken", "beef", "pork", "lamb", "bacon", "sausage", "turkey",
        "duck", "ham", "veal", "chorizo", "prosciutto",
    ],
    "seafood": [
        "shrimp", "salmon", "tuna", "cod", "crab", "mussel", "clam",
        "scallop", "anchovy", "squid", "lobster", "halibut",
    ],
    "herbs": [
        "parsley", "basil", "cilantro", "mint", "oregano", "thyme",
        "rosemary", "dill", "sage", "tarragon", "chive", "bay leaf",
    ],
    "spices": [
        "cloves", "cumin", "paprika", "cinnamon", "nutmeg", "ginger",
        "turmeric", "coriander", "cardamom", "chili powder", "saffron",
        "black pepper", "cayenne", "allspice", "star anise", "vanilla",
    ],
    "grains": [
        "rice", "pasta", "bread", "flour", "oats", "quinoa", "couscous",
        "barley", "polenta", "bulgur", "tortilla", "noodles",
    ],
    "legumes": [
        "chickpea", "lentil", "black bean", "kidney bean", "pinto bean",
        "white bean", "green pea", "edamame", "fava bean",
    ],
    "oils and condiments": [
        "olive oil", "soy sauce", "vinegar", "mustard", "sesame oil",
        "fish sauce", "tahini", "mayonnaise", "hot sauce", "capers",
        "miso", "worcestershire",
    ],
    "sweeteners": [
        "sugar", "honey", "maple syrup", "brown sugar", "molasses",
        "chocolate", "cocoa", "jam",
    ],
}

_QUALIFIERS = [
    "red", "green", "baby", "wild", "smoked", "dried", "roasted", "sweet",
    "fresh", "heirloom", "golden", "purple",
]

#: Regions for the §3.3 "ingredients found only in North America" example.
_REGIONS = [
    "North America", "Mediterranean", "Asia", "South America", "Europe",
    "Africa",
]

CUISINES = [
    "Greek", "Mexican", "Italian", "French", "Chinese", "Indian", "Thai",
    "Japanese", "Spanish", "Moroccan", "American", "Cajun", "Turkish",
    "Lebanese", "Korean", "Vietnamese",
]

COURSES = [
    "Appetizer", "Soup", "Salad", "Main Course", "Side Dish", "Dessert",
    "Breakfast", "Beverage",
]

METHODS = [
    "Bake", "Grill", "Roast", "Fry", "Saute", "Steam", "Boil", "Braise",
    "Broil", "Simmer", "Marinate", "Slow Cook",
]

#: Cuisine → favored ingredient names (must exist in the final list).
_CUISINE_PROFILES: dict[str, list[str]] = {
    "Greek": ["olive oil", "feta", "olives", "parsley", "lemon", "oregano",
              "yogurt", "lamb", "cucumber", "mint", "walnut", "honey"],
    "Mexican": ["corn", "black bean", "chili powder", "avocado", "lime",
                "cilantro", "tortilla", "tomato", "cumin", "hot sauce",
                "chorizo", "cayenne"],
    "Italian": ["pasta", "parmesan", "basil", "tomato", "olive oil",
                "mozzarella", "garlic", "prosciutto", "ricotta", "pine nut",
                "olives"],
    "French": ["butter", "cream", "shallot", "thyme", "gruyere", "tarragon",
               "leek", "mustard", "duck"],
    "Chinese": ["soy sauce", "ginger", "scallion", "sesame oil", "rice",
                "noodles", "star anise", "garlic"],
    "Indian": ["cumin", "turmeric", "cardamom", "ginger", "lentil",
               "yogurt", "coriander", "rice", "chickpea", "cloves"],
    "Thai": ["fish sauce", "lime", "cilantro", "coconut", "chili powder",
             "rice", "peanut", "mint"],
    "Japanese": ["soy sauce", "miso", "rice", "ginger", "scallion",
                 "sesame oil", "salmon", "edamame"],
    "Spanish": ["olive oil", "paprika", "chorizo", "saffron", "rice",
                "tomato", "garlic", "almond", "olives"],
    "Moroccan": ["couscous", "cinnamon", "apricot", "chickpea", "cumin",
                 "date", "lamb", "saffron", "cloves", "olives"],
    "American": ["beef", "cheddar", "corn", "potato", "bacon", "maple syrup",
                 "cranberry", "pecan"],
    "Cajun": ["cayenne", "celery", "bell pepper", "shrimp", "rice",
              "sausage", "paprika", "hot sauce"],
    "Turkish": ["eggplant", "yogurt", "lamb", "mint", "bulgur", "walnut",
                "pomegranate", "honey"],
    "Lebanese": ["tahini", "chickpea", "parsley", "lemon", "bulgur",
                 "mint", "olive oil", "pine nut"],
    "Korean": ["soy sauce", "sesame oil", "scallion", "garlic", "rice",
               "cabbage", "ginger", "hot sauce"],
    "Vietnamese": ["fish sauce", "mint", "cilantro", "lime", "noodles",
                   "rice", "peanut", "scallion"],
}

#: Courses constrain ingredient groups (desserts carry no shellfish).
_COURSE_GROUPS: dict[str, list[str]] = {
    "Dessert": ["fruits", "nuts", "dairy", "sweeteners", "spices", "grains"],
    "Beverage": ["fruits", "sweeteners", "spices", "dairy"],
    "Breakfast": ["fruits", "dairy", "grains", "sweeteners", "meats"],
}

_DISH_NOUNS = [
    "soup", "stew", "salad", "tart", "cake", "pie", "roast", "curry",
    "pilaf", "gratin", "skewers", "fritters", "bake", "bowl", "wrap",
    "pasta", "risotto", "chowder", "dumplings", "casserole", "kebab",
    "cobbler", "pudding", "compote",
]


def ingredient_catalog() -> list[tuple[str, str]]:
    """The deterministic list of exactly 244 (name, group) pairs.

    The base lists are extended with qualified variants ("red onion",
    "baby spinach", ...) in a fixed order until the paper's 244 is hit.
    """
    catalog: list[tuple[str, str]] = []
    for group, names in _BASE_INGREDIENTS.items():
        catalog.extend((name, group) for name in names)
    base_count = len(catalog)
    if base_count > 244:
        raise AssertionError("base ingredient list grew past 244")
    qualifiable = [
        (name, group)
        for group, names in _BASE_INGREDIENTS.items()
        for name in names
        if group in ("vegetables", "fruits", "herbs", "grains", "legumes")
    ]
    index = 0
    while len(catalog) < 244:
        name, group = qualifiable[index % len(qualifiable)]
        qualifier = _QUALIFIERS[(index // len(qualifiable)) % len(_QUALIFIERS)]
        candidate = f"{qualifier} {name}"
        if all(candidate != existing for existing, _g in catalog):
            catalog.append((candidate, group))
        index += 1
    return catalog


# ---------------------------------------------------------------------------
# Corpus construction
# ---------------------------------------------------------------------------


def build_corpus(n_recipes: int = 6444, seed: int = 7) -> Corpus:
    """Generate the recipe corpus.

    Returns a :class:`Corpus` whose ``extras`` include:

    * ``ingredients``: name → Resource (all 244);
    * ``ingredient_groups``: group name → list of Resources;
    * ``cuisines`` / ``courses`` / ``methods``: name → Resource;
    * ``properties``: short name → property Resource;
    * ``walnut_recipe``: the aunt's walnut recipe of directed task 1;
    * ``greek_parsley_recipes``: the Figure 1 result set.
    """
    if n_recipes < 12:
        raise ValueError("need at least 12 recipes for the fixtures")
    rng = random.Random(seed)
    graph = Graph()
    schema = Schema(graph)

    p_type = RDF.type
    p_cuisine = NS["property/cuisine"]
    p_course = NS["property/course"]
    p_method = NS["property/cookingMethod"]
    p_ingredient = NS["property/ingredient"]
    p_title = NS["property/title"]
    p_body = NS["property/directions"]
    p_serves = NS["property/serves"]
    p_prep = NS["property/prepMinutes"]
    p_group = NS["property/foodGroup"]
    p_origin = NS["property/origin"]
    recipe_type = NS["type/Recipe"]
    ingredient_type = NS["type/Ingredient"]

    for prop, label in [
        (p_cuisine, "cuisine"), (p_course, "course"),
        (p_method, "cooking method"), (p_ingredient, "ingredient"),
        (p_title, "title"), (p_body, "directions"), (p_serves, "serves"),
        (p_prep, "preparation minutes"), (p_group, "food group"),
        (p_origin, "origin"),
    ]:
        schema.set_label(prop, label)
    schema.set_label(recipe_type, "Recipe")
    schema.set_label(ingredient_type, "Ingredient")
    schema.set_value_type(p_title, ValueType.TEXT)
    schema.set_value_type(p_body, ValueType.TEXT)
    schema.set_value_type(p_serves, ValueType.INTEGER)
    schema.set_value_type(p_prep, ValueType.INTEGER)

    # Facet-value resources -------------------------------------------------
    def _facet_values(names: list[str], kind: str) -> dict[str, Resource]:
        resources = {}
        for name in names:
            resource = NS[f"{kind}/{_slug(name)}"]
            schema.set_label(resource, name)
            resources[name] = resource
        return resources

    cuisines = _facet_values(CUISINES, "cuisine")
    courses = _facet_values(COURSES, "course")
    methods = _facet_values(METHODS, "method")

    catalog = ingredient_catalog()
    ingredients: dict[str, Resource] = {}
    ingredient_groups: dict[str, list[Resource]] = {}
    by_group_names: dict[str, list[str]] = {}
    for name, group in catalog:
        resource = NS[f"ingredient/{_slug(name)}"]
        graph.add(resource, p_type, ingredient_type)
        schema.set_label(resource, name)
        graph.add(resource, p_group, Literal(group))
        region = _REGIONS[_stable_hash(name) % len(_REGIONS)]
        graph.add(resource, p_origin, Literal(region))
        ingredients[name] = resource
        ingredient_groups.setdefault(group, []).append(resource)
        by_group_names.setdefault(group, []).append(name)

    popularity = _popularity_ranks(catalog, rng)

    # Recipes ----------------------------------------------------------------
    items: list[Resource] = []
    greek_parsley: list[Resource] = []

    def _mint_recipe(index: int) -> Resource:
        recipe = NS[f"recipe/r{index:05d}"]
        graph.add(recipe, p_type, recipe_type)
        return recipe

    def _fill_recipe(
        recipe: Resource,
        cuisine: str,
        course: str,
        chosen: list[str],
        method: str | None = None,
        title_hint: str | None = None,
    ) -> None:
        graph.add(recipe, p_cuisine, cuisines[cuisine])
        graph.add(recipe, p_course, courses[course])
        graph.add(
            recipe, p_method, methods[method or rng.choice(METHODS)]
        )
        for name in chosen:
            graph.add(recipe, p_ingredient, ingredients[name])
        headline = chosen[0] if chosen else "mystery"
        title = title_hint or title_case(
            [headline, rng.choice(_DISH_NOUNS)]
        )
        graph.add(recipe, p_title, Literal(title))
        schema.set_label(recipe, title)
        topical = [w for name in chosen for w in name.split()]
        topical.append(cuisine.lower())
        graph.add(
            recipe,
            p_body,
            Literal(sentences(rng, topical, count=rng.randint(2, 4))),
        )
        graph.add(recipe, p_serves, Literal(rng.randint(1, 12)))
        graph.add(recipe, p_prep, Literal(rng.choice(
            [10, 15, 20, 25, 30, 40, 45, 60, 75, 90, 120]
        )))
        if cuisine == "Greek" and "parsley" in chosen:
            greek_parsley.append(recipe)

    # Fixture 1: the aunt's walnut recipe (directed task 1).
    walnut_recipe = _mint_recipe(1)
    _fill_recipe(
        walnut_recipe,
        "Greek",
        "Dessert",
        ["walnut", "honey", "cinnamon", "butter", "flour"],
        method="Bake",
        title_hint="Walnut Honey Baklava",
    )
    items.append(walnut_recipe)

    # Fixture 2..7: guaranteed Greek-parsley recipes (Figure 1's view)
    # and nut-free dessert neighbours for the task-1 target.
    fixtures = [
        ("Greek", "Main Course", ["parsley", "lemon", "olive oil", "lamb"]),
        ("Greek", "Salad", ["parsley", "feta", "olives", "cucumber"]),
        ("Greek", "Appetizer", ["parsley", "yogurt", "garlic", "olive oil"]),
        ("Greek", "Dessert", ["honey", "yogurt", "fig", "cinnamon"]),
        ("Greek", "Dessert", ["honey", "butter", "flour", "orange"]),
        ("Mexican", "Soup", ["corn", "black bean", "lime", "cilantro"]),
    ]
    for offset, (cuisine, course, chosen) in enumerate(fixtures, start=2):
        recipe = _mint_recipe(offset)
        _fill_recipe(recipe, cuisine, course, chosen)
        items.append(recipe)

    next_index = len(items) + 1
    for index in range(next_index, n_recipes + 1):
        recipe = _mint_recipe(index)
        cuisine = rng.choice(CUISINES)
        course = rng.choice(COURSES)
        chosen = _pick_ingredients(
            rng, cuisine, course, popularity, by_group_names
        )
        _fill_recipe(recipe, cuisine, course, chosen)
        items.append(recipe)

    extras = {
        "ingredients": ingredients,
        "ingredient_groups": ingredient_groups,
        "cuisines": cuisines,
        "courses": courses,
        "methods": methods,
        "properties": {
            "cuisine": p_cuisine,
            "course": p_course,
            "method": p_method,
            "ingredient": p_ingredient,
            "title": p_title,
            "directions": p_body,
            "serves": p_serves,
            "prepMinutes": p_prep,
            "foodGroup": p_group,
            "origin": p_origin,
        },
        "types": {"Recipe": recipe_type, "Ingredient": ingredient_type},
        "walnut_recipe": walnut_recipe,
        "greek_parsley_recipes": list(greek_parsley),
    }
    return Corpus("recipes", graph, NS, items, extras)


def _pick_ingredients(
    rng: random.Random,
    cuisine: str,
    course: str,
    popularity: list[str],
    by_group_names: dict[str, list[str]],
) -> list[str]:
    count = rng.randint(3, 8)
    chosen: list[str] = []
    profile = _CUISINE_PROFILES.get(cuisine, [])
    allowed_groups = _COURSE_GROUPS.get(course)
    if allowed_groups is not None:
        allowed = {
            name for group in allowed_groups for name in by_group_names[group]
        }
    else:
        allowed = None
    while len(chosen) < count:
        if profile and rng.random() < 0.55:
            candidate = rng.choice(profile)
        else:
            # Zipf-ish: earlier ranks much more likely.
            rank = int(len(popularity) * (rng.random() ** 2.5))
            candidate = popularity[min(rank, len(popularity) - 1)]
        if allowed is not None and candidate not in allowed:
            continue
        if candidate not in chosen:
            chosen.append(candidate)
    return chosen


def _popularity_ranks(
    catalog: list[tuple[str, str]], rng: random.Random
) -> list[str]:
    """Ingredient names ordered most-popular-first.

    Cloves, garlic, olives, and olive oil are pinned to the head so the
    Figure 1 observation ("a large number of the recipes have cloves,
    garlic, olives and oil") holds; the rest is a seeded shuffle.
    """
    pinned = ["garlic", "olive oil", "cloves", "olives"]
    rest = [name for name, _group in catalog if name not in pinned]
    rng.shuffle(rest)
    return pinned + rest


def _slug(text: str) -> str:
    return text.lower().replace(" ", "-")


def _stable_hash(text: str) -> int:
    value = 0
    for ch in text:
        value = (value * 131 + ord(ch)) % 1_000_003
    return value
