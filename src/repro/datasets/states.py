"""The 50-states dataset of §6.1 (Figures 7 & 8).

The paper's dataset came from 50states.com as a comma-separated file
"with document properties encoded as human-readable strings rather than
marked up semantically" and no labels — so Magnet initially displayed
raw RDF identifiers, yet still "did point out interesting attributes ...
for example, the fact that seven states have 'cardinal' in their bird
names", and Alaska's area stood out once the integer annotation was
added.

The table below carries those exact properties: the seven
cardinal-bird states (Illinois, Indiana, Kentucky, North Carolina, Ohio,
Virginia, West Virginia), Alaska's outlier area, and repeated birds and
flowers across states.
"""

from __future__ import annotations

from ..rdf.csv2rdf import csv_to_graph
from .base import Corpus

__all__ = ["STATE_ROWS", "states_csv", "build_corpus", "CARDINAL_STATES"]

BASE_URI = "http://repro.example/states/"

# (state, bird, flower, area sq mi, region)
STATE_ROWS: list[tuple[str, str, str, int, str]] = [
    ("Alabama", "Yellowhammer", "Camellia", 52420, "South"),
    ("Alaska", "Willow ptarmigan", "Forget-me-not", 665384, "West"),
    ("Arizona", "Cactus wren", "Saguaro cactus blossom", 113990, "West"),
    ("Arkansas", "Mockingbird", "Apple blossom", 53179, "South"),
    ("California", "California valley quail", "Golden poppy", 163695, "West"),
    ("Colorado", "Lark bunting", "Rocky Mountain columbine", 104094, "West"),
    ("Connecticut", "American robin", "Mountain laurel", 5543, "Northeast"),
    ("Delaware", "Blue hen chicken", "Peach blossom", 2489, "Northeast"),
    ("Florida", "Mockingbird", "Orange blossom", 65758, "South"),
    ("Georgia", "Brown thrasher", "Cherokee rose", 59425, "South"),
    ("Hawaii", "Nene", "Hibiscus", 10932, "West"),
    ("Idaho", "Mountain bluebird", "Syringa", 83569, "West"),
    ("Illinois", "Cardinal", "Violet", 57914, "Midwest"),
    ("Indiana", "Cardinal", "Peony", 36420, "Midwest"),
    ("Iowa", "Eastern goldfinch", "Wild prairie rose", 56273, "Midwest"),
    ("Kansas", "Western meadowlark", "Sunflower", 82278, "Midwest"),
    ("Kentucky", "Cardinal", "Goldenrod", 40408, "South"),
    ("Louisiana", "Eastern brown pelican", "Magnolia", 52378, "South"),
    ("Maine", "Chickadee", "White pine cone", 35380, "Northeast"),
    ("Maryland", "Baltimore oriole", "Black-eyed susan", 12406, "Northeast"),
    ("Massachusetts", "Chickadee", "Mayflower", 10554, "Northeast"),
    ("Michigan", "American robin", "Apple blossom", 96714, "Midwest"),
    ("Minnesota", "Common loon", "Pink lady slipper", 86936, "Midwest"),
    ("Mississippi", "Mockingbird", "Magnolia", 48432, "South"),
    ("Missouri", "Eastern bluebird", "Hawthorn", 69707, "Midwest"),
    ("Montana", "Western meadowlark", "Bitterroot", 147040, "West"),
    ("Nebraska", "Western meadowlark", "Goldenrod", 77348, "Midwest"),
    ("Nevada", "Mountain bluebird", "Sagebrush", 110572, "West"),
    ("New Hampshire", "Purple finch", "Purple lilac", 9349, "Northeast"),
    ("New Jersey", "Eastern goldfinch", "Purple violet", 8723, "Northeast"),
    ("New Mexico", "Roadrunner", "Yucca flower", 121590, "West"),
    ("New York", "Eastern bluebird", "Rose", 54555, "Northeast"),
    ("North Carolina", "Cardinal", "Dogwood", 53819, "South"),
    ("North Dakota", "Western meadowlark", "Wild prairie rose", 70698, "Midwest"),
    ("Ohio", "Cardinal", "Scarlet carnation", 44826, "Midwest"),
    ("Oklahoma", "Scissor-tailed flycatcher", "Mistletoe", 69899, "South"),
    ("Oregon", "Western meadowlark", "Oregon grape", 98379, "West"),
    ("Pennsylvania", "Ruffed grouse", "Mountain laurel", 46054, "Northeast"),
    ("Rhode Island", "Rhode Island red", "Violet", 1545, "Northeast"),
    ("South Carolina", "Carolina wren", "Yellow jessamine", 32020, "South"),
    ("South Dakota", "Ring-necked pheasant", "Pasque flower", 77116, "Midwest"),
    ("Tennessee", "Mockingbird", "Iris", 42144, "South"),
    ("Texas", "Mockingbird", "Bluebonnet", 268596, "South"),
    ("Utah", "California gull", "Sego lily", 84897, "West"),
    ("Vermont", "Hermit thrush", "Red clover", 9616, "Northeast"),
    ("Virginia", "Cardinal", "Dogwood", 42775, "South"),
    ("Washington", "Willow goldfinch", "Coast rhododendron", 71298, "West"),
    ("West Virginia", "Cardinal", "Rhododendron", 24230, "South"),
    ("Wisconsin", "American robin", "Wood violet", 65496, "Midwest"),
    ("Wyoming", "Western meadowlark", "Indian paintbrush", 97813, "West"),
]

#: The seven states whose bird names contain 'cardinal' (§6.1).
CARDINAL_STATES = (
    "Illinois", "Indiana", "Kentucky", "North Carolina", "Ohio",
    "Virginia", "West Virginia",
)


def states_csv() -> str:
    """The dataset in its as-delivered comma-separated form."""
    lines = ["state,bird,flower,area,region"]
    for state, bird, flower, area, region in STATE_ROWS:
        cells = [state, bird, flower, str(area), region]
        lines.append(",".join(
            f'"{cell}"' if "," in cell else cell for cell in cells
        ))
    return "\n".join(lines) + "\n"


def build_corpus(annotated: bool = False) -> Corpus:
    """Import the CSV into RDF.

    ``annotated=False`` reproduces Figure 7's raw view (no labels, no
    value types: identifiers everywhere, area faceted as opaque
    strings); ``annotated=True`` reproduces Figure 8 (labels on
    properties and rows plus an integer annotation on area, enabling the
    range control that makes Alaska's outlier area visible).
    """
    graph = csv_to_graph(
        states_csv(),
        BASE_URI,
        row_type="State",
        key_column="state",
        add_labels=annotated,
        infer_types=annotated,
    )
    from ..rdf.namespace import Namespace

    ns = Namespace(BASE_URI)
    items = sorted(
        graph.items_of_type(ns["State"]), key=lambda n: n.n3()
    )
    properties = {
        name: ns[f"property/{name}"]
        for name in ("state", "bird", "flower", "area", "region")
    }
    extras = {
        "properties": properties,
        "state_type": ns["State"],
        "annotated": annotated,
    }
    return Corpus("states", graph, ns, list(items), extras)
