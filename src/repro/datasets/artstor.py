"""An ArtSTOR-style image-metadata dataset (§6.1).

ArtSTOR distributes electronic digital images with curated metadata; the
paper's RDF conversion carried labels and value types, so Magnet could
"present easy to understand navigation suggestions" — with the same
caveat as OCW about algorithmically significant but unreadable
attributes (here an opaque ``imageId``).
"""

from __future__ import annotations

import random

from ..rdf.graph import Graph
from ..rdf.namespace import Namespace
from ..rdf.schema import Schema, ValueType
from ..rdf.terms import Literal, Resource
from ..rdf.vocab import RDF
from .base import Corpus

__all__ = ["build_corpus", "ARTISTS", "MEDIA", "PERIODS"]

NS = Namespace("http://repro.example/artstor/")

ARTISTS = [
    "Mary Cassatt", "Katsushika Hokusai", "Diego Rivera",
    "Artemisia Gentileschi", "Albrecht Durer", "Sofonisba Anguissola",
    "Utagawa Hiroshige", "Jacob Lawrence", "Berthe Morisot",
    "El Greco",
]

MEDIA = [
    "oil on canvas", "woodblock print", "fresco", "tempera on panel",
    "engraving", "watercolor", "bronze", "marble",
]

PERIODS = [
    "Renaissance", "Baroque", "Edo", "Impressionism", "Modern",
    "Ukiyo-e", "Harlem Renaissance",
]

_COLLECTIONS = [
    "University Slide Library", "Museum Purchase", "Carnegie Survey",
    "Mellon Bequest",
]

_SUBJECTS = [
    "portrait", "landscape", "still life", "mythology", "city view",
    "interior", "garden", "harbor", "market", "bridge",
]


def build_corpus(
    n_works: int = 150, seed: int = 17, hide_internal: bool = False
) -> Corpus:
    """Generate the artwork graph (annotated like the paper's source)."""
    rng = random.Random(seed)
    graph = Graph()
    schema = Schema(graph)

    work_type = NS["type/Artwork"]
    p_artist = NS["property/artist"]
    p_medium = NS["property/medium"]
    p_period = NS["property/period"]
    p_collection = NS["property/collection"]
    p_year = NS["property/yearCreated"]
    p_title = NS["property/title"]
    p_subject = NS["property/subject"]
    p_image = NS["property/imageId"]

    schema.set_label(work_type, "Artwork")
    for prop, label in [
        (p_artist, "artist"), (p_medium, "medium"), (p_period, "period"),
        (p_collection, "collection"), (p_year, "year created"),
        (p_title, "title"), (p_subject, "subject"),
    ]:
        schema.set_label(prop, label)
    schema.set_value_type(p_title, ValueType.TEXT)
    schema.set_value_type(p_year, ValueType.INTEGER)
    if hide_internal:
        schema.hide_property(p_image)

    items: list[Resource] = []
    for index in range(1, n_works + 1):
        work = NS[f"work/w{index:04d}"]
        graph.add(work, RDF.type, work_type)
        artist = rng.choice(ARTISTS)
        subject = rng.choice(_SUBJECTS)
        title = f"{subject.title()} No. {index}"
        graph.add(work, p_artist, Literal(artist))
        graph.add(work, p_medium, Literal(rng.choice(MEDIA)))
        graph.add(work, p_period, Literal(rng.choice(PERIODS)))
        graph.add(work, p_collection, Literal(rng.choice(_COLLECTIONS)))
        graph.add(work, p_year, Literal(rng.randint(1500, 1950)))
        graph.add(work, p_title, Literal(title))
        graph.add(work, p_subject, Literal(subject))
        graph.add(work, p_image, Literal(f"ARTSTOR_103_{rng.randrange(10**8):08d}"))
        schema.set_label(work, title)
        items.append(work)

    extras = {
        "properties": {
            "artist": p_artist,
            "medium": p_medium,
            "period": p_period,
            "collection": p_collection,
            "yearCreated": p_year,
            "title": p_title,
            "subject": p_subject,
            "imageId": p_image,
        },
        "work_type": work_type,
        "hide_internal": hide_internal,
    }
    return Corpus("artstor", graph, NS, items, extras)
