"""Multi-word phrase coordinates (§5.1's "common extension").

"With the vector space model, a common extension calls for having
multiple word phrases as coordinates.  While this form of extension is
also helpful in the semistructured version of the model..." — this
module supplies it: :func:`learn_phrases` mines frequent adjacent token
pairs from a corpus's text values, and a :class:`PhraseSet` passed to
:class:`~repro.vsm.model.VectorSpaceModel` adds one ``phrase``
coordinate per detected occurrence (on top of the word coordinates, the
standard treatment).
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable

from ..rdf.graph import Graph
from ..rdf.terms import Literal, Node
from .tokenizer import Analyzer, default_analyzer

__all__ = ["KIND_PHRASE", "PhraseSet", "learn_phrases"]

KIND_PHRASE = "phrase"


class PhraseSet:
    """An immutable set of known (first-stem, second-stem) bigrams."""

    def __init__(self, bigrams: Iterable[tuple[str, str]]):
        self._bigrams = frozenset(tuple(b) for b in bigrams)

    def __contains__(self, bigram: tuple[str, str]) -> bool:
        return bigram in self._bigrams

    def __len__(self) -> int:
        return len(self._bigrams)

    def __iter__(self):
        return iter(sorted(self._bigrams))

    def spot(self, tokens: list[str]) -> list[str]:
        """Phrase tokens ('a b') for each known bigram occurrence."""
        found = []
        for first, second in zip(tokens, tokens[1:]):
            if (first, second) in self._bigrams:
                found.append(f"{first} {second}")
        return found

    def __repr__(self) -> str:
        return f"<PhraseSet {len(self._bigrams)} bigrams>"


def learn_phrases(
    graph: Graph,
    items: Iterable[Node],
    analyzer: Analyzer | None = None,
    min_count: int = 3,
    max_phrases: int = 200,
) -> PhraseSet:
    """Mine frequent adjacent stem pairs from the items' text values.

    A bigram qualifies when it occurs at least ``min_count`` times
    corpus-wide; the ``max_phrases`` most frequent are kept.  Stop words
    never participate (the analyzer has already removed them, so
    phrases bridge content words — 'olive oil', 'black bean').
    """
    analyzer = analyzer if analyzer is not None else default_analyzer()
    counts: Counter = Counter()
    for item in items:
        for _prop, values in graph.properties_of(item).items():
            for value in values:
                if not isinstance(value, Literal):
                    continue
                if value.is_numeric or value.is_temporal:
                    continue
                tokens = list(analyzer.tokens(value.lexical))
                counts.update(zip(tokens, tokens[1:]))
    frequent = [
        bigram
        for bigram, count in counts.most_common()
        if count >= min_count
    ]
    return PhraseSet(frequent[:max_phrases])
