"""Attribute-composition traversal (§5.1).

Compositions add "transitive" coordinates to the model: for a chain such
as (author, expertise), an item's composite values are the expertise
values of its authors.  Because semistructured graphs may contain cycles
(§6.2 contrasts this with XML's trees), traversal tracks visited nodes
and never revisits them.
"""

from __future__ import annotations

from typing import Sequence

from ..rdf.graph import Graph
from ..rdf.terms import Literal, Node, Resource

__all__ = ["compose_values", "reachable_frontier"]


def compose_values(
    graph: Graph, item: Node, chain: Sequence[Resource]
) -> list[Node]:
    """Values reached from ``item`` by following the property chain.

    Intermediate steps only traverse resource/blank nodes (a literal has
    no outgoing arcs); the final step's objects — literal or resource —
    are the composite values.  Duplicates are collapsed; order is
    deterministic (sorted by N-Triples form).
    """
    if not chain:
        return []
    frontier: set[Node] = {item}
    visited: set[Node] = {item}
    for prop in chain[:-1]:
        next_frontier: set[Node] = set()
        for node in frontier:
            if isinstance(node, Literal):
                continue
            for target in graph.objects(node, prop):
                if target not in visited:
                    visited.add(target)
                    next_frontier.add(target)
        frontier = next_frontier
        if not frontier:
            return []
    last = chain[-1]
    values: set[Node] = set()
    for node in frontier:
        if isinstance(node, Literal):
            continue
        values.update(graph.objects(node, last))
    return sorted(values, key=lambda n: n.n3())


def reachable_frontier(
    graph: Graph, item: Node, chain: Sequence[Resource]
) -> list[Node]:
    """The intermediate nodes reached after following every chain step.

    Useful for analysts that need the objects themselves (e.g. "navigate
    to the collection of ingredients" in §3.3) rather than their values.
    """
    frontier: set[Node] = {item}
    visited: set[Node] = {item}
    for prop in chain:
        next_frontier: set[Node] = set()
        for node in frontier:
            if isinstance(node, Literal):
                continue
            for target in graph.objects(node, prop):
                if target not in visited:
                    visited.add(target)
                    next_frontier.add(target)
        frontier = next_frontier
        if not frontier:
            break
    return sorted(frontier, key=lambda n: n.n3())
