"""Relevance feedback: Rocchio query modification (§5.3's lineage).

§5 argues that fitting semistructured data into the vector space model
"lets us take advantage of the large body of work on query refinement in
text repositories", citing Harman's survey of relevance feedback.  The
classic member of that body is Rocchio's update:

    q' = α·q + β·centroid(relevant) − γ·centroid(non-relevant)

Because Magnet's items — not just its text — live in one vector space,
the same update steers *structured* browsing: marking a few recipes as
"more like this" pulls the query toward their ingredients and cuisines,
not merely their words.  The ``MoreLikeTheseAnalyst`` exposes this as a
navigation suggestion.
"""

from __future__ import annotations

from typing import Sequence

from ..rdf.terms import Node
from .model import VectorSpaceModel
from .vector import SparseVector

__all__ = ["rocchio", "FeedbackSession"]


def rocchio(
    query: SparseVector,
    relevant: Sequence[SparseVector],
    non_relevant: Sequence[SparseVector] = (),
    alpha: float = 1.0,
    beta: float = 0.75,
    gamma: float = 0.15,
) -> SparseVector:
    """The Rocchio update, returning a unit-length modified query.

    Negative coordinates are clipped to zero after the update (standard
    practice: a vector-space query cannot demand absence).
    """
    updated = query.scaled(alpha)
    if relevant:
        updated = updated + SparseVector.centroid(relevant).scaled(beta)
    if non_relevant:
        updated = updated - SparseVector.centroid(non_relevant).scaled(gamma)
    clipped = SparseVector(
        {coord: weight for coord, weight in updated.items() if weight > 0.0}
    )
    return clipped.normalized()


class FeedbackSession:
    """Accumulates relevance judgments and maintains the moving query."""

    def __init__(
        self,
        model: VectorSpaceModel,
        initial_query: SparseVector | None = None,
        alpha: float = 1.0,
        beta: float = 0.75,
        gamma: float = 0.15,
    ):
        self.model = model
        self.initial_query = (
            initial_query if initial_query is not None else SparseVector()
        )
        self.alpha = alpha
        self.beta = beta
        self.gamma = gamma
        self._relevant: list[Node] = []
        self._non_relevant: list[Node] = []

    def mark_relevant(self, item: Node) -> None:
        """'More like this.'"""
        if item not in self.model:
            raise KeyError(f"item not indexed: {item!r}")
        if item not in self._relevant:
            self._relevant.append(item)
        if item in self._non_relevant:
            self._non_relevant.remove(item)

    def mark_non_relevant(self, item: Node) -> None:
        """'Less like this.'"""
        if item not in self.model:
            raise KeyError(f"item not indexed: {item!r}")
        if item not in self._non_relevant:
            self._non_relevant.append(item)
        if item in self._relevant:
            self._relevant.remove(item)

    @property
    def relevant(self) -> list[Node]:
        return list(self._relevant)

    @property
    def non_relevant(self) -> list[Node]:
        return list(self._non_relevant)

    def query_vector(self) -> SparseVector:
        """The current Rocchio-updated query."""
        return rocchio(
            self.initial_query,
            [self.model.vector(item) for item in self._relevant],
            [self.model.vector(item) for item in self._non_relevant],
            alpha=self.alpha,
            beta=self.beta,
            gamma=self.gamma,
        )

    def judged(self) -> set[Node]:
        """Everything the user has already marked (excluded from hits)."""
        return set(self._relevant) | set(self._non_relevant)

    def __repr__(self) -> str:
        return (
            f"<FeedbackSession +{len(self._relevant)} "
            f"-{len(self._non_relevant)}>"
        )
