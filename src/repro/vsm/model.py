"""The semistructured vector space model (§5).

``VectorSpaceModel`` turns each item of an RDF graph into a sparse
vector:

* object-valued attributes → one ``object`` coordinate per
  attribute/value pair (Figure 4's upper-case entries);
* string-valued attributes → tokenized/stemmed ``word`` coordinates
  under the attribute (Figure 4's lower-case entries);
* numeric/temporal attributes → a two-component unit-circle encoding
  (§5.4) so closeness in value yields a large dot product;
* schema-annotated attribute compositions → coordinates whose path is a
  property chain (§5.1).

Weighting follows §5.2: per-attribute tf normalization ("divide each
term frequency by the number of values for the attributes"), the
log-tf × log-idf term weight, and unit-length document normalization.

Items are indexed incrementally "as they arrive"; weighted vectors are
cached per corpus-statistics version so repeated reads are cheap while
adds stay O(item size).
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Iterable, Sequence

from ..rdf.graph import Graph
from ..rdf.schema import Schema, ValueType
from ..rdf.terms import Literal, Node, Resource
from ..rdf.vocab import MAGNET, RDFS
from .composition import compose_values
from .numeric import NumericRange, encode_unit_circle
from .phrases import KIND_PHRASE, PhraseSet
from .tokenizer import Analyzer, default_analyzer
from .vector import (
    Coord,
    KIND_NUM_COS,
    KIND_NUM_SIN,
    KIND_OBJECT,
    KIND_WORD,
    SparseVector,
)
from .weighting import CorpusStats, term_weight

__all__ = ["ItemProfile", "VectorSpaceModel"]

#: Properties that are annotation plumbing, never model coordinates.
_EXCLUDED_PROPERTIES = frozenset(
    {
        MAGNET.valueType,
        MAGNET.compose,
        MAGNET.hidden,
        MAGNET.importantProperty,
        RDFS.label,
    }
)


class ItemProfile:
    """The raw (pre-idf) representation of one indexed item.

    ``tf`` holds per-attribute-normalized term frequencies for discrete
    coordinates; ``numerics`` holds the raw numeric values per attribute
    path, encoded lazily against the corpus-wide ranges.
    """

    __slots__ = ("item", "tf", "numerics")

    def __init__(self, item: Node):
        self.item = item
        self.tf: dict[Coord, float] = {}
        self.numerics: dict[tuple[str, ...], list[float]] = {}

    def coordinates(self) -> Iterable[Coord]:
        """Discrete coordinates present in this item (for df updates)."""
        return self.tf.keys()

    def __repr__(self) -> str:
        return (
            f"<ItemProfile {self.item!r} dims={len(self.tf)} "
            f"numeric-paths={len(self.numerics)}>"
        )


class VectorSpaceModel:
    """Builds and serves semistructured vectors for a graph's items.

    Parameters
    ----------
    graph:
        The repository being modeled.
    schema:
        Schema annotations to honor (value types, compositions, hidden
        properties).  Defaults to a fresh :class:`Schema` over ``graph``.
    analyzer:
        The text-analysis chain for string values.
    use_compositions:
        When False, composition annotations are ignored (the ablation
        knob for `benchmarks/test_ablation_compositions.py`).
    per_attribute_normalization:
        When False, raw term frequencies are used (ablation knob for
        `benchmarks/test_ablation_normalization.py`).
    unit_circle_numerics:
        When False, numeric values are treated as plain object tokens
        (ablation knob for `benchmarks/test_ablation_numeric.py`).
    phrases:
        An optional :class:`~repro.vsm.phrases.PhraseSet`; detected
        bigrams add ``phrase`` coordinates alongside the word
        coordinates (§5.1's multi-word-phrase extension).
    """

    def __init__(
        self,
        graph: Graph,
        schema: Schema | None = None,
        analyzer: Analyzer | None = None,
        use_compositions: bool = True,
        per_attribute_normalization: bool = True,
        unit_circle_numerics: bool = True,
        phrases: PhraseSet | None = None,
    ):
        self.graph = graph
        self.schema = schema if schema is not None else Schema(graph)
        self.analyzer = analyzer if analyzer is not None else default_analyzer()
        self.use_compositions = use_compositions
        self.per_attribute_normalization = per_attribute_normalization
        self.unit_circle_numerics = unit_circle_numerics
        self.phrases = phrases
        self.stats = CorpusStats()
        self._profiles: dict[Node, ItemProfile] = {}
        self._ranges: dict[tuple[str, ...], NumericRange] = {}
        self._vector_cache: dict[Node, tuple[int, SparseVector]] = {}
        self._compositions: list[tuple[Resource, ...]] | None = None
        self._listeners: list[Callable[[str, Node, tuple], None]] = []

    def add_listener(
        self, callback: Callable[[str, Node, tuple], None]
    ) -> None:
        """Register a membership-change observer.

        ``callback(op, item, coords)`` fires after every effective
        mutation, with ``op`` one of ``"add"``/``"remove"`` and
        ``coords`` the item's discrete coordinates at that moment.
        Derived structures (the vector store) use this to maintain
        themselves incrementally instead of diffing the model.
        """
        self._listeners.append(callback)

    def _notify(self, op: str, item: Node, coords: tuple) -> None:
        for callback in self._listeners:
            callback(op, item, coords)

    # ------------------------------------------------------------------
    # Indexing
    # ------------------------------------------------------------------

    def index_items(self, items: Iterable[Node]) -> int:
        """Index (or re-index) many items; returns the count indexed."""
        count = 0
        for item in items:
            self.add_item(item)
            count += 1
        return count

    def add_item(self, item: Node) -> ItemProfile:
        """Index one item as it arrives; replaces any prior profile."""
        if item in self._profiles:
            self.remove_item(item)
        profile = self._extract(item)
        self._profiles[item] = profile
        coords = tuple(profile.coordinates())
        self.stats.add_document(coords)
        for path, values in profile.numerics.items():
            bucket = self._ranges.setdefault(path, NumericRange())
            for value in values:
                bucket.observe(value)
        self._notify("add", item, coords)
        return profile

    def remove_item(self, item: Node) -> bool:
        """Drop an item from the model (ranges are kept conservative)."""
        profile = self._profiles.pop(item, None)
        if profile is None:
            return False
        coords = tuple(profile.coordinates())
        self.stats.remove_document(coords)
        self._vector_cache.pop(item, None)
        self._notify("remove", item, coords)
        return True

    @property
    def items(self) -> list[Node]:
        """Indexed items, in insertion order."""
        return list(self._profiles)

    # ------------------------------------------------------------------
    # Epoch advancement
    # ------------------------------------------------------------------

    def clone_for(self, graph: Graph, schema: Schema | None = None) -> "VectorSpaceModel":
        """A model over ``graph`` seeded with this model's state.

        Profiles are shared (they are write-once after extraction),
        corpus stats and numeric ranges are copied, caches start empty
        and no listeners carry over.  The epoch reindexer clones the
        previous epoch's model, then removes/re-adds only the items a
        delta touched.
        """
        clone = VectorSpaceModel.__new__(VectorSpaceModel)
        clone.graph = graph
        clone.schema = schema if schema is not None else Schema(graph)
        clone.analyzer = self.analyzer
        clone.use_compositions = self.use_compositions
        clone.per_attribute_normalization = self.per_attribute_normalization
        clone.unit_circle_numerics = self.unit_circle_numerics
        clone.phrases = self.phrases
        clone.stats = self.stats.copy()
        clone._profiles = dict(self._profiles)
        clone._ranges = {path: r.copy() for path, r in self._ranges.items()}
        clone._vector_cache = {}
        clone._compositions = None
        clone._listeners = []
        return clone

    def reorder_items(self, order: Sequence[Node]) -> None:
        """Rebuild the profile table in ``order`` (a permutation of items).

        Profile-table iteration order feeds :meth:`text_vector`'s
        coordinate collection, so after an incremental fold the table is
        put back into the order a cold ``index_items(sorted(...))``
        build would have produced.
        """
        profiles = self._profiles
        if len(order) != len(profiles):
            raise ValueError(
                f"reorder_items: {len(order)} item(s) given, "
                f"{len(profiles)} indexed"
            )
        self._profiles = {item: profiles[item] for item in order}

    def recompute_ranges(self) -> None:
        """Rebuild numeric ranges from the current profiles.

        ``remove_item`` keeps ranges conservative (they only ever
        widen), but a cold build over the surviving items computes tight
        ranges — and range bounds feed the unit-circle encoding, so an
        epoch fold must recompute them to stay bit-identical to a cold
        build.  Min/max folds commute, so profile order does not matter.
        """
        ranges: dict[tuple[str, ...], NumericRange] = {}
        for profile in self._profiles.values():
            for path, values in profile.numerics.items():
                bucket = ranges.setdefault(path, NumericRange())
                for value in values:
                    bucket.observe(value)
        self._ranges = ranges
        self._vector_cache.clear()

    def __contains__(self, item: Node) -> bool:
        return item in self._profiles

    def __len__(self) -> int:
        return len(self._profiles)

    def profile(self, item: Node) -> ItemProfile | None:
        """The raw profile of an item, or None if not indexed."""
        return self._profiles.get(item)

    def numeric_range(self, path: tuple[str, ...]) -> NumericRange | None:
        """The observed range of a numeric attribute path."""
        return self._ranges.get(path)

    def invalidate_compositions(self) -> None:
        """Forget the cached composition list (call after schema edits).

        Items indexed before the change keep their old coordinates until
        re-indexed via :meth:`add_item`.
        """
        self._compositions = None

    # ------------------------------------------------------------------
    # Extraction
    # ------------------------------------------------------------------

    def _effective_compositions(self) -> list[tuple[Resource, ...]]:
        if not self.use_compositions:
            return []
        if self._compositions is None:
            self._compositions = self.schema.effective_compositions()
        return self._compositions

    def _extract(self, item: Node) -> ItemProfile:
        profile = ItemProfile(item)
        raw: Counter[Coord] = Counter()
        attribute_sizes: Counter[tuple[str, ...]] = Counter()
        for prop, values in sorted(
            self.graph.properties_of(item).items(), key=lambda kv: kv[0].uri
        ):
            if prop in _EXCLUDED_PROPERTIES:
                continue
            path = (prop.uri,)
            declared = self.schema.value_type(prop)
            for value in values:
                self._extract_value(
                    profile, raw, attribute_sizes, path, value, declared
                )
        for chain in self._effective_compositions():
            path = tuple(p.uri for p in chain)
            declared = self.schema.value_type(chain[-1])
            for value in compose_values(self.graph, item, chain):
                self._extract_value(
                    profile, raw, attribute_sizes, path, value, declared
                )
        if self.per_attribute_normalization:
            for coord, freq in raw.items():
                size = attribute_sizes[coord.path] or 1
                profile.tf[coord] = freq / size
        else:
            profile.tf.update(raw)
        return profile

    def _extract_value(
        self,
        profile: ItemProfile,
        raw: Counter,
        attribute_sizes: Counter,
        path: tuple[str, ...],
        value: Node,
        declared: str | None,
    ) -> None:
        if isinstance(value, Literal):
            if self.unit_circle_numerics and _is_continuous(value, declared):
                number = value.as_number()
                if number is not None:
                    profile.numerics.setdefault(path, []).append(number)
                    return
            if declared == ValueType.OBJECT:
                raw[Coord(path, KIND_OBJECT, value.lexical)] += 1
                attribute_sizes[path] += 1
                return
            tokens = list(self.analyzer.tokens(value.lexical))
            if not tokens:
                return
            for token in tokens:
                raw[Coord(path, KIND_WORD, token)] += 1
            attribute_sizes[path] += len(tokens)
            if self.phrases is not None:
                for phrase in self.phrases.spot(tokens):
                    raw[Coord(path, KIND_PHRASE, phrase)] += 1
            return
        token = value.uri if isinstance(value, Resource) else f"_:{value.node_id}"
        raw[Coord(path, KIND_OBJECT, token)] += 1
        attribute_sizes[path] += 1

    # ------------------------------------------------------------------
    # Weighted vectors
    # ------------------------------------------------------------------

    def vector(self, item: Node) -> SparseVector:
        """The weighted, unit-normalized vector of an indexed item.

        Raises ``KeyError`` for unindexed items.  Vectors are cached and
        recomputed automatically when corpus statistics change.
        """
        profile = self._profiles.get(item)
        if profile is None:
            raise KeyError(f"item not indexed: {item!r}")
        cached = self._vector_cache.get(item)
        if cached is not None and cached[0] == self.stats.version:
            return cached[1]
        vector = self._weigh(profile)
        self._vector_cache[item] = (self.stats.version, vector)
        return vector

    def _weigh(self, profile: ItemProfile) -> SparseVector:
        vector = SparseVector()
        num_docs = self.stats.num_docs
        for coord, freq in profile.tf.items():
            weight = term_weight(freq, num_docs, self.stats.doc_frequency(coord))
            if weight:
                vector.set(coord, weight)
        for path, values in profile.numerics.items():
            value_range = self._ranges.get(path)
            if value_range is None or not values:
                continue
            cos_total = 0.0
            sin_total = 0.0
            for value in values:
                cos_part, sin_part = encode_unit_circle(value, value_range)
                cos_total += cos_part
                sin_total += sin_part
            count = len(values)
            vector.set(Coord(path, KIND_NUM_COS, ""), cos_total / count)
            vector.set(Coord(path, KIND_NUM_SIN, ""), sin_total / count)
        return vector.normalized()

    def centroid(self, items: Sequence[Node]) -> SparseVector:
        """§5.3's "average member": normalized sum of the items' vectors."""
        return SparseVector.centroid(
            self.vector(item) for item in items if item in self._profiles
        )

    def similarity(self, a: Node, b: Node) -> float:
        """Dot-product similarity between two indexed items."""
        return self.vector(a).dot(self.vector(b))

    def similarity_to_collection(self, item: Node, items: Sequence[Node]) -> float:
        """Similarity of an item to a collection's average member."""
        return self.vector(item).dot(self.centroid(items))

    # ------------------------------------------------------------------
    # Query vectors
    # ------------------------------------------------------------------

    def text_vector(self, text: str) -> SparseVector:
        """A query vector matching word coordinates in *any* attribute.

        Keyword queries are attribute-agnostic, so each query token is
        expanded to every (attribute, word) coordinate in the corpus
        vocabulary carrying that token, weighted by idf.
        """
        tokens = Counter(self.analyzer.tokens(text))
        if not tokens:
            return SparseVector()
        by_token: dict[str, list[Coord]] = {}
        for profile in self._profiles.values():
            for coord in profile.tf:
                if coord.kind == KIND_WORD and coord.token in tokens:
                    by_token.setdefault(coord.token, []).append(coord)
        vector = SparseVector()
        for token, freq in tokens.items():
            for coord in set(by_token.get(token, ())):
                weight = term_weight(
                    float(freq), self.stats.num_docs, self.stats.doc_frequency(coord)
                )
                if weight:
                    vector.increment(coord, weight)
        return vector.normalized()

    def pair_vector(self, pairs: Sequence[tuple[Resource, Node]]) -> SparseVector:
        """A query vector from explicit (property, value) constraints."""
        vector = SparseVector()
        for prop, value in pairs:
            path = (prop.uri,)
            if isinstance(value, Literal):
                declared = self.schema.value_type(prop)
                if self.unit_circle_numerics and _is_continuous(value, declared):
                    number = value.as_number()
                    value_range = self._ranges.get(path)
                    if number is not None and value_range is not None:
                        cos_part, sin_part = encode_unit_circle(number, value_range)
                        vector.increment(Coord(path, KIND_NUM_COS, ""), cos_part)
                        vector.increment(Coord(path, KIND_NUM_SIN, ""), sin_part)
                        continue
                for token in self.analyzer.tokens(value.lexical):
                    coord = Coord(path, KIND_WORD, token)
                    vector.increment(coord, 1.0 + self.stats.idf(coord))
                continue
            token = (
                value.uri if isinstance(value, Resource) else f"_:{value.node_id}"
            )
            coord = Coord(path, KIND_OBJECT, token)
            vector.increment(coord, 1.0 + self.stats.idf(coord))
        return vector.normalized()

    def __repr__(self) -> str:
        return (
            f"<VectorSpaceModel items={len(self._profiles)} "
            f"vocab={self.stats.vocabulary_size()}>"
        )


def _is_continuous(value: Literal, declared: str | None) -> bool:
    if declared in ValueType.CONTINUOUS:
        return True
    if declared in (ValueType.TEXT, ValueType.OBJECT):
        return False
    return value.is_numeric or value.is_temporal
