"""Porter stemmer — the suffix stripper behind "stemming" in §5.

A faithful implementation of M.F. Porter's 1980 algorithm ("An algorithm
for suffix stripping", *Program* 14(3)), the normalization step the paper
lists alongside stop-word removal.  The five classic steps are kept as
separate methods so each can be tested in isolation.
"""

from __future__ import annotations

__all__ = ["PorterStemmer", "stem"]

_VOWELS = "aeiou"


class PorterStemmer:
    """Stateless Porter (1980) stemmer.

    >>> PorterStemmer().stem("running")
    'run'
    >>> PorterStemmer().stem("relational")
    'relat'
    """

    def stem(self, word: str) -> str:
        """Return the stem of an already lower-cased word."""
        if len(word) <= 2:
            return word
        word = self._step1a(word)
        word = self._step1b(word)
        word = self._step1c(word)
        word = self._step2(word)
        word = self._step3(word)
        word = self._step4(word)
        word = self._step5a(word)
        word = self._step5b(word)
        return word

    # -- consonant/vowel machinery ------------------------------------

    @staticmethod
    def _is_consonant(word: str, i: int) -> bool:
        ch = word[i]
        if ch in _VOWELS:
            return False
        if ch == "y":
            return i == 0 or not PorterStemmer._is_consonant(word, i - 1)
        return True

    @classmethod
    def _measure(cls, stem: str) -> int:
        """The 'm' of the paper: count of VC sequences in the stem."""
        forms = []
        for i in range(len(stem)):
            forms.append("c" if cls._is_consonant(stem, i) else "v")
        collapsed = "".join(
            ch for i, ch in enumerate(forms) if i == 0 or forms[i - 1] != ch
        )
        return collapsed.count("vc")

    @classmethod
    def _contains_vowel(cls, stem: str) -> bool:
        return any(not cls._is_consonant(stem, i) for i in range(len(stem)))

    @classmethod
    def _ends_double_consonant(cls, word: str) -> bool:
        return (
            len(word) >= 2
            and word[-1] == word[-2]
            and cls._is_consonant(word, len(word) - 1)
        )

    @classmethod
    def _ends_cvc(cls, word: str) -> bool:
        if len(word) < 3:
            return False
        if not (
            cls._is_consonant(word, len(word) - 3)
            and not cls._is_consonant(word, len(word) - 2)
            and cls._is_consonant(word, len(word) - 1)
        ):
            return False
        return word[-1] not in "wxy"

    # -- steps ---------------------------------------------------------

    def _step1a(self, word: str) -> str:
        if word.endswith("sses"):
            return word[:-2]
        if word.endswith("ies"):
            return word[:-2]
        if word.endswith("ss"):
            return word
        if word.endswith("s"):
            return word[:-1]
        return word

    def _step1b(self, word: str) -> str:
        if word.endswith("eed"):
            stem = word[:-3]
            if self._measure(stem) > 0:
                return word[:-1]
            return word
        flag = False
        if word.endswith("ed"):
            stem = word[:-2]
            if self._contains_vowel(stem):
                word, flag = stem, True
        elif word.endswith("ing"):
            stem = word[:-3]
            if self._contains_vowel(stem):
                word, flag = stem, True
        if flag:
            if word.endswith(("at", "bl", "iz")):
                return word + "e"
            if self._ends_double_consonant(word) and word[-1] not in "lsz":
                return word[:-1]
            if self._measure(word) == 1 and self._ends_cvc(word):
                return word + "e"
        return word

    def _step1c(self, word: str) -> str:
        if word.endswith("y") and self._contains_vowel(word[:-1]):
            return word[:-1] + "i"
        return word

    _STEP2_SUFFIXES = (
        ("ational", "ate"), ("tional", "tion"), ("enci", "ence"),
        ("anci", "ance"), ("izer", "ize"), ("abli", "able"),
        ("alli", "al"), ("entli", "ent"), ("eli", "e"),
        ("ousli", "ous"), ("ization", "ize"), ("ation", "ate"),
        ("ator", "ate"), ("alism", "al"), ("iveness", "ive"),
        ("fulness", "ful"), ("ousness", "ous"), ("aliti", "al"),
        ("iviti", "ive"), ("biliti", "ble"),
    )

    def _step2(self, word: str) -> str:
        for suffix, replacement in self._STEP2_SUFFIXES:
            if word.endswith(suffix):
                stem = word[: -len(suffix)]
                if self._measure(stem) > 0:
                    return stem + replacement
                return word
        return word

    _STEP3_SUFFIXES = (
        ("icate", "ic"), ("ative", ""), ("alize", "al"),
        ("iciti", "ic"), ("ical", "ic"), ("ful", ""), ("ness", ""),
    )

    def _step3(self, word: str) -> str:
        for suffix, replacement in self._STEP3_SUFFIXES:
            if word.endswith(suffix):
                stem = word[: -len(suffix)]
                if self._measure(stem) > 0:
                    return stem + replacement
                return word
        return word

    _STEP4_SUFFIXES = (
        "al", "ance", "ence", "er", "ic", "able", "ible", "ant",
        "ement", "ment", "ent", "ou", "ism", "ate", "iti", "ous",
        "ive", "ize",
    )

    def _step4(self, word: str) -> str:
        if word.endswith("ion"):
            stem = word[:-3]
            if stem and stem[-1] in "st" and self._measure(stem) > 1:
                return stem
        for suffix in self._STEP4_SUFFIXES:
            if word.endswith(suffix):
                stem = word[: -len(suffix)]
                if self._measure(stem) > 1:
                    return stem
                return word
        return word

    def _step5a(self, word: str) -> str:
        if word.endswith("e"):
            stem = word[:-1]
            m = self._measure(stem)
            if m > 1 or (m == 1 and not self._ends_cvc(stem)):
                return stem
        return word

    def _step5b(self, word: str) -> str:
        if (
            self._measure(word) > 1
            and self._ends_double_consonant(word)
            and word.endswith("l")
        ):
            return word[:-1]
        return word


_DEFAULT = PorterStemmer()


def stem(word: str) -> str:
    """Stem a lower-cased word with the module-level stemmer."""
    return _DEFAULT.stem(word)
