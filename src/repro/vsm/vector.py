"""Sparse vectors and the coordinate scheme of the semistructured VSM.

§5 maps each item to a vector with one coordinate per attribute/value
pair; text values contribute one coordinate per (attribute, word) and
numeric values contribute a two-component unit-circle encoding (§5.4).
A coordinate is therefore identified by:

* ``path`` — the attribute, or the chain of attributes for a composed
  ("transitive") coordinate (§5.1);
* ``kind`` — how the value is encoded (``object``, ``word``,
  ``num-cos``/``num-sin``);
* ``token`` — the value's identifier: a resource URI, a stemmed word, or
  '' for the numeric components.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, Mapping, NamedTuple

__all__ = ["Coord", "KIND_OBJECT", "KIND_WORD", "KIND_NUM_COS",
           "KIND_NUM_SIN", "SparseVector"]

KIND_OBJECT = "object"
KIND_WORD = "word"
KIND_NUM_COS = "num-cos"
KIND_NUM_SIN = "num-sin"


class Coord(NamedTuple):
    """One coordinate (dimension) of the semistructured vector space."""

    path: tuple[str, ...]
    kind: str
    token: str

    def describe(self) -> str:
        """A compact human-readable rendering, used in figures/tests."""
        path = ".".join(_short(p) for p in self.path)
        if self.kind == KIND_OBJECT:
            return f"{path}={_short(self.token).upper()}"
        if self.kind == KIND_WORD:
            return f"{path}={self.token}"
        return f"{path}#{self.kind}"


def _short(uri: str) -> str:
    for sep in ("#", "/"):
        if sep in uri:
            tail = uri.rsplit(sep, 1)[1]
            if tail:
                return tail
    return uri


class SparseVector:
    """A sparse real-valued vector over hashable coordinates.

    Backed by a dict; zero entries are never stored.  Supports the
    operations the model and the retrieval machinery need: dot product,
    norms, scaling, addition, and unit-length normalization.
    """

    __slots__ = ("_entries",)

    def __init__(self, entries: Mapping | Iterable[tuple] | None = None):
        self._entries: dict = {}
        if entries:
            items = entries.items() if isinstance(entries, Mapping) else entries
            for key, weight in items:
                if weight:
                    self._entries[key] = self._entries.get(key, 0.0) + float(weight)
            self._drop_zeros()

    def _drop_zeros(self) -> None:
        dead = [k for k, w in self._entries.items() if w == 0.0]
        for k in dead:
            del self._entries[k]

    # -- mapping-ish interface -----------------------------------------

    def __getitem__(self, key) -> float:
        return self._entries.get(key, 0.0)

    def get(self, key, default: float = 0.0) -> float:
        return self._entries.get(key, default)

    def __contains__(self, key) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator:
        return iter(self._entries)

    def items(self):
        return self._entries.items()

    def keys(self):
        return self._entries.keys()

    def set(self, key, weight: float) -> None:
        """Set one coordinate (removing it when weight is zero)."""
        if weight:
            self._entries[key] = float(weight)
        elif key in self._entries:
            del self._entries[key]

    def increment(self, key, delta: float) -> None:
        """Add ``delta`` to one coordinate."""
        new = self._entries.get(key, 0.0) + float(delta)
        self.set(key, new)

    # -- algebra ---------------------------------------------------------

    def dot(self, other: "SparseVector") -> float:
        """Dot product — the similarity measure of §5.3."""
        if len(other) < len(self):
            self, other = other, self
        mine = self._entries
        theirs = other._entries
        return sum(w * theirs[k] for k, w in mine.items() if k in theirs)

    def norm(self) -> float:
        """Euclidean length.

        Computed hypot-style (scaled by the largest magnitude) so that
        vectors with subnormal-scale weights don't lose precision to
        underflow when squaring.
        """
        if not self._entries:
            return 0.0
        largest = max(abs(w) for w in self._entries.values())
        if largest == 0.0:
            return 0.0
        scaled = sum((w / largest) ** 2 for w in self._entries.values())
        return largest * math.sqrt(scaled)

    def normalized(self) -> "SparseVector":
        """A unit-length copy (the zero vector normalizes to itself).

        Weights are divided by the norm directly rather than multiplied
        by its reciprocal — for subnormal-scale vectors ``1/norm``
        overflows to infinity while the division stays finite.
        """
        length = self.norm()
        if length == 0.0:
            return SparseVector()
        out = SparseVector()
        out._entries = {k: w / length for k, w in self._entries.items()}
        return out

    def cosine(self, other: "SparseVector") -> float:
        """Cosine similarity (dot of the two normalized vectors)."""
        denom = self.norm() * other.norm()
        if denom == 0.0:
            return 0.0
        return self.dot(other) / denom

    def scaled(self, factor: float) -> "SparseVector":
        """A copy with every weight multiplied by ``factor``."""
        if factor == 0.0:
            return SparseVector()
        out = SparseVector()
        out._entries = {k: w * factor for k, w in self._entries.items()}
        return out

    def __add__(self, other: "SparseVector") -> "SparseVector":
        out = SparseVector()
        out._entries = dict(self._entries)
        for k, w in other._entries.items():
            out.increment(k, w)
        return out

    def __sub__(self, other: "SparseVector") -> "SparseVector":
        return self + other.scaled(-1.0)

    @staticmethod
    def centroid(vectors: Iterable["SparseVector"]) -> "SparseVector":
        """The normalized sum — §5.3's "average member" of a collection."""
        total = SparseVector()
        count = 0
        for vec in vectors:
            total = total + vec
            count += 1
        if count == 0:
            return total
        return total.normalized()

    # -- misc -------------------------------------------------------------

    def top(self, n: int) -> list[tuple]:
        """The ``n`` highest-weight (key, weight) pairs, deterministic."""
        return sorted(
            self._entries.items(), key=lambda kv: (-kv[1], repr(kv[0]))
        )[:n]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SparseVector):
            return NotImplemented
        return self._entries == other._entries

    def __repr__(self) -> str:
        return f"<SparseVector dims={len(self._entries)} norm={self.norm():.4f}>"
