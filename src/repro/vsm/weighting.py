"""Term weighting: tf.idf and normalization exactly as §5.2 specifies.

    term-weight = log(freq + 1.0) × log(num-docs / num-docs-with-term)

    normalized-weight = term-weight / sqrt(Σ term-weight²)

The tf fed into the formula has already been divided by the number of
values the attribute carries (the Lucene-style per-attribute
normalization that "gives equal importance to different attributes in a
document"), and the final division normalizes each item to unit length
"to give objects equal importance rather than giving more importance to
items with more metadata".
"""

from __future__ import annotations

import math

__all__ = ["term_weight", "idf", "CorpusStats"]


def idf(num_docs: int, num_docs_with_term: int) -> float:
    """Inverse document frequency: log(N / df); 0 for unseen terms.

    A term occurring in every document gets idf 0, which is what lets
    the model "ignore those attribute values that are very common".
    """
    if num_docs <= 0 or num_docs_with_term <= 0:
        return 0.0
    if num_docs_with_term >= num_docs:
        return 0.0
    return math.log(num_docs / num_docs_with_term)


def term_weight(freq: float, num_docs: int, num_docs_with_term: int) -> float:
    """The paper's un-normalized term weight."""
    if freq <= 0.0:
        return 0.0
    return math.log(freq + 1.0) * idf(num_docs, num_docs_with_term)


class CorpusStats:
    """Document frequencies for the corpus, updated incrementally.

    Magnet indexes data "in advance (as it arrives)", so the stats
    support both adding and removing an item's coordinate set.  A
    ``version`` counter lets caches detect staleness.
    """

    def __init__(self):
        self._df: dict = {}
        self.num_docs = 0
        self.version = 0

    def doc_frequency(self, coord) -> int:
        """Number of documents containing a coordinate."""
        return self._df.get(coord, 0)

    def idf(self, coord) -> float:
        """idf of one coordinate under the current stats."""
        return idf(self.num_docs, self._df.get(coord, 0))

    def add_document(self, coords) -> None:
        """Record a new document's distinct coordinates."""
        for coord in coords:
            self._df[coord] = self._df.get(coord, 0) + 1
        self.num_docs += 1
        self.version += 1

    def remove_document(self, coords) -> None:
        """Forget a document's distinct coordinates."""
        for coord in coords:
            remaining = self._df.get(coord, 0) - 1
            if remaining > 0:
                self._df[coord] = remaining
            else:
                self._df.pop(coord, None)
        self.num_docs = max(0, self.num_docs - 1)
        self.version += 1

    def copy(self) -> "CorpusStats":
        """An independent snapshot (epoch folds advance the copy)."""
        clone = CorpusStats()
        clone._df = dict(self._df)
        clone.num_docs = self.num_docs
        clone.version = self.version
        return clone

    def vocabulary_size(self) -> int:
        """Number of distinct coordinates seen so far."""
        return len(self._df)

    def __repr__(self) -> str:
        return (
            f"<CorpusStats docs={self.num_docs} "
            f"vocab={len(self._df)} v{self.version}>"
        )
