"""Scatter/Gather-style clustering over the semistructured VSM (§2).

"Scatter/Gather offers a navigation system based on document clustering
... creates topical clusters and lets the user pick ones that seem
interesting to create a smaller collection.  Magnet tries to achieve
similar synergies in structured models."  Because Magnet's items live in
one vector space, the classic spherical k-means recipe ports directly —
and cluster *labels* fall out of the centroids' top coordinates, mixing
structural values ("ingredient=FETA") with words.

Everything is deterministic: initialization is a greedy farthest-first
sweep from a seeded starting point, so tests and benchmarks reproduce.
"""

from __future__ import annotations

from typing import Sequence

from ..rdf.terms import Node
from .model import VectorSpaceModel
from .vector import Coord, SparseVector

__all__ = ["Cluster", "cluster_collection"]


class Cluster:
    """One topical group of a scattered collection."""

    def __init__(
        self,
        index: int,
        items: list[Node],
        centroid: SparseVector,
        distinctive: SparseVector | None = None,
    ):
        self.index = index
        self.items = items
        self.centroid = centroid
        #: centroid minus the whole collection's centroid (clipped ≥ 0):
        #: what makes this cluster different, not what everything shares.
        self.distinctive = distinctive if distinctive is not None else centroid

    def top_coordinates(self, n: int = 5) -> list[Coord]:
        """The cluster's strongest *distinguishing* coordinates.

        Numeric circle components are skipped (every item carries them
        with positive weight), and the whole-collection signal has been
        subtracted, so a cluster of Mexican soups reads "SOUP, ...",
        never "MEXICAN, ..." inside a Mexican collection.
        """
        ranked = sorted(
            self.distinctive.items(), key=lambda kv: (-kv[1], repr(kv[0]))
        )
        out = []
        for coord, _weight in ranked:
            if isinstance(coord, Coord) and coord.kind.startswith("num-"):
                continue
            out.append(coord)
            if len(out) >= n:
                break
        return out

    def label(self, n: int = 3) -> str:
        """A compact display label from the top coordinates."""
        parts = []
        for coord in self.top_coordinates(n):
            parts.append(coord.describe().rsplit("=", 1)[-1])
        return ", ".join(parts) if parts else "(empty)"

    def __len__(self) -> int:
        return len(self.items)

    def __repr__(self) -> str:
        return f"<Cluster #{self.index} {self.label()!r} n={len(self.items)}>"


def cluster_collection(
    model: VectorSpaceModel,
    items: Sequence[Node],
    k: int = 4,
    max_iterations: int = 12,
    seed: int = 0,
) -> list[Cluster]:
    """Spherical k-means over a collection's vectors.

    Items not in the model are ignored.  ``k`` is clamped to the number
    of distinct items.  Clusters come back largest-first; empty clusters
    are dropped (k-means may collapse when the data has fewer natural
    groups).
    """
    if k <= 0:
        raise ValueError("k must be positive")
    pool = [item for item in items if item in model]
    pool = sorted(set(pool), key=lambda n: n.n3())
    if not pool:
        return []
    k = min(k, len(pool))
    vectors = {item: model.vector(item) for item in pool}

    centers = _farthest_first(pool, vectors, k, seed)
    assignment: dict[Node, int] = {}
    for _round in range(max_iterations):
        changed = False
        for item in pool:
            best = max(
                range(len(centers)),
                key=lambda c: (vectors[item].dot(centers[c]), -c),
            )
            if assignment.get(item) != best:
                assignment[item] = best
                changed = True
        if not changed:
            break
        new_centers = []
        for c in range(len(centers)):
            members = [vectors[i] for i in pool if assignment[i] == c]
            if members:
                new_centers.append(SparseVector.centroid(members))
            else:
                new_centers.append(centers[c])
        centers = new_centers

    overall = SparseVector.centroid(vectors.values())
    clusters = []
    for c, center in enumerate(centers):
        members = [item for item in pool if assignment[item] == c]
        if not members:
            continue
        difference = center - overall
        distinctive = SparseVector(
            {coord: w for coord, w in difference.items() if w > 0.0}
        )
        clusters.append(Cluster(c, members, center, distinctive))
    clusters.sort(key=lambda cl: (-len(cl.items), cl.index))
    for index, cluster in enumerate(clusters):
        cluster.index = index
    return clusters


def _farthest_first(
    pool: list[Node],
    vectors: dict[Node, SparseVector],
    k: int,
    seed: int,
) -> list[SparseVector]:
    """Deterministic k-means++-flavored initialization.

    Start from the seed-th item, then repeatedly pick the item least
    similar to every chosen center (ties broken lexically).
    """
    first = pool[seed % len(pool)]
    centers = [vectors[first]]
    chosen = {first}
    while len(centers) < k:
        best_item = None
        best_score = None
        for item in pool:
            if item in chosen:
                continue
            closest = max(vectors[item].dot(center) for center in centers)
            score = (closest, item.n3())
            if best_score is None or score < best_score:
                best_score = score
                best_item = item
        if best_item is None:
            break
        chosen.add(best_item)
        centers.append(vectors[best_item])
    return centers
