"""Numeric attribute encoding on the unit circle (§5.4).

"To keep the numeric values (which might be arbitrarily large) from
swamping other coordinates in the vector space model when we normalize,
we map the numeric range to the first quadrant of the unit circle, so
that all values have the same norm but different values have small dot
product."

A value ``v`` within an observed attribute range ``[lo, hi]`` maps to the
angle ``θ = (v - lo)/(hi - lo) · π/2`` and contributes the pair
``(cos θ, sin θ)``.  Two properties follow directly:

* every encoded value has norm 1, so dates cannot dominate an item;
* the dot product of two encodings is ``cos(θ₁ - θ₂)``, which is 1 for
  equal values and decays smoothly with distance — e-mails sent a day
  apart are *similar*, not merely unequal (the paper's Thu July 31 /
  Fri Aug 1 example).
"""

from __future__ import annotations

import math

__all__ = ["NumericRange", "encode_unit_circle", "unit_circle_similarity"]


class NumericRange:
    """Running min/max of a numeric attribute across a corpus."""

    __slots__ = ("low", "high", "count")

    def __init__(self):
        self.low = math.inf
        self.high = -math.inf
        self.count = 0

    def observe(self, value: float) -> None:
        """Fold one value into the range.

        Non-finite readings are skipped: a single NaN would otherwise
        satisfy neither comparison, leaving ``low=inf``/``high=-inf``
        with ``count > 0`` — a poisoned range whose ``width`` is -inf
        and whose ``fraction`` is NaN for every later value.  Infinite
        values are rejected for the same reason (an infinite bound makes
        every fraction degenerate).
        """
        if not math.isfinite(value):
            return
        if value < self.low:
            self.low = value
        if value > self.high:
            self.high = value
        self.count += 1

    def copy(self) -> "NumericRange":
        clone = NumericRange()
        clone.low = self.low
        clone.high = self.high
        clone.count = self.count
        return clone

    @property
    def is_empty(self) -> bool:
        return self.count == 0

    @property
    def width(self) -> float:
        return 0.0 if self.is_empty else self.high - self.low

    def fraction(self, value: float) -> float:
        """Position of ``value`` within the range, clamped to [0, 1]."""
        if self.is_empty or self.width == 0.0:
            return 0.5
        return min(1.0, max(0.0, (value - self.low) / self.width))

    def __repr__(self) -> str:
        if self.is_empty:
            return "<NumericRange empty>"
        return f"<NumericRange [{self.low}, {self.high}] n={self.count}>"


def encode_unit_circle(value: float, value_range: NumericRange) -> tuple[float, float]:
    """Map a value to its (cos, sin) first-quadrant encoding."""
    theta = value_range.fraction(value) * math.pi / 2.0
    return (math.cos(theta), math.sin(theta))


def unit_circle_similarity(
    a: float, b: float, value_range: NumericRange
) -> float:
    """Dot product of the encodings of two values: cos(θa − θb)."""
    ca, sa = encode_unit_circle(a, value_range)
    cb, sb = encode_unit_circle(b, value_range)
    return ca * cb + sa * sb
