"""The semistructured vector space model (§5) and its text pipeline."""

from .cluster import Cluster, cluster_collection
from .composition import compose_values, reachable_frontier
from .feedback import FeedbackSession, rocchio
from .model import ItemProfile, VectorSpaceModel
from .phrases import KIND_PHRASE, PhraseSet, learn_phrases
from .numeric import NumericRange, encode_unit_circle, unit_circle_similarity
from .stemmer import PorterStemmer, stem
from .stopwords import STOP_WORDS, is_stop_word
from .tokenizer import Analyzer, analyze, default_analyzer, tokenize
from .vector import (
    Coord,
    KIND_NUM_COS,
    KIND_NUM_SIN,
    KIND_OBJECT,
    KIND_WORD,
    SparseVector,
)
from .weighting import CorpusStats, idf, term_weight

__all__ = [
    "Cluster",
    "cluster_collection",
    "compose_values",
    "reachable_frontier",
    "FeedbackSession",
    "rocchio",
    "KIND_PHRASE",
    "PhraseSet",
    "learn_phrases",
    "ItemProfile",
    "VectorSpaceModel",
    "NumericRange",
    "encode_unit_circle",
    "unit_circle_similarity",
    "PorterStemmer",
    "stem",
    "STOP_WORDS",
    "is_stop_word",
    "Analyzer",
    "analyze",
    "default_analyzer",
    "tokenize",
    "Coord",
    "KIND_NUM_COS",
    "KIND_NUM_SIN",
    "KIND_OBJECT",
    "KIND_WORD",
    "SparseVector",
    "CorpusStats",
    "idf",
    "term_weight",
]
