"""Tokenization: splitting text values into word coordinates (§5).

"As in the traditional vector space model individual words in paragraphs
of text are split up and represented as coordinates."  The analyzer here
lower-cases, strips punctuation, drops stop words, and Porter-stems —
the improvements §5 enumerates.
"""

from __future__ import annotations

import re
import threading
from collections import Counter
from typing import Iterator

from .stemmer import PorterStemmer
from .stopwords import STOP_WORDS

__all__ = ["Analyzer", "default_analyzer", "tokenize", "analyze"]

_WORD = re.compile(r"[a-z0-9]+(?:'[a-z]+)?")


def tokenize(text: str) -> Iterator[str]:
    """Yield raw lower-cased word tokens from text."""
    for match in _WORD.finditer(text.lower()):
        yield match.group(0)


#: Sentinel distinguishing "use the default stemmer" from "no stemming".
_DEFAULT_STEMMER = PorterStemmer()


class Analyzer:
    """A configurable text-analysis chain: tokenize → stop → stem.

    ``stop_words`` may be None to disable stop-word removal;
    ``stemmer`` may be None to disable stemming.  The default instance
    mirrors the paper's pipeline.
    """

    #: Cap on memoized stems.  The default instance is shared by every
    #: workspace in the process, so an unbounded cache would grow with
    #: the union of all corpora ever tokenized.
    CACHE_LIMIT = 50_000

    def __init__(
        self,
        stop_words: frozenset[str] | None = STOP_WORDS,
        stemmer: PorterStemmer | None = _DEFAULT_STEMMER,
        min_length: int = 1,
        cache_limit: int = CACHE_LIMIT,
    ):
        if cache_limit < 1:
            raise ValueError("cache_limit must be at least 1")
        self.stop_words = stop_words
        self.stemmer = stemmer
        self.min_length = min_length
        self.cache_limit = cache_limit
        self._cache: dict[str, str] = {}
        #: Guards the stem cache: the default analyzer is shared across
        #: threads by the concurrent service, and unguarded dict writes
        #: during eviction could lose entries or resize mid-read.  Held
        #: only around lookups/stores — stemming itself is stateless and
        #: runs unlocked (a lost race recomputes the same stem).
        self._cache_lock = threading.Lock()

    def tokens(self, text: str) -> Iterator[str]:
        """Yield normalized terms from text."""
        for token in tokenize(text):
            if len(token) < self.min_length:
                continue
            if self.stop_words is not None and token in self.stop_words:
                continue
            yield self.stem_token(token)

    def stem_token(self, token: str) -> str:
        """Stem one already lower-cased token (with bounded caching)."""
        if self.stemmer is None:
            return token
        with self._cache_lock:
            cached = self._cache.get(token)
        if cached is not None:
            return cached
        stemmed = self.stemmer.stem(token)
        with self._cache_lock:
            while len(self._cache) >= self.cache_limit:
                # FIFO eviction: drop the oldest memoized stem.
                self._cache.pop(next(iter(self._cache)))
            self._cache.setdefault(token, stemmed)
        return stemmed

    @property
    def cache_size(self) -> int:
        """Number of memoized stems (bounded by ``cache_limit``)."""
        with self._cache_lock:
            return len(self._cache)

    def counts(self, text: str) -> Counter:
        """Term → frequency for a text value."""
        return Counter(self.tokens(text))


_DEFAULT = Analyzer()


def default_analyzer() -> Analyzer:
    """The shared default analysis chain (stop words + Porter stemming)."""
    return _DEFAULT


def analyze(text: str) -> list[str]:
    """Normalize text with the default analyzer, returning a list."""
    return list(_DEFAULT.tokens(text))
