"""Tokenization: splitting text values into word coordinates (§5).

"As in the traditional vector space model individual words in paragraphs
of text are split up and represented as coordinates."  The analyzer here
lower-cases, strips punctuation, drops stop words, and Porter-stems —
the improvements §5 enumerates.
"""

from __future__ import annotations

import re
from collections import Counter
from typing import Iterator

from .stemmer import PorterStemmer
from .stopwords import STOP_WORDS

__all__ = ["Analyzer", "default_analyzer", "tokenize", "analyze"]

_WORD = re.compile(r"[a-z0-9]+(?:'[a-z]+)?")


def tokenize(text: str) -> Iterator[str]:
    """Yield raw lower-cased word tokens from text."""
    for match in _WORD.finditer(text.lower()):
        yield match.group(0)


#: Sentinel distinguishing "use the default stemmer" from "no stemming".
_DEFAULT_STEMMER = PorterStemmer()


class Analyzer:
    """A configurable text-analysis chain: tokenize → stop → stem.

    ``stop_words`` may be None to disable stop-word removal;
    ``stemmer`` may be None to disable stemming.  The default instance
    mirrors the paper's pipeline.
    """

    def __init__(
        self,
        stop_words: frozenset[str] | None = STOP_WORDS,
        stemmer: PorterStemmer | None = _DEFAULT_STEMMER,
        min_length: int = 1,
    ):
        self.stop_words = stop_words
        self.stemmer = stemmer
        self.min_length = min_length
        self._cache: dict[str, str] = {}

    def tokens(self, text: str) -> Iterator[str]:
        """Yield normalized terms from text."""
        for token in tokenize(text):
            if len(token) < self.min_length:
                continue
            if self.stop_words is not None and token in self.stop_words:
                continue
            yield self.stem_token(token)

    def stem_token(self, token: str) -> str:
        """Stem one already lower-cased token (with caching)."""
        if self.stemmer is None:
            return token
        cached = self._cache.get(token)
        if cached is None:
            cached = self.stemmer.stem(token)
            self._cache[token] = cached
        return cached

    def counts(self, text: str) -> Counter:
        """Term → frequency for a text value."""
        return Counter(self.tokens(text))


_DEFAULT = Analyzer()


def default_analyzer() -> Analyzer:
    """The shared default analysis chain (stop words + Porter stemming)."""
    return _DEFAULT


def analyze(text: str) -> list[str]:
    """Normalize text with the default analyzer, returning a list."""
    return list(_DEFAULT.tokens(text))
