"""Top-k retrieval over an inverted index of weighted vectors."""

from __future__ import annotations

import heapq
from typing import Callable, Hashable, NamedTuple

from ..vsm.vector import SparseVector
from .inverted import InvertedIndex

__all__ = ["Hit", "top_k"]


class Hit(NamedTuple):
    """One retrieval result: an item and its dot-product score."""

    item: Hashable
    score: float


class _MaxStr:
    """A string that sorts in *reverse*.

    Heap entries are ``(score, _MaxStr(repr(item)), seq, item)`` on a
    min-heap keeping the k best, so ``heap[0]`` must be the *worst*
    retained hit: the lowest score, and among equal scores the largest
    repr.  Reversing the string's ordering makes the plain tuple
    comparison do exactly that.
    """

    __slots__ = ("value",)

    def __init__(self, value: str):
        self.value = value

    def __lt__(self, other: "_MaxStr") -> bool:
        return self.value > other.value


def top_k(
    index: InvertedIndex,
    query: SparseVector,
    k: int,
    exclude: Callable[[Hashable], bool] | None = None,
) -> list[Hit]:
    """The ``k`` items with the largest dot product against ``query``.

    Accumulates partial scores document-at-a-time over the postings of
    the query's non-zero coordinates, then heap-selects.  Ties break on
    the items' repr for determinism.  ``exclude`` filters items out
    during selection (e.g. the currently viewed item).

    Selection maintains a k-entry min-heap whose root is the worst hit
    kept so far; candidates that cannot beat it are dismissed on the
    score comparison alone, so their (surprisingly expensive) reprs are
    never computed and no filtered copy of the score table is built.
    """
    if k <= 0 or len(query) == 0:
        return []
    scores: dict[Hashable, float] = {}
    touched = 0
    for coord, q_weight in query.items():
        postings = index.postings(coord)
        touched += len(postings)
        for item, d_weight in postings.items():
            scores[item] = scores.get(item, 0.0) + q_weight * d_weight
    index.postings_touched += touched
    heap: list[tuple[float, _MaxStr, int, Hashable]] = []
    seq = 0
    for item, score in scores.items():
        if exclude is not None and exclude(item):
            continue
        if len(heap) < k:
            heapq.heappush(heap, (score, _MaxStr(repr(item)), seq, item))
        elif score > heap[0][0]:
            heapq.heapreplace(heap, (score, _MaxStr(repr(item)), seq, item))
        elif score == heap[0][0]:
            marker = _MaxStr(repr(item))
            if marker.value < heap[0][1].value:
                heapq.heapreplace(heap, (score, marker, seq, item))
        seq += 1
    ordered = sorted(heap, key=lambda entry: (-entry[0], entry[1].value))
    return [Hit(item, score) for score, _marker, _seq, item in ordered]
