"""Top-k retrieval over an inverted index of weighted vectors."""

from __future__ import annotations

import heapq
from typing import Callable, Hashable, NamedTuple

from ..vsm.vector import SparseVector
from .inverted import InvertedIndex

__all__ = ["Hit", "top_k"]


class Hit(NamedTuple):
    """One retrieval result: an item and its dot-product score."""

    item: Hashable
    score: float


def top_k(
    index: InvertedIndex,
    query: SparseVector,
    k: int,
    exclude: Callable[[Hashable], bool] | None = None,
) -> list[Hit]:
    """The ``k`` items with the largest dot product against ``query``.

    Accumulates partial scores document-at-a-time over the postings of
    the query's non-zero coordinates, then heap-selects.  Ties break on
    the items' repr for determinism.  ``exclude`` filters items out
    before selection (e.g. the currently viewed item).
    """
    if k <= 0 or len(query) == 0:
        return []
    scores: dict[Hashable, float] = {}
    for coord, q_weight in query.items():
        for item, d_weight in index.postings(coord).items():
            scores[item] = scores.get(item, 0.0) + q_weight * d_weight
    if exclude is not None:
        scores = {item: s for item, s in scores.items() if not exclude(item)}
    best = heapq.nsmallest(
        k, scores.items(), key=lambda kv: (-kv[1], repr(kv[0]))
    )
    return [Hit(item, score) for item, score in best]
