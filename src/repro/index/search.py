"""Top-k retrieval over an inverted index of weighted vectors.

Two strategies over the same postings:

* :func:`top_k` — exhaustive term-at-a-time accumulation followed by
  heap selection; touches every posting of every query coordinate.
* :func:`pruned_top_k` — WAND-style (maxscore) threshold pruning: each
  coordinate carries a score ceiling (query weight × the coordinate's
  cached max posting weight), and once the remaining coordinates'
  combined ceiling falls *strictly* below the running k-th best partial
  score, no unseen document can reach the top k — accumulation switches
  to updating only the known candidates.

The pruned path returns *exactly* what the exhaustive path returns —
scores, ties, and repr tie-breaking included.  Two details carry the
bit-for-bit guarantee: coordinates are processed in **query order**, not
ceiling order, so every document's float additions happen in the same
sequence as the exhaustive scan (and a same-order prefix sum of
non-negative floats never exceeds its full sum, making the running
threshold sound with no epsilon); and the candidate set closes only on
*strict* inequality, so ties at the threshold — which repr tie-breaking
arbitrates — are never pruned.  Negative query or posting weights break
the monotone-partial-score argument, so those queries transparently
fall back to the exhaustive scan.
"""

from __future__ import annotations

import heapq
from typing import Callable, Hashable, NamedTuple

from ..vsm.vector import SparseVector
from .inverted import InvertedIndex

__all__ = ["Hit", "top_k", "pruned_top_k"]


class Hit(NamedTuple):
    """One retrieval result: an item and its dot-product score."""

    item: Hashable
    score: float


class _MaxStr:
    """A string that sorts in *reverse*.

    Heap entries are ``(score, _MaxStr(repr(item)), seq, item)`` on a
    min-heap keeping the k best, so ``heap[0]`` must be the *worst*
    retained hit: the lowest score, and among equal scores the largest
    repr.  Reversing the string's ordering makes the plain tuple
    comparison do exactly that.
    """

    __slots__ = ("value",)

    def __init__(self, value: str):
        self.value = value

    def __lt__(self, other: "_MaxStr") -> bool:
        return self.value > other.value


def top_k(
    index: InvertedIndex,
    query: SparseVector,
    k: int,
    exclude: Callable[[Hashable], bool] | None = None,
) -> list[Hit]:
    """The ``k`` items with the largest dot product against ``query``.

    Accumulates partial scores document-at-a-time over the postings of
    the query's non-zero coordinates, then heap-selects.  Ties break on
    the items' repr for determinism.  ``exclude`` filters items out
    during selection (e.g. the currently viewed item).

    Selection maintains a k-entry min-heap whose root is the worst hit
    kept so far; candidates that cannot beat it are dismissed on the
    score comparison alone, so their (surprisingly expensive) reprs are
    never computed and no filtered copy of the score table is built.
    """
    if k <= 0 or len(query) == 0:
        return []
    scores: dict[Hashable, float] = {}
    touched = 0
    for coord, q_weight in query.items():
        postings = index.postings(coord)
        touched += len(postings)
        for item, d_weight in postings.items():
            scores[item] = scores.get(item, 0.0) + q_weight * d_weight
    index.postings_touched += touched
    return _select(scores, k, exclude)


def _select(
    scores: dict[Hashable, float],
    k: int,
    exclude: Callable[[Hashable], bool] | None,
) -> list[Hit]:
    """Heap-select the k best (score desc, repr asc) from a score table.

    The kept set is canonical — the k smallest entries under
    ``(-score, repr)`` — so the result does not depend on the table's
    iteration order; both retrieval strategies share this exact code.
    """
    heap: list[tuple[float, _MaxStr, int, Hashable]] = []
    seq = 0
    for item, score in scores.items():
        if exclude is not None and exclude(item):
            continue
        if len(heap) < k:
            heapq.heappush(heap, (score, _MaxStr(repr(item)), seq, item))
        elif score > heap[0][0]:
            heapq.heapreplace(heap, (score, _MaxStr(repr(item)), seq, item))
        elif score == heap[0][0]:
            marker = _MaxStr(repr(item))
            if marker.value < heap[0][1].value:
                heapq.heapreplace(heap, (score, marker, seq, item))
        seq += 1
    ordered = sorted(heap, key=lambda entry: (-entry[0], entry[1].value))
    return [Hit(item, score) for score, _marker, _seq, item in ordered]


def pruned_top_k(
    index: InvertedIndex,
    query: SparseVector,
    k: int,
    exclude: Callable[[Hashable], bool] | None = None,
) -> list[Hit]:
    """Exactly :func:`top_k`, with maxscore threshold pruning.

    Invariant (pinned by ``tests/index/test_pruned_topk.py``): a
    document unseen after coordinate ``i`` can score at most
    ``suffix_ub[i+1]`` (the remaining coordinates' summed ceilings);
    once that is *strictly* below the k-th best partial score ``L``
    among eligible candidates, its final score is strictly below the
    final k-th score (same-order partials only grow), so it loses every
    comparison — including repr tie-breaks, which only arbitrate
    *equal* scores.  The suffix side of the comparison is inflated by
    ``_SUM_ORDER_GUARD`` because the ceiling sum runs right-to-left
    while a document's scan-order sum runs left-to-right, and float
    addition of non-negative terms in different orders can differ by a
    few ulps.
    """
    if k <= 0 or len(query) == 0:
        return []
    coords: list[tuple[float, float, dict[Hashable, float]]] = []
    for coord, q_weight in query.items():
        postings = index.postings(coord)
        if not postings:
            continue
        low, high = index.weight_bounds(coord)
        if q_weight < 0 or low < 0:
            # Scores are no longer monotone in the number of processed
            # coordinates; pruning would be unsound.
            return top_k(index, query, k, exclude=exclude)
        coords.append((q_weight * high, q_weight, postings))
    n = len(coords)
    suffix_ub = [0.0] * (n + 1)
    for i in range(n - 1, -1, -1):
        suffix_ub[i] = suffix_ub[i + 1] + coords[i][0]
    scores: dict[Hashable, float] = {}
    eligible: dict[Hashable, bool] = {}
    touched = 0
    pruning = False
    candidates: list[Hashable] = []
    for i, (_ub, q_weight, postings) in enumerate(coords):
        if pruning:
            # Phase 2: no unseen document can reach the top k; only the
            # known candidates accumulate.  Probe whichever side of the
            # join is smaller.
            if len(candidates) <= len(postings):
                touched += len(candidates)
                for item in candidates:
                    d_weight = postings.get(item)
                    if d_weight is not None:
                        scores[item] += q_weight * d_weight
            else:
                touched += len(postings)
                for item, d_weight in postings.items():
                    if item in scores:
                        scores[item] += q_weight * d_weight
            continue
        touched += len(postings)
        for item, d_weight in postings.items():
            scores[item] = scores.get(item, 0.0) + q_weight * d_weight
        if i + 1 >= n or len(scores) < k:
            continue
        threshold = _kth_partial(scores, k, exclude, eligible)
        if (
            threshold is not None
            and suffix_ub[i + 1] * _SUM_ORDER_GUARD < threshold
        ):
            pruning = True
            candidates = list(scores)
    index.postings_touched += touched
    return _select(scores, k, exclude)


#: Relative slack covering summation-order float drift between the
#: right-to-left ceiling sums and a document's left-to-right term sums.
#: Non-negative float sums of m terms agree to within ~m·2⁻⁵³
#: relatively, so 1e-9 is safe for queries up to millions of
#: coordinates while costing essentially no pruning.
_SUM_ORDER_GUARD = 1.0 + 1e-9


def _kth_partial(
    scores: dict[Hashable, float],
    k: int,
    exclude: Callable[[Hashable], bool] | None,
    eligible: dict[Hashable, bool],
) -> float | None:
    """The k-th largest partial score among non-excluded candidates.

    None when fewer than k candidates are eligible (no pruning then —
    which is also what keeps ``k >= corpus`` exact).  Exclusion verdicts
    are memoized so the filter callable runs once per document.
    """
    if exclude is None:
        values = list(scores.values())
    else:
        values = []
        for item, score in scores.items():
            verdict = eligible.get(item)
            if verdict is None:
                verdict = not exclude(item)
                eligible[item] = verdict
            if verdict:
                values.append(score)
    if len(values) < k:
        return None
    return heapq.nlargest(k, values)[-1]
