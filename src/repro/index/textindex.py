"""Boolean full-text index over a graph's string values.

§4.2: "the query engine has been extended to uniformly query an external
index to support text in documents."  This is that external index: it
maps analyzed tokens to the items whose literal values contain them,
both corpus-wide and per property (so "words in the body or in the
title" can be offered as separate refinement axes, §3.2).
"""

from __future__ import annotations

from collections import Counter, defaultdict

from ..rdf.graph import Graph
from ..rdf.terms import Literal, Node, Resource
from ..rdf.vocab import MAGNET
from ..vsm.tokenizer import Analyzer, default_analyzer

__all__ = ["TextIndex"]

_SKIP = frozenset(
    {MAGNET.valueType, MAGNET.compose, MAGNET.hidden, MAGNET.importantProperty}
)


class TextIndex:
    """Token → item postings, overall and per property."""

    def __init__(self, graph: Graph, analyzer: Analyzer | None = None):
        self.graph = graph
        self.analyzer = analyzer if analyzer is not None else default_analyzer()
        self._overall: dict[str, set[Node]] = defaultdict(set)
        self._by_property: dict[Resource, dict[str, set[Node]]] = defaultdict(
            lambda: defaultdict(set)
        )
        #: item -> the (property, token) pairs it currently posts under;
        #: consulted on reindex so stale postings are withdrawn first.
        self._posted: dict[Node, set[tuple[Resource, str]]] = {}
        # Copy-on-write bookkeeping for clones (see clone_for).
        self._cow = False
        self._owned_overall: set[str] | None = None
        self._owned_props: set[Resource] | None = None
        self._owned_prop_tokens: set[tuple[Resource, str]] | None = None

    def clone_for(self, graph: Graph) -> "TextIndex":
        """A mutable copy-on-write successor over ``graph``.

        Postings sets and per-property sub-indexes are shared with this
        index until first mutated, so unindexing an item mid-epoch never
        mutates the postings a pinned older epoch still resolves — the
        aliasing bug the two-epoch regression test pins.
        """
        clone = TextIndex.__new__(TextIndex)
        clone.graph = graph
        clone.analyzer = self.analyzer
        clone._overall = defaultdict(set, self._overall)
        clone._by_property = defaultdict(lambda: defaultdict(set), self._by_property)
        # _posted value sets are replaced wholesale on reindex, never
        # mutated in place, so sharing them is safe.
        clone._posted = dict(self._posted)
        clone._cow = True
        clone._owned_overall = set()
        clone._owned_props = set()
        clone._owned_prop_tokens = set()
        return clone

    def _own_postings(self, prop: Resource, token: str) -> None:
        """Unshare every structure one (prop, token) posting lives in."""
        if token not in self._owned_overall:
            self._owned_overall.add(token)
            leaf = self._overall.get(token)
            if leaf is not None:
                self._overall[token] = set(leaf)
        if prop not in self._owned_props:
            self._owned_props.add(prop)
            sub = self._by_property.get(prop)
            if sub is not None:
                self._by_property[prop] = defaultdict(set, sub)
        key = (prop, token)
        if key not in self._owned_prop_tokens:
            self._owned_prop_tokens.add(key)
            sub = self._by_property.get(prop)
            if sub is not None:
                leaf = sub.get(token)
                if leaf is not None:
                    sub[token] = set(leaf)

    def index_item(self, item: Node) -> None:
        """Index every string value of one item.

        Re-indexing an already-indexed item first withdraws its previous
        postings, so the index reflects the item's *current* values: a
        mutated item stops matching tokens it no longer contains.
        """
        if item in self._posted:
            self.unindex_item(item)
        posted: set[tuple[Resource, str]] = set()
        for prop, values in self.graph.properties_of(item).items():
            if prop in _SKIP:
                continue
            for value in values:
                if not isinstance(value, Literal):
                    continue
                if value.is_numeric or value.is_temporal:
                    continue
                for token in self.analyzer.tokens(value.lexical):
                    if self._cow:
                        self._own_postings(prop, token)
                    self._overall[token].add(item)
                    self._by_property[prop][token].add(item)
                    posted.add((prop, token))
        self._posted[item] = posted

    def unindex_item(self, item: Node) -> bool:
        """Withdraw an item from every postings list it appears in.

        Returns whether the item was indexed.  Emptied postings lists
        (and per-property sub-indexes) are dropped entirely so the
        vocabulary and ``text_properties`` shrink with the data.
        """
        posted = self._posted.pop(item, None)
        if posted is None:
            return False
        for prop, token in posted:
            if self._cow:
                self._own_postings(prop, token)
            overall = self._overall.get(token)
            if overall is not None:
                overall.discard(item)
                if not overall:
                    del self._overall[token]
            by_prop = self._by_property.get(prop)
            if by_prop is not None:
                postings = by_prop.get(token)
                if postings is not None:
                    postings.discard(item)
                    if not postings:
                        del by_prop[token]
                if not by_prop:
                    del self._by_property[prop]
        return True

    def index_items(self, items) -> int:
        """Index many items; returns the count."""
        count = 0
        for item in items:
            self.index_item(item)
            count += 1
        return count

    @property
    def indexed_items(self) -> set[Node]:
        return set(self._posted)

    # ------------------------------------------------------------------
    # Queries (boolean AND semantics, like the toolbar keyword box)
    # ------------------------------------------------------------------

    def search(self, text: str, within: Resource | None = None) -> set[Node]:
        """Items containing *all* the query's tokens.

        ``within`` restricts matching to one property's values ("words in
        the title").  An all-stop-word or empty query matches nothing.
        """
        tokens = list(self.analyzer.tokens(text))
        if not tokens:
            return set()
        source = self._by_property.get(within, {}) if within else self._overall
        result: set[Node] | None = None
        for token in tokens:
            postings = source.get(token, set())
            result = set(postings) if result is None else (result & postings)
            if not result:
                return set()
        return result or set()

    def items_with_token(self, token: str, within: Resource | None = None) -> set[Node]:
        """Items containing one already-analyzed token."""
        source = self._by_property.get(within, {}) if within else self._overall
        return set(source.get(token, ()))

    def token_frequencies(self, within: Resource | None = None) -> Counter:
        """token → document frequency, overall or for one property."""
        source = self._by_property.get(within, {}) if within else self._overall
        return Counter({token: len(items) for token, items in source.items()})

    def text_properties(self) -> list[Resource]:
        """Properties that carried at least one indexed string value."""
        return sorted(self._by_property, key=lambda p: p.uri)

    def vocabulary_size(self) -> int:
        return len(self._overall)

    def __repr__(self) -> str:
        return (
            f"<TextIndex items={len(self._posted)} "
            f"vocab={len(self._overall)}>"
        )
