"""Index substrate: the Lucene substitute (inverted index, vector store,
top-k retrieval, boolean full-text index)."""

from .inverted import InvertedIndex
from .ranking import LengthPrior, Ranker
from .search import Hit, top_k
from .store import VectorStore
from .textindex import TextIndex

__all__ = [
    "InvertedIndex",
    "LengthPrior",
    "Ranker",
    "Hit",
    "top_k",
    "VectorStore",
    "TextIndex",
]
