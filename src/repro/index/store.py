"""VectorStore: the vector-space database of §5.2.

Wraps a :class:`~repro.vsm.model.VectorSpaceModel` with an inverted
index over its *weighted* vectors so similarity searches ("Similar by
Content", collection-to-item retrieval) run in sublinear time.  Because
weights depend on corpus statistics, the index records the stats version
it was built against — mirroring how Magnet "indexes the data in advance
(as it arrives)" yet always ranks with current idf values.

Maintenance is incremental when it can be.  The store subscribes to the
model's membership changes and, at refresh time, measures how far corpus
idf values have drifted since the index was last built exactly.  Below
``drift_threshold`` only the changed items are (re)indexed — unchanged
postings keep their build-time weights, which differ from current
weights by at most the measured drift.  At or above the threshold the
whole index is rebuilt with exact current weights.  A threshold of
``0.0`` therefore recovers the historical rebuild-on-every-change
behavior exactly.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Callable, Sequence

from ..obs import NULL_OBS, Observability
from ..perf.stats import IndexMaintenanceStats
from ..rdf.terms import Node
from ..vsm.model import VectorSpaceModel
from ..vsm.vector import SparseVector
from ..vsm.weighting import idf
from .inverted import InvertedIndex
from .search import Hit, pruned_top_k, top_k

__all__ = ["VectorStore"]

#: Fixed buckets for postings examined per top-k search.
_POSTINGS_BUCKETS = (10, 100, 1_000, 10_000, 100_000)

#: Small enough that small corpora always rebuild exactly (one document
#: among a few hundred shifts every idf by more than this), large enough
#: that paper-scale corpora (thousands of items) absorb single-item
#: arrivals incrementally.
DEFAULT_DRIFT_THRESHOLD = 0.01


class VectorStore:
    """Similarity search over a model's items."""

    def __init__(
        self,
        model: VectorSpaceModel,
        drift_threshold: float = DEFAULT_DRIFT_THRESHOLD,
        obs: Observability | None = None,
        prune_top_k: bool = False,
        exact: bool = False,
    ):
        self.model = model
        self.drift_threshold = drift_threshold
        #: When set, incremental updates are taken only at *zero* idf
        #: drift — where stored weights provably equal a fresh build's —
        #: so the index is bit-identical to a cold rebuild after every
        #: refresh.  Epoch snapshots run in this mode: the byte-parity
        #: oracle (`as_of` at the watermark) demands it.
        self.exact = exact
        #: When set, searches use WAND-style threshold pruning
        #: (:func:`repro.index.search.pruned_top_k`).  Results are
        #: identical to the exhaustive scan; only the postings-touched
        #: telemetry shrinks — which is why the default stays off (the
        #: existing telemetry tests pin exhaustive counts).
        self.prune_top_k = prune_top_k
        self.obs = obs if obs is not None else NULL_OBS
        self._index = InvertedIndex()
        self._built_version = -1
        #: corpus size at the last *exact* build (drift baseline)
        self._built_num_docs = 0
        #: coord -> net document-frequency change since the last build
        self._df_delta: Counter = Counter()
        #: item -> last membership op ("add"/"remove") since last refresh
        self._pending: dict[Node, str] = {}
        #: accumulated drift already *baked into* postings by previous
        #: incremental updates.  After an incremental refresh the index
        #: mixes build-time weights with just-reindexed current weights;
        #: measuring later drift only against the build baseline would
        #: understate how stale the reindexed items have become.  The
        #: refresh gate therefore bounds the total: measured + baked.
        self._stale_drift = 0.0
        self.maintenance = IndexMaintenanceStats()
        model.add_listener(self._on_model_change)

    @classmethod
    def advance_from(
        cls,
        prior: "VectorStore",
        model: VectorSpaceModel,
        obs: Observability | None = None,
    ) -> "VectorStore":
        """Seed a store for ``model`` from a refreshed prior store.

        ``model`` must be a clone of ``prior.model`` *before* any delta
        is applied: the new store registers its listener here, so every
        subsequent membership change lands in its pending set.  The
        prior is refreshed first; seeding assumes its postings are exact
        at its current statistics, which ``exact=True`` guarantees after
        every refresh (epoch folds only advance exact stores).
        """
        prior.refresh()
        store = cls.__new__(cls)
        store.model = model
        store.drift_threshold = prior.drift_threshold
        store.exact = prior.exact
        store.prune_top_k = prior.prune_top_k
        store.obs = obs if obs is not None else prior.obs
        store._index = prior._index.copy()
        store._built_version = model.stats.version
        store._built_num_docs = model.stats.num_docs
        store._df_delta = Counter()
        store._pending = {}
        store._stale_drift = 0.0
        store.maintenance = IndexMaintenanceStats()
        model.add_listener(store._on_model_change)
        return store

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def _on_model_change(self, op: str, item: Node, coords: tuple) -> None:
        self._pending[item] = op
        delta = 1 if op == "add" else -1
        df_delta = self._df_delta
        for coord in coords:
            net = df_delta[coord] + delta
            if net:
                df_delta[coord] = net
            else:
                # A retract/assert churn loop would otherwise grow the
                # counter without bound with dead zero entries.
                del df_delta[coord]

    def _idf_drift(self) -> float:
        """Worst-case |Δidf| between build-time and current statistics.

        Every coordinate's idf moves by ``|log(N/N₀)|`` when only the
        corpus size changes, so that is the floor; coordinates whose
        document frequency also changed are checked individually.
        """
        stats = self.model.stats
        current_n = stats.num_docs
        built_n = self._built_num_docs
        if built_n <= 0 or current_n <= 0:
            return math.inf
        drift = abs(math.log(current_n / built_n))
        for coord, delta in self._df_delta.items():
            if not delta:
                continue
            current_df = stats.doc_frequency(coord)
            built_df = current_df - delta
            if built_df <= 0 or current_df <= 0:
                # The coordinate was born (or died) since the build:
                # every document carrying it is pending and will be
                # reindexed with exact weights, so no stale posting can
                # depend on its idf.
                continue
            drift = max(
                drift,
                abs(idf(current_n, current_df) - idf(built_n, built_df)),
            )
        return drift

    def refresh(self) -> bool:
        """Bring the index up to date; True when any work was done.

        Chooses between a delta update (only items whose membership
        changed are touched) and an exact full rebuild, based on how far
        idf values have drifted since the last exact build.
        """
        if self._built_version == self.model.stats.version and not self._pending:
            return False
        drift = self._idf_drift() if self._pending else math.inf
        if self.exact:
            # Zero measured drift means every stored weight provably
            # equals what a fresh build would compute (N unchanged, all
            # surviving coordinates at unchanged document frequency), so
            # the delta update is bit-identical to a rebuild.
            incremental = bool(self._pending) and drift == 0.0
        else:
            incremental = (
                bool(self._pending)
                and drift + self._stale_drift < self.drift_threshold
            )
        with self.obs.tracer.span(
            "store.refresh",
            decision="incremental" if incremental else "rebuild",
            pending=len(self._pending),
        ):
            if incremental:
                self._apply_pending(drift)
            else:
                self._rebuild()
        return True

    def rebuild(self) -> None:
        """Force an exact rebuild at current corpus statistics."""
        self._rebuild()

    def _apply_pending(self, drift: float = 0.0) -> None:
        model = self.model
        index = self._index
        reindexed = 0
        for item, op in self._pending.items():
            if op == "add" and item in model:
                index.add(item, model.vector(item).items())
                reindexed += 1
            else:
                index.remove(item)
        self._pending.clear()
        self._built_version = model.stats.version
        if self.exact:
            # drift == 0.0 here, so the index is exact at *current*
            # statistics — move the baseline forward accordingly.
            self._built_num_docs = model.stats.num_docs
            self._df_delta.clear()
        else:
            self._stale_drift += drift
        self.maintenance.incremental_updates += 1
        self.maintenance.items_reindexed += reindexed

    def _rebuild(self) -> None:
        model = self.model
        self._index.clear()
        count = self._index.bulk_load(
            (item, model.vector(item).items()) for item in model.items
        )
        self._built_version = model.stats.version
        self._built_num_docs = model.stats.num_docs
        self._df_delta.clear()
        self._pending.clear()
        self._stale_drift = 0.0
        self.maintenance.full_rebuilds += 1
        self.maintenance.items_reindexed += count

    @property
    def index(self) -> InvertedIndex:
        """The (refreshed) underlying inverted index."""
        self.refresh()
        return self._index

    # ------------------------------------------------------------------
    # Search entry points
    # ------------------------------------------------------------------

    @property
    def postings_touched(self) -> int:
        """Total postings examined by searches so far (telemetry)."""
        return self._index.postings_touched

    def search(
        self,
        query: SparseVector,
        k: int = 10,
        exclude: Callable[[Node], bool] | None = None,
    ) -> list[Hit]:
        """Top-k items by dot product against an arbitrary query vector."""
        index = self.index
        before = index.postings_touched
        with self.obs.tracer.span("store.search", k=k) as span:
            if self.prune_top_k:
                hits = pruned_top_k(index, query, k, exclude=exclude)
                span.set_tag("pruned", True)
            else:
                hits = top_k(index, query, k, exclude=exclude)
            touched = index.postings_touched - before
            span.set_tag("postings", touched)
        self.obs.metrics.histogram(
            "index.postings_per_search", _POSTINGS_BUCKETS
        ).observe(touched)
        return hits

    def similar_to_item(self, item: Node, k: int = 10) -> list[Hit]:
        """Items most similar to one item, excluding the item itself.

        This backs the "Similar by Content (Overall)" advisor for single
        items (§4.1) — similarity is "fuzzy", covering both structural
        (object) and textual (word) coordinates at once.
        """
        query = self.model.vector(item)
        return self.search(query, k, exclude=lambda other: other == item)

    def similar_to_collection(
        self, items: Sequence[Node], k: int = 10, include_members: bool = False
    ) -> list[Hit]:
        """Items most similar to a collection's "average member" (§5.3).

        This backs the collection-flavored "Similar by Content" analyst:
        "more items similar to the items in the collection".  By default
        current members are excluded so the advisor suggests *new* items.
        """
        query = self.model.centroid(items)
        member_set = set(items)
        exclude = None if include_members else (lambda item: item in member_set)
        return self.search(query, k, exclude=exclude)

    def search_text(self, text: str, k: int = 10) -> list[Hit]:
        """Fuzzy ranked keyword search via the model's text vector."""
        return self.search(self.model.text_vector(text), k)

    def __len__(self) -> int:
        return len(self.index)

    def __repr__(self) -> str:
        return f"<VectorStore over {self.model!r}>"
