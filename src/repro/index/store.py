"""VectorStore: the vector-space database of §5.2.

Wraps a :class:`~repro.vsm.model.VectorSpaceModel` with an inverted
index over its *weighted* vectors so similarity searches ("Similar by
Content", collection-to-item retrieval) run in sublinear time.  Because
weights depend on corpus statistics, the index records the stats version
it was built against and transparently rebuilds when stale — mirroring
how Magnet "indexes the data in advance (as it arrives)" yet always
ranks with current idf values.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..rdf.terms import Node
from ..vsm.model import VectorSpaceModel
from ..vsm.vector import SparseVector
from .inverted import InvertedIndex
from .search import Hit, top_k

__all__ = ["VectorStore"]


class VectorStore:
    """Similarity search over a model's items."""

    def __init__(self, model: VectorSpaceModel):
        self.model = model
        self._index = InvertedIndex()
        self._built_version = -1

    def refresh(self) -> bool:
        """Rebuild the index if corpus statistics moved; True if rebuilt."""
        if self._built_version == self.model.stats.version:
            return False
        self._index.clear()
        for item in self.model.items:
            self._index.add(item, self.model.vector(item).items())
        self._built_version = self.model.stats.version
        return True

    @property
    def index(self) -> InvertedIndex:
        """The (refreshed) underlying inverted index."""
        self.refresh()
        return self._index

    # ------------------------------------------------------------------
    # Search entry points
    # ------------------------------------------------------------------

    def search(
        self,
        query: SparseVector,
        k: int = 10,
        exclude: Callable[[Node], bool] | None = None,
    ) -> list[Hit]:
        """Top-k items by dot product against an arbitrary query vector."""
        return top_k(self.index, query, k, exclude=exclude)

    def similar_to_item(self, item: Node, k: int = 10) -> list[Hit]:
        """Items most similar to one item, excluding the item itself.

        This backs the "Similar by Content (Overall)" advisor for single
        items (§4.1) — similarity is "fuzzy", covering both structural
        (object) and textual (word) coordinates at once.
        """
        query = self.model.vector(item)
        return self.search(query, k, exclude=lambda other: other == item)

    def similar_to_collection(
        self, items: Sequence[Node], k: int = 10, include_members: bool = False
    ) -> list[Hit]:
        """Items most similar to a collection's "average member" (§5.3).

        This backs the collection-flavored "Similar by Content" analyst:
        "more items similar to the items in the collection".  By default
        current members are excluded so the advisor suggests *new* items.
        """
        query = self.model.centroid(items)
        member_set = set(items)
        exclude = None if include_members else (lambda item: item in member_set)
        return self.search(query, k, exclude=exclude)

    def search_text(self, text: str, k: int = 10) -> list[Hit]:
        """Fuzzy ranked keyword search via the model's text vector."""
        return self.search(self.model.text_vector(text), k)

    def __len__(self) -> int:
        return len(self.index)

    def __repr__(self) -> str:
        return f"<VectorStore over {self.model!r}>"
