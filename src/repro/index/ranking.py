"""Result ranking and reordering (§6.2's noted extension).

Magnet's boolean query engine returns unranked sets — the paper calls
the absence of document reordering its "only weakness ... compared to
other systems" on text-only INEX topics, noting that "as shown by Kamps
et al., biasing results to favor large documents can improve such
queries since the results are otherwise swamped by significant numbers
of small documents.  Such improved results can be directly extended to
Magnet."

This module is that extension: it reorders a boolean result set by
vector-space similarity to the query, optionally biased by a
document-length prior.
"""

from __future__ import annotations

import math
from typing import Sequence

from ..rdf.terms import Literal, Node, Resource
from ..vsm.model import VectorSpaceModel
from ..vsm.vector import SparseVector
from .search import Hit

__all__ = ["LengthPrior", "Ranker"]


class LengthPrior:
    """A per-item prior favoring larger documents (Kamps et al.).

    'Length' is the total token count across an item's text attributes;
    the prior is ``log(1 + length)`` scaled into [0, 1] over the corpus,
    so it nudges ties rather than overriding topical similarity.
    """

    def __init__(self, model: VectorSpaceModel, strength: float = 0.2):
        if not 0.0 <= strength <= 1.0:
            raise ValueError("strength must be within [0, 1]")
        self.model = model
        self.strength = strength
        self._lengths: dict[Node, float] = {}
        self._max_log = 0.0

    def _length(self, item: Node) -> float:
        cached = self._lengths.get(item)
        if cached is not None:
            return cached
        total = 0
        for value in _text_values(self.model, item):
            total += sum(1 for _ in self.model.analyzer.tokens(value))
        self._lengths[item] = float(total)
        return float(total)

    def prepare(self, items: Sequence[Node]) -> None:
        """Precompute lengths so the prior is scaled over this pool."""
        logs = [math.log1p(self._length(item)) for item in items]
        self._max_log = max(logs) if logs else 0.0

    def score(self, item: Node) -> float:
        """The prior in [0, strength] for one item."""
        if self._max_log == 0.0:
            return 0.0
        return self.strength * math.log1p(self._length(item)) / self._max_log


def _text_values(model: VectorSpaceModel, item: Node):
    for _prop, values in model.graph.properties_of(item).items():
        for value in values:
            if isinstance(value, Literal) and not (
                value.is_numeric or value.is_temporal
            ):
                yield value.lexical


class Ranker:
    """Orders boolean result sets by similarity to the query."""

    def __init__(
        self,
        model: VectorSpaceModel,
        length_prior: LengthPrior | None = None,
    ):
        self.model = model
        self.length_prior = length_prior

    def rank(
        self, items: Sequence[Node], query: SparseVector
    ) -> list[Hit]:
        """All items, best first, scored against a query vector.

        Items outside the model score only their prior.  Ties break on
        the item's N-Triples form for determinism.
        """
        if self.length_prior is not None:
            self.length_prior.prepare(items)
        hits = []
        for item in items:
            score = 0.0
            if item in self.model:
                score = self.model.vector(item).dot(query)
            if self.length_prior is not None:
                score += self.length_prior.score(item)
            hits.append(Hit(item, score))
        hits.sort(key=lambda hit: (-hit.score, hit.item.n3()))
        return hits

    def rank_for_text(self, items: Sequence[Node], text: str) -> list[Hit]:
        """Rank a result set against a keyword query."""
        return self.rank(items, self.model.text_vector(text))

    def rank_for_pairs(
        self,
        items: Sequence[Node],
        pairs: Sequence[tuple[Resource, Node]],
    ) -> list[Hit]:
        """Rank against explicit (property, value) constraints."""
        return self.rank(items, self.model.pair_vector(pairs))

    def __repr__(self) -> str:
        prior = "with length prior" if self.length_prior else "no prior"
        return f"<Ranker over {self.model!r} ({prior})>"
