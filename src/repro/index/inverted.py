"""A generic inverted index: coordinate → postings list.

This is the storage core of the "Lucene" substitute (§5.2 stores item
vectors "in a vector-space database (the Lucene text search engine is
used for this purpose)").  Postings map an item to its weight on the
coordinate, so a dot-product top-k search only touches documents sharing
at least one coordinate with the query.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator

__all__ = ["InvertedIndex"]


class InvertedIndex:
    """Maps coordinates to {item: weight} postings."""

    def __init__(self):
        self._postings: dict[Hashable, dict[Hashable, float]] = {}
        self._doc_coords: dict[Hashable, list[Hashable]] = {}
        #: coord -> (min weight, max weight), computed lazily and kept
        #: exactly: inserts widen the cached bounds, removals (which can
        #: shrink the true bounds) evict the entry.
        self._weight_bounds: dict[Hashable, tuple[float, float]] = {}
        #: postings entries examined by retrieval (bumped by ``top_k``);
        #: survives :meth:`clear` so rebuilds don't erase the telemetry.
        self.postings_touched = 0

    def copy(self) -> "InvertedIndex":
        """An independent copy (postings and coord lists are duplicated).

        Seeds the next epoch's index so incremental maintenance can
        proceed without touching the published one.  The telemetry
        counter starts at zero — it belongs to the instance, not the
        data.
        """
        clone = InvertedIndex()
        clone._postings = {
            coord: dict(postings) for coord, postings in self._postings.items()
        }
        clone._doc_coords = {
            item: list(coords) for item, coords in self._doc_coords.items()
        }
        clone._weight_bounds = dict(self._weight_bounds)
        return clone

    def add(self, item: Hashable, entries: Iterable[tuple[Hashable, float]]) -> None:
        """Insert a document's (coordinate, weight) pairs."""
        if item in self._doc_coords:
            self.remove(item)
        coords = []
        bounds = self._weight_bounds
        for coord, weight in entries:
            if not weight:
                continue
            self._postings.setdefault(coord, {})[item] = weight
            cached = bounds.get(coord)
            if cached is not None:
                bounds[coord] = (
                    min(cached[0], weight),
                    max(cached[1], weight),
                )
            coords.append(coord)
        self._doc_coords[item] = coords

    def bulk_load(
        self, documents: Iterable[tuple[Hashable, Iterable[tuple[Hashable, float]]]]
    ) -> int:
        """Insert many documents at once; returns the count loaded.

        The fast path for full rebuilds: inlines :meth:`add` without the
        per-item prior-state check (callers clear or start empty), which
        matters when reloading thousands of documents.
        """
        postings = self._postings
        doc_coords = self._doc_coords
        bounds = self._weight_bounds
        count = 0
        for item, entries in documents:
            if item in doc_coords:
                self.remove(item)
            coords = []
            for coord, weight in entries:
                if not weight:
                    continue
                bucket = postings.get(coord)
                if bucket is None:
                    bucket = postings[coord] = {}
                bucket[item] = weight
                cached = bounds.get(coord)
                if cached is not None:
                    bounds[coord] = (
                        min(cached[0], weight),
                        max(cached[1], weight),
                    )
                coords.append(coord)
            doc_coords[item] = coords
            count += 1
        return count

    def remove(self, item: Hashable) -> bool:
        """Drop a document from every postings list it appears in."""
        coords = self._doc_coords.pop(item, None)
        if coords is None:
            return False
        for coord in coords:
            postings = self._postings.get(coord)
            if postings is None:
                continue
            postings.pop(item, None)
            self._weight_bounds.pop(coord, None)
            if not postings:
                del self._postings[coord]
        return True

    def postings(self, coord: Hashable) -> dict[Hashable, float]:
        """The {item: weight} postings of a coordinate (live view)."""
        return self._postings.get(coord, {})

    def weight_bounds(self, coord: Hashable) -> tuple[float, float]:
        """(min, max) posting weight of a coordinate, cached exactly.

        The max bound is what WAND-style pruning needs for its per-term
        score ceilings; the min bound lets it verify the monotonicity
        precondition (no negative weights).  Empty postings bound as
        ``(0.0, 0.0)``.
        """
        cached = self._weight_bounds.get(coord)
        if cached is not None:
            return cached
        postings = self._postings.get(coord)
        if not postings:
            return (0.0, 0.0)
        weights = postings.values()
        cached = (min(weights), max(weights))
        self._weight_bounds[coord] = cached
        return cached

    def document_frequency(self, coord: Hashable) -> int:
        return len(self._postings.get(coord, ()))

    def coordinates(self) -> Iterator[Hashable]:
        return iter(self._postings)

    def documents(self) -> Iterator[Hashable]:
        return iter(self._doc_coords)

    def __contains__(self, item: Hashable) -> bool:
        return item in self._doc_coords

    def __len__(self) -> int:
        """Number of indexed documents."""
        return len(self._doc_coords)

    def vocabulary_size(self) -> int:
        return len(self._postings)

    def clear(self) -> None:
        self._postings.clear()
        self._doc_coords.clear()
        self._weight_bounds.clear()

    def __repr__(self) -> str:
        return (
            f"<InvertedIndex docs={len(self._doc_coords)} "
            f"vocab={len(self._postings)}>"
        )
