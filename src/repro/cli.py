"""An interactive terminal browser over any corpus.

The closest runnable analogue of Haystack's single-window interface
(Figure 1): a read-eval loop where the left pane is printed after each
navigation step and suggestions are selected by number.

Run with a bundled dataset::

    python -m repro recipes --size 800
    python -m repro inbox
    python -m repro states --annotated

or against your own data::

    python -m repro --ntriples data.nt
    python -m repro --turtle data.ttl

Commands (also shown by ``help``):

    search <words>        toolbar keyword search
    ranked <words>        ranked search (§6.2 extension)
    pick <n>              select suggestion number n
    chips                 list constraint chips
    drop <n> / neg <n>    remove / negate a chip
    overview              the Figure-2 facet overview
    describe              Dataguides-style structural summary
    item <n>              open the n-th item of the collection
    like <n> / unlike <n> relevance feedback on the n-th item
    more                  more like the marked items
    export <path>         save the collection as N-Triples/Turtle
    metrics               print the cache/telemetry snapshot
    back                  return to the previous view
    undo                  undo the last query refinement
    session list          list the named sessions (* marks active)
    session new <name>    start a fresh named session
    session switch <name> make a named session active
    session save <name> <path>   write a session's state as JSON
    session load <name> <path>   resume a saved state under a name
    quit

With ``--trace``, every command is followed by its span tree (what the
engine did and how long each stage took); ``--metrics`` prints the
telemetry snapshot when the session ends.
"""

from __future__ import annotations

import argparse
import sys
from typing import IO

from .browser.facets import FacetSummary
from .browser.render import (
    render_item,
    render_navigation_pane,
    render_overview,
    render_range_widget,
)
from .browser.session import Session
from .core.suggestions import OpenRangeWidget
from .core.workspace import Workspace
from .datasets import factbook, inbox, recipes, states
from .obs import Observability, render_metrics, render_trace_forest
from .service import SessionManager

__all__ = ["main", "Shell"]


def _load_workspace(
    args: argparse.Namespace, obs: Observability | None = None
) -> Workspace:
    if getattr(args, "store", None):
        from .store.segments import LogStore

        graph = LogStore.open(args.store).replay_graph(obs=obs)
        return Workspace(graph, obs=obs)
    if args.ntriples:
        from .rdf.ntriples import parse_ntriples

        with open(args.ntriples, encoding="utf-8") as handle:
            graph = parse_ntriples(handle.read())
        return Workspace(graph, obs=obs)
    if args.turtle:
        from .rdf.turtle import parse_turtle

        with open(args.turtle, encoding="utf-8") as handle:
            graph = parse_turtle(handle.read())
        return Workspace(graph, obs=obs)
    if args.dataset == "recipes":
        corpus = recipes.build_corpus(n_recipes=args.size, seed=args.seed)
    elif args.dataset == "inbox":
        corpus = inbox.build_corpus(seed=args.seed)
    elif args.dataset == "states":
        corpus = states.build_corpus(annotated=args.annotated)
    elif args.dataset == "factbook":
        corpus = factbook.build_corpus(annotated=args.annotated)
    else:
        raise SystemExit(f"unknown dataset {args.dataset!r}")
    return Workspace(
        corpus.graph, schema=corpus.schema, items=corpus.items, obs=obs
    )


class Shell:
    """The command loop, separated from IO for testability."""

    def __init__(self, session: Session, out: IO[str] = sys.stdout):
        #: All named sessions share the workspace; the seeded one is "main".
        self.manager = SessionManager(session.workspace, engine=session.engine)
        self.manager.adopt("main", session)
        self.out = out
        self._numbered = []

    @property
    def session(self) -> Session:
        """The active session (the one every command operates on)."""
        return self.manager.active

    def write(self, text: str = "") -> None:
        print(text, file=self.out)

    def show_pane(self) -> None:
        result = self.session.suggestions()
        self._numbered = result.all_suggestions()
        self.write(render_navigation_pane(self.session))
        if self._numbered:
            self.write("suggestions:")
            for index, suggestion in enumerate(self._numbered, start=1):
                self.write(f"  {index:3d}. {suggestion.title}")

    # -- commands ----------------------------------------------------------

    def do_search(self, argument: str) -> None:
        view = self.session.search(argument)
        self.write(f"{len(view.items)} items")
        self.show_pane()

    def do_ranked(self, argument: str) -> None:
        view = self.session.search_ranked(argument)
        self.write(f"{len(view.items)} items (ranked)")
        self.show_pane()

    def do_pick(self, argument: str) -> None:
        suggestion = self._nth_suggestion(argument)
        if suggestion is None:
            return
        outcome = self.session.select(suggestion)
        if isinstance(outcome, OpenRangeWidget):
            self.write(render_range_widget(outcome.preview, suggestion.title))
            self.write("use: range <low> <high> to apply")
            self._pending_range = outcome
            return
        self.show_pane()

    def do_range(self, argument: str) -> None:
        widget = getattr(self, "_pending_range", None)
        if widget is None:
            self.write("no range widget open")
            return
        try:
            low_text, high_text = argument.split()
            low, high = float(low_text), float(high_text)
        except ValueError:
            self.write("usage: range <low> <high>")
            return
        view = self.session.apply_range(widget.prop, low, high)
        self._pending_range = None
        self.write(f"{len(view.items)} items")
        self.show_pane()

    def do_chips(self, argument: str) -> None:
        chips = self.session.describe_constraints()
        if not chips:
            self.write("(no constraints)")
        for index, chip in enumerate(chips):
            self.write(f"  [{index}] {chip}")

    def do_drop(self, argument: str) -> None:
        index = self._int(argument)
        if index is None:
            return
        view = self.session.remove_constraint(index)
        self.write(f"{len(view.items)} items")
        self.show_pane()

    def do_neg(self, argument: str) -> None:
        index = self._int(argument)
        if index is None:
            return
        view = self.session.negate_constraint(index)
        self.write(f"{len(view.items)} items")
        self.show_pane()

    def do_describe(self, argument: str) -> None:
        from .rdf.summary import StructuralSummary

        summary = StructuralSummary(self.session.workspace.graph)
        self.write(summary.render())

    def do_overview(self, argument: str) -> None:
        view = self.session.current
        if not view.is_collection:
            self.write("not viewing a collection")
            return
        summary = FacetSummary.of_collection(self.session.workspace, view.items)
        self.write(render_overview(summary))

    def do_item(self, argument: str) -> None:
        index = self._int(argument)
        if index is None:
            return
        items = self.session.current.items
        if not (1 <= index <= len(items)):
            self.write(f"item number out of range 1..{len(items)}")
            return
        item = items[index - 1]
        self.session.go_item(item)
        self.write(render_item(self.session.workspace, item))
        self.show_pane()

    def do_like(self, argument: str) -> None:
        self._judge(argument, relevant=True)

    def do_unlike(self, argument: str) -> None:
        self._judge(argument, relevant=False)

    def do_more(self, argument: str) -> None:
        try:
            view = self.session.more_like_marked()
        except RuntimeError as error:
            self.write(str(error))
            return
        self.write(f"{len(view.items)} items")
        self.show_pane()

    def do_back(self, argument: str) -> None:
        try:
            view = self.session.back()
        except RuntimeError:
            view = self.session.undo_refinement()
        if view.is_collection:
            self.write(f"{len(view.items)} items")
        self.show_pane()

    def do_export(self, argument: str) -> None:
        if not argument:
            self.write("usage: export <path> (.nt or .ttl)")
            return
        fmt = "ttl" if argument.endswith(".ttl") else "nt"
        try:
            count = self.session.export_collection(argument, format=fmt)
        except RuntimeError as error:
            self.write(str(error))
            return
        self.write(f"wrote {count} triples to {argument}")

    def do_undo(self, argument: str) -> None:
        view = self.session.undo_refinement()
        self.write(f"{len(view.items)} items")
        self.show_pane()

    def do_metrics(self, argument: str) -> None:
        self.write(render_metrics(self.session.metrics.snapshot()))

    def do_session(self, argument: str) -> None:
        words = argument.split()
        action = words[0] if words else "list"
        if action == "list":
            if not len(self.manager):
                self.write("(no sessions)")
                return
            for name in self.manager.names():
                marker = "*" if name == self.manager.active_name else " "
                state = self.manager.get(name).state
                self.write(
                    f"{marker} {name}: {state.view.description or 'an item'} "
                    f"({len(state.trail)} refinement step(s))"
                )
            return
        if action == "new" and len(words) == 2:
            try:
                self.manager.create(words[1])
            except ValueError as error:
                self.write(str(error))
                return
            self._numbered = []
            self.show_pane()
            return
        if action == "switch" and len(words) == 2:
            try:
                self.manager.switch(words[1])
            except KeyError as error:
                self.write(str(error.args[0]))
                return
            self._numbered = []
            self.show_pane()
            return
        if action == "save" and len(words) == 3:
            try:
                self.manager.save(words[1], words[2])
            except KeyError as error:
                self.write(str(error.args[0]))
                return
            self.write(f"saved session {words[1]!r} to {words[2]}")
            return
        if action == "load" and len(words) == 3:
            from .service import StateLoadError

            try:
                self.manager.load(words[1], words[2])
            except StateLoadError as error:
                self.write(str(error))
                return
            self._numbered = []
            self.write(f"loaded session {words[1]!r} from {words[2]}")
            self.show_pane()
            return
        self.write(
            "usage: session list | new <name> | switch <name> | "
            "save <name> <path> | load <name> <path>"
        )

    def do_help(self, argument: str) -> None:
        self.write(__doc__.split("Commands", 1)[1])

    # -- helpers -----------------------------------------------------------

    def _judge(self, argument: str, relevant: bool) -> None:
        index = self._int(argument)
        if index is None:
            return
        items = self.session.current.items
        if not (1 <= index <= len(items)):
            self.write(f"item number out of range 1..{len(items)}")
            return
        item = items[index - 1]
        if relevant:
            self.session.mark_relevant(item)
        else:
            self.session.mark_non_relevant(item)
        self.write(
            f"marked {self.session.workspace.label(item)} "
            f"{'relevant' if relevant else 'non-relevant'}"
        )

    def _int(self, argument: str) -> int | None:
        try:
            return int(argument.strip())
        except ValueError:
            self.write(f"expected a number, got {argument!r}")
            return None

    def _nth_suggestion(self, argument: str):
        index = self._int(argument)
        if index is None:
            return None
        if not self._numbered:
            self.session.suggestions()
            self._numbered = self.session.suggestions().all_suggestions()
        if not (1 <= index <= len(self._numbered)):
            self.write(f"suggestion number out of range 1..{len(self._numbered)}")
            return None
        return self._numbered[index - 1]

    def _flush_trace(self) -> None:
        """Print and drop spans gathered since the last command."""
        tracer = self.session.workspace.obs.tracer
        if tracer.enabled and tracer.roots:
            self.write(render_trace_forest(tracer.roots))
            tracer.clear()

    def run(self, stdin: IO[str] = sys.stdin, interactive: bool = True) -> int:
        """Read commands until quit/EOF; returns an exit code."""
        self.write(f"{self.session.workspace!r}")
        self.show_pane()
        self._flush_trace()
        while True:
            if interactive:
                self.out.write("magnet> ")
                self.out.flush()
            line = stdin.readline()
            if not line:
                return 0
            line = line.strip()
            if not line:
                continue
            command, _sep, argument = line.partition(" ")
            command = command.lower()
            if command in ("quit", "exit", "q"):
                return 0
            handler = getattr(self, f"do_{command}", None)
            if handler is None:
                self.write(f"unknown command {command!r} (try: help)")
                continue
            try:
                handler(argument.strip())
            except Exception as error:  # surface, keep the loop alive
                self.write(f"error: {error}")
            self._flush_trace()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Browse a corpus with Magnet."
    )
    parser.add_argument(
        "dataset",
        nargs="?",
        default="recipes",
        choices=["recipes", "inbox", "states", "factbook"],
        help="bundled dataset to browse",
    )
    parser.add_argument("--size", type=int, default=800,
                        help="recipe corpus size")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--annotated", action="store_true",
                        help="apply schema annotations (states/factbook)")
    parser.add_argument("--ntriples", help="browse an N-Triples file")
    parser.add_argument("--turtle", help="browse a Turtle file")
    parser.add_argument(
        "--store",
        help="browse a durable datom-log store directory (log replay)",
    )
    parser.add_argument(
        "--commands",
        help="read commands from a file instead of stdin (non-interactive)",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="print a span tree after every command",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="print the telemetry snapshot when the session ends",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "check":
        # `python -m repro check ...` — the correctness-harness soak
        # mode; a separate parser so its flags don't collide with the
        # browser's dataset arguments.
        from .check.cli import main as check_main

        return check_main(argv[1:])
    if argv and argv[0] == "serve":
        # `python -m repro serve ...` — the JSON/HTTP session server.
        from .net.cli import serve_main

        return serve_main(argv[1:])
    if argv and argv[0] == "loadgen":
        # `python -m repro loadgen ...` — drive a running server.
        from .net.cli import loadgen_main

        return loadgen_main(argv[1:])
    if argv and argv[0] == "store":
        # `python -m repro store ...` — manage durable datom-log stores.
        from .store.cli import store_main

        return store_main(argv[1:])
    args = build_parser().parse_args(argv)
    obs = Observability(tracing=args.trace)
    workspace = _load_workspace(args, obs)
    shell = Shell(Session(workspace))
    if args.commands:
        with open(args.commands, encoding="utf-8") as handle:
            code = shell.run(handle, interactive=False)
    else:
        interactive = sys.stdin.isatty()
        code = shell.run(sys.stdin, interactive=interactive)
    if args.metrics:
        shell.do_metrics("")
    return code
