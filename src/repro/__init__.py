"""Reproduction of *Magnet: Supporting Navigation in Semistructured Data
Environments* (Sinha & Karger, SIGMOD 2005).

Top-level convenience re-exports cover the typical workflow::

    from repro import Workspace, Session
    from repro.datasets import recipes

    corpus = recipes.build_corpus(seed=7)
    workspace = Workspace(corpus.graph, schema=corpus.schema)
    session = Session(workspace)
    session.search("parsley")
    print(session.suggestions())

Subpackages
-----------
``repro.rdf``       — triple store, N-Triples IO, CSV/XML import, schema hints
``repro.vsm``       — the semistructured vector space model (§5)
``repro.index``     — inverted index / vector store / full-text index
``repro.query``     — predicate AST, evaluation, previews, parsing (§4.2)
``repro.core``      — blackboard, analysts, advisors (§4)
``repro.browser``   — session, facets, text renderers (§3)
``repro.datasets``  — synthetic stand-ins for every corpus of §6
``repro.study``     — the simulated user study (§6.3)
``repro.obs``       — spans, metrics, cache telemetry (``--trace``)
"""

from .browser.session import Session
from .core.engine import NavigationEngine
from .core.workspace import Workspace
from .obs import Observability

__version__ = "1.0.0"

__all__ = [
    "Observability",
    "Session",
    "NavigationEngine",
    "Workspace",
    "__version__",
]
