"""RDF substrate: terms, namespaces, triple store, IO, and schema hints.

This package is the semistructured repository Magnet navigates.  It is a
from-scratch stand-in for the Haystack RDF store the paper runs on (and
for rdflib, which is unavailable offline): an indexed in-memory triple
store, N-Triples serialization, CSV/XML importers, and the
schema-annotation vocabulary that specializes the browsing interface.
"""

from .graph import Graph, Triple
from .namespace import Namespace, split_uri
from .ntriples import (
    NTriplesError,
    dump,
    load,
    parse_ntriples,
    serialize_ntriples,
)
from .schema import Schema, ValueType, infer_value_types
from .terms import BlankNode, Literal, Node, Resource, Term, coerce_literal
from .vocab import DC, HAYSTACK, MAGNET, RDF, RDFS, XSD
from .csv2rdf import csv_to_graph, rows_to_graph
from .learn_compositions import (
    CompositionCandidate,
    apply_learned,
    learn_compositions,
)
from .summary import PropertySummary, StructuralSummary, TypeSummary
from .turtle import TurtleError, parse_turtle, serialize_turtle
from .xml2rdf import XmlImportResult, paths_as_compositions, xml_to_graph

__all__ = [
    "Graph",
    "Triple",
    "Namespace",
    "split_uri",
    "NTriplesError",
    "dump",
    "load",
    "parse_ntriples",
    "serialize_ntriples",
    "Schema",
    "ValueType",
    "infer_value_types",
    "BlankNode",
    "Literal",
    "Node",
    "Resource",
    "Term",
    "coerce_literal",
    "DC",
    "HAYSTACK",
    "MAGNET",
    "RDF",
    "RDFS",
    "XSD",
    "csv_to_graph",
    "rows_to_graph",
    "CompositionCandidate",
    "apply_learned",
    "learn_compositions",
    "PropertySummary",
    "StructuralSummary",
    "TypeSummary",
    "TurtleError",
    "parse_turtle",
    "serialize_turtle",
    "XmlImportResult",
    "paths_as_compositions",
    "xml_to_graph",
]
