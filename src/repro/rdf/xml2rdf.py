"""XML → RDF import for tree-shaped semistructured data (§2, §6.2).

The paper notes that "there are often natural mappings from RDF to XML
and back" and evaluates Magnet against the INEX XML retrieval topics.
§6.2 observes that, because Magnet handles general graphs (which may
contain cycles), it does not follow multi-step paths by default — but
that "using the set of possible XML paths as indication of possible
compositional relationships would have provided a cleaner interface".

This converter implements exactly that:

* every XML element becomes a resource typed by its tag;
* nested elements become object-valued properties named by the child
  tag; attributes and text content become literal-valued properties;
* :func:`paths_as_compositions` enumerates the distinct root-to-leaf
  property paths and registers them as ``magnet:compose`` annotations,
  giving the vector model the transitive coordinates XML trees imply.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from collections import Counter

from .graph import Graph
from .namespace import Namespace
from .schema import Schema
from .terms import Literal, Resource
from .vocab import RDF

__all__ = ["xml_to_graph", "paths_as_compositions", "XmlImportResult"]


class XmlImportResult:
    """The graph produced from an XML document plus import bookkeeping."""

    def __init__(self, graph: Graph, root: Resource, paths: Counter):
        self.graph = graph
        self.root = root
        #: Counter of property-chain tuples observed during the walk.
        self.paths = paths

    def __repr__(self) -> str:
        return (
            f"<XmlImportResult root={self.root.uri!r} "
            f"triples={len(self.graph)} paths={len(self.paths)}>"
        )


def xml_to_graph(
    text: str,
    base_uri: str,
    doc_id: str = "doc",
    graph: Graph | None = None,
    add_full_text: bool = True,
) -> XmlImportResult:
    """Parse an XML document into RDF under ``base_uri``.

    Elements with only text become literal values of their parent;
    elements with children (or attributes) become resources.  Multiple
    documents may share one ``graph`` (pass it in) to build a corpus.

    ``add_full_text`` attaches the document's concatenated text to the
    root as a ``prop/fullText`` literal — the document-granularity text
    field a Lucene-style index expects, without which keyword search
    could only see the root element's own (usually empty) text.
    """
    ns = Namespace(base_uri if base_uri.endswith(("/", "#")) else base_uri + "/")
    graph = graph if graph is not None else Graph()
    root_element = ET.fromstring(text)
    counter = [0]
    paths: Counter = Counter()
    root = _walk(root_element, ns, graph, doc_id, counter, (), paths)
    if add_full_text:
        full = " ".join(
            fragment.strip()
            for fragment in root_element.itertext()
            if fragment.strip()
        )
        if full:
            graph.add(root, ns["prop/fullText"], Literal(full))
    return XmlImportResult(graph, root, paths)


def _walk(
    element: ET.Element,
    ns: Namespace,
    graph: Graph,
    doc_id: str,
    counter: list[int],
    path: tuple[Resource, ...],
    paths: Counter,
) -> Resource:
    counter[0] += 1
    subject = ns[f"{doc_id}/n{counter[0]}"]
    graph.add(subject, RDF.type, ns[f"tag/{element.tag}"])
    for attr, value in sorted(element.attrib.items()):
        prop = ns[f"prop/{attr}"]
        graph.add(subject, prop, Literal(value))
        paths[path + (prop,)] += 1
    text = (element.text or "").strip()
    for child in element:
        prop = ns[f"prop/{child.tag}"]
        child_path = path + (prop,)
        if _is_leaf(child):
            leaf_text = (child.text or "").strip()
            if leaf_text:
                graph.add(subject, prop, Literal(leaf_text))
                paths[child_path] += 1
        else:
            child_node = _walk(child, ns, graph, doc_id, counter, child_path, paths)
            graph.add(subject, prop, child_node)
        tail = (child.tail or "").strip()
        if tail:
            text = f"{text} {tail}".strip()
    if text:
        content = ns["prop/content"]
        graph.add(subject, content, Literal(text))
        paths[path + (content,)] += 1
    return subject


def _is_leaf(element: ET.Element) -> bool:
    return len(element) == 0 and not element.attrib


def paths_as_compositions(
    result: XmlImportResult,
    min_count: int = 1,
    max_length: int = 4,
) -> int:
    """Register observed XML paths as composition annotations.

    Every multi-step property path seen at least ``min_count`` times (and
    no longer than ``max_length``) becomes a ``magnet:compose`` chain in
    the result's graph.  Returns the number of chains registered.  This
    is the §6.2 fix that lets Magnet follow multi-step XML structure.
    """
    schema = Schema(result.graph)
    existing = set(schema.compositions())
    added = 0
    for chain, count in sorted(
        result.paths.items(), key=lambda kv: [p.uri for p in kv[0]]
    ):
        if len(chain) < 2 or len(chain) > max_length or count < min_count:
            continue
        if chain in existing:
            continue
        schema.add_composition(chain)
        existing.add(chain)
        added += 1
    return added
