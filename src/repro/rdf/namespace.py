"""Namespace helpers for building resources with a common URI prefix.

Mirrors the convenience offered by RDF toolkits: ``NS = Namespace(base)``
then ``NS.term`` or ``NS["term"]`` mint :class:`~repro.rdf.terms.Resource`
objects under that base URI.
"""

from __future__ import annotations

from .terms import Resource

__all__ = ["Namespace", "split_uri"]


class Namespace:
    """A URI prefix that mints :class:`Resource` terms.

    >>> EX = Namespace("http://example.org/")
    >>> EX.recipe.uri
    'http://example.org/recipe'
    >>> EX["apple pie"].uri
    'http://example.org/apple%20pie'
    """

    __slots__ = ("base",)

    def __init__(self, base: str):
        if not base:
            raise ValueError("namespace base must be non-empty")
        self.base = base

    def __getattr__(self, name: str) -> Resource:
        if name.startswith("_"):
            raise AttributeError(name)
        return Resource(self.base + name)

    def __getitem__(self, name: str) -> Resource:
        return Resource(self.base + _escape(name))

    def term(self, name: str) -> Resource:
        """Mint a resource for ``name`` under this namespace."""
        return self[name]

    def __contains__(self, resource: Resource) -> bool:
        return isinstance(resource, Resource) and resource.uri.startswith(self.base)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Namespace) and self.base == other.base

    def __hash__(self) -> int:
        return hash(("Namespace", self.base))

    def __repr__(self) -> str:
        return f"Namespace({self.base!r})"


def _escape(name: str) -> str:
    """Percent-encode characters that cannot appear raw in a URI path."""
    out = []
    for ch in name:
        if ch.isalnum() or ch in "-._~/#":
            out.append(ch)
        else:
            out.extend(f"%{byte:02X}" for byte in ch.encode("utf-8"))
    return "".join(out)


def split_uri(uri: str) -> tuple[str, str]:
    """Split a URI into (namespace base, local name).

    The split point is after the last '#' if present, else after the last
    '/'.  Falls back to ('', uri) when neither separator occurs.
    """
    for sep in ("#", "/"):
        if sep in uri:
            head, tail = uri.rsplit(sep, 1)
            if tail:
                return head + sep, tail
    return ("", uri)
