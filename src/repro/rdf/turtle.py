"""A Turtle (subset) parser — the other common RDF surface syntax.

External RDF sources (the CIA Factbook conversion of §6.1 among them)
commonly ship as Turtle rather than N-Triples.  This parser covers the
subset real exports use:

* ``@prefix`` / ``@base`` declarations and prefixed names (``ex:thing``);
* predicate lists with ``;`` and object lists with ``,``;
* the ``a`` keyword for ``rdf:type``;
* plain/typed/language literals, integers, decimals, and booleans;
* blank nodes (``_:id``) and comments.

Not covered (rejected with a clear error): collections ``( ... )``,
anonymous blank-node property lists ``[ ... ]``, and multi-line
``\"\"\"...\"\"\"`` literals.
"""

from __future__ import annotations

import re

from .graph import Graph
from .terms import BlankNode, Literal, Node, Resource
from .vocab import RDF

__all__ = ["TurtleError", "parse_turtle", "serialize_turtle"]


class TurtleError(ValueError):
    """Raised on malformed or unsupported Turtle input."""

    def __init__(self, message: str, position: int, text: str):
        line = text.count("\n", 0, position) + 1
        super().__init__(f"line {line}: {message}")
        self.line = line


_TOKEN = re.compile(
    r"""
    (?P<ws>\s+|\#[^\n]*) |
    (?P<prefix_decl>@prefix\b) |
    (?P<base_decl>@base\b) |
    (?P<uri><[^<>\s]*>) |
    (?P<string>"(?:[^"\\\n]|\\.)*") |
    (?P<langtag>@[a-zA-Z]+(?:-[a-zA-Z0-9]+)*) |
    (?P<carets>\^\^) |
    (?P<blank>_:[A-Za-z0-9_-]+) |
    (?P<boolean>\btrue\b|\bfalse\b) |
    (?P<decimal>[+-]?[0-9]*\.[0-9]+) |
    (?P<integer>[+-]?[0-9]+) |
    (?P<a_kw>\ba\b) |
    (?P<pname>[A-Za-z_][\w.-]*)?:(?P<local>[\w.%-]*) |
    (?P<punct>[;,.\[\]()])
    """,
    re.VERBOSE,
)


class _Lexer:
    def __init__(self, text: str):
        self.text = text
        self.pos = 0
        self.tokens: list[tuple[str, str, int]] = []
        self._lex()
        self.index = 0

    def _lex(self) -> None:
        while self.pos < len(self.text):
            match = _TOKEN.match(self.text, self.pos)
            if match is None or match.end() == self.pos:
                raise TurtleError(
                    f"cannot lex {self.text[self.pos:self.pos + 10]!r}",
                    self.pos,
                    self.text,
                )
            kind = match.lastgroup
            if kind == "local":
                prefix = match.group("pname") or ""
                self.tokens.append(
                    ("pname", f"{prefix}:{match.group('local')}", match.start())
                )
            elif kind != "ws":
                self.tokens.append((kind, match.group(0), match.start()))
            self.pos = match.end()

    def peek(self) -> tuple[str, str, int] | None:
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def next(self) -> tuple[str, str, int]:
        token = self.peek()
        if token is None:
            raise TurtleError("unexpected end of input", len(self.text), self.text)
        self.index += 1
        return token


class _Parser:
    def __init__(self, text: str):
        self.text = text
        self.lexer = _Lexer(text)
        self.prefixes: dict[str, str] = {}
        self.base = ""
        self.graph = Graph()

    def parse(self) -> Graph:
        while self.lexer.peek() is not None:
            kind, _value, _pos = self.lexer.peek()
            if kind == "prefix_decl":
                self._parse_prefix()
            elif kind == "base_decl":
                self._parse_base()
            else:
                self._parse_statement()
        return self.graph

    def _expect(self, kind: str) -> tuple[str, str, int]:
        token = self.lexer.next()
        if token[0] != kind:
            raise TurtleError(
                f"expected {kind}, got {token[1]!r}", token[2], self.text
            )
        return token

    def _parse_prefix(self) -> None:
        self.lexer.next()  # @prefix
        kind, value, pos = self.lexer.next()
        if kind != "pname" or not value.endswith(":"):
            if kind != "pname":
                raise TurtleError("expected prefix name", pos, self.text)
        prefix = value.rsplit(":", 1)[0]
        uri = self._expect("uri")[1][1:-1]
        self._dot()
        self.prefixes[prefix] = uri

    def _parse_base(self) -> None:
        self.lexer.next()  # @base
        self.base = self._expect("uri")[1][1:-1]
        self._dot()

    def _dot(self) -> None:
        kind, value, pos = self.lexer.next()
        if kind != "punct" or value != ".":
            raise TurtleError(f"expected '.', got {value!r}", pos, self.text)

    def _parse_statement(self) -> None:
        subject = self._parse_subject()
        while True:
            predicate = self._parse_predicate()
            while True:
                obj = self._parse_object()
                self.graph.add(subject, predicate, obj)
                kind, value, pos = self.lexer.next()
                if kind == "punct" and value == ",":
                    continue
                break
            if kind == "punct" and value == ";":
                nxt = self.lexer.peek()
                if nxt is not None and nxt[0] == "punct" and nxt[1] == ".":
                    self.lexer.next()
                    return
                continue
            if kind == "punct" and value == ".":
                return
            raise TurtleError(
                f"expected ';', ',' or '.', got {value!r}", pos, self.text
            )

    def _parse_subject(self) -> Resource | BlankNode:
        kind, value, pos = self.lexer.next()
        if kind == "uri":
            return Resource(self._resolve(value[1:-1]))
        if kind == "pname":
            return Resource(self._expand(value, pos))
        if kind == "blank":
            return BlankNode(value[2:])
        raise TurtleError(f"bad subject {value!r}", pos, self.text)

    def _parse_predicate(self) -> Resource:
        kind, value, pos = self.lexer.next()
        if kind == "a_kw":
            return RDF.type
        if kind == "uri":
            return Resource(self._resolve(value[1:-1]))
        if kind == "pname":
            return Resource(self._expand(value, pos))
        raise TurtleError(f"bad predicate {value!r}", pos, self.text)

    def _parse_object(self) -> Node:
        kind, value, pos = self.lexer.next()
        if kind == "uri":
            return Resource(self._resolve(value[1:-1]))
        if kind == "pname":
            return Resource(self._expand(value, pos))
        if kind == "blank":
            return BlankNode(value[2:])
        if kind == "boolean":
            return Literal(value == "true")
        if kind == "integer":
            return Literal(int(value))
        if kind == "decimal":
            return Literal(float(value))
        if kind == "string":
            lexical = _unescape(value[1:-1])
            nxt = self.lexer.peek()
            if nxt is not None and nxt[0] == "carets":
                self.lexer.next()
                dt_kind, dt_value, dt_pos = self.lexer.next()
                if dt_kind == "uri":
                    datatype = self._resolve(dt_value[1:-1])
                elif dt_kind == "pname":
                    datatype = self._expand(dt_value, dt_pos)
                else:
                    raise TurtleError("bad datatype", dt_pos, self.text)
                return Literal(lexical, datatype=datatype)
            if nxt is not None and nxt[0] == "langtag":
                self.lexer.next()
                return Literal(lexical, language=nxt[1][1:])
            return Literal(lexical)
        if kind == "punct" and value in "[(":
            raise TurtleError(
                "blank-node property lists / collections are not supported",
                pos,
                self.text,
            )
        raise TurtleError(f"bad object {value!r}", pos, self.text)

    def _resolve(self, uri: str) -> str:
        if self.base and not re.match(r"^[a-zA-Z][a-zA-Z0-9+.-]*:", uri):
            return self.base + uri
        return uri

    def _expand(self, pname: str, pos: int) -> str:
        prefix, _sep, local = pname.partition(":")
        if prefix not in self.prefixes:
            raise TurtleError(f"undeclared prefix {prefix!r}:", pos, self.text)
        return self.prefixes[prefix] + local


def _unescape(body: str) -> str:
    out: list[str] = []
    i = 0
    while i < len(body):
        ch = body[i]
        if ch == "\\" and i + 1 < len(body):
            esc = body[i + 1]
            mapping = {"n": "\n", "r": "\r", "t": "\t", '"': '"', "\\": "\\"}
            if esc == "u" and i + 6 <= len(body):
                out.append(chr(int(body[i + 2:i + 6], 16)))
                i += 6
                continue
            out.append(mapping.get(esc, esc))
            i += 2
            continue
        out.append(ch)
        i += 1
    return "".join(out)


def parse_turtle(text: str) -> Graph:
    """Parse Turtle text into a new :class:`Graph`."""
    return _Parser(text).parse()


def serialize_turtle(
    graph: Graph, prefixes: dict[str, str] | None = None
) -> str:
    """Serialize a graph as Turtle, grouping by subject.

    ``prefixes`` maps prefix → namespace URI; matching URIs are written
    as prefixed names.  Output is deterministic (sorted).
    """
    prefixes = dict(prefixes or {})
    lines = [f"@prefix {p}: <{uri}> ." for p, uri in sorted(prefixes.items())]
    if lines:
        lines.append("")

    def term(node: Node) -> str:
        if isinstance(node, Resource):
            for prefix, uri in prefixes.items():
                if node.uri.startswith(uri):
                    local = node.uri[len(uri):]
                    if re.fullmatch(r"[\w.-]*", local):
                        return f"{prefix}:{local}"
            return node.n3()
        return node.n3()

    subjects = sorted(
        {s for s, _p, _o in graph.triples()}, key=lambda n: n.n3()
    )
    for subject in subjects:
        properties = sorted(
            graph.properties_of(subject).items(), key=lambda kv: kv[0].uri
        )
        clauses = []
        for prop, values in properties:
            pred = "a" if prop == RDF.type else term(prop)
            rendered = ", ".join(
                term(v) for v in sorted(values, key=lambda n: n.n3())
            )
            clauses.append(f"{pred} {rendered}")
        lines.append(f"{term(subject)} " + " ;\n    ".join(clauses) + " .")
    return "\n".join(lines) + ("\n" if lines else "")
