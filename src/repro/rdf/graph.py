"""An RDF triple store: a datom log with three-way materialized views.

This is the semistructured repository Magnet browses (§2, §5).  The
implementation keeps the classic SPO / POS / OSP index trio so that every
triple pattern with at least one bound position resolves without a scan,
which the navigation analysts rely on heavily (facet counting touches the
POS index thousands of times per view).

Since the durable-store refactor the *source of truth* is the Datomic
information model: an accumulate-only :class:`~repro.store.log.DatomLog`
of ``(s, p, o, tx, op)`` 5-tuples.  Every effective mutation appends a
datom and applies it to the indexes, so the indexes are materialized
views of the log — :meth:`Graph.from_datoms` rebuilds them
bit-identically from a replay, and :meth:`Graph.as_of` folds a prefix
of the log into the graph *as it was* at any recorded transaction.
The mutation API is a byte-identical facade over that model: ``add``
and ``remove`` behave exactly as they always did.

The store is deliberately simple — set semantics, no inference — because
the paper treats the repository as a dumb graph and layers all smarts
(vector model, analysts) above it.
"""

from __future__ import annotations

import itertools
from collections import defaultdict
from typing import Iterable, Iterator

from ..perf.intern import InternTable
from ..store.datom import OP_ASSERT, OP_RETRACT, Datom
from ..store.log import DatomLog
from .terms import BlankNode, Literal, Node, Resource, Term, coerce_literal
from .vocab import RDF, RDFS

__all__ = ["Triple", "Graph"]

#: A triple is (subject, property, object).
Triple = tuple[Resource | BlankNode, Resource, Node]


def _check_subject(subject) -> Resource | BlankNode:
    if not isinstance(subject, (Resource, BlankNode)):
        raise TypeError(f"triple subject must be Resource/BlankNode, got {subject!r}")
    return subject


def _check_predicate(predicate) -> Resource:
    if not isinstance(predicate, Resource):
        raise TypeError(f"triple predicate must be Resource, got {predicate!r}")
    return predicate


def _check_object(obj) -> Node:
    if isinstance(obj, (Resource, BlankNode, Literal)):
        return obj
    return coerce_literal(obj)


class Graph:
    """A set of triples with SPO, POS, and OSP indexes.

    The three nested-dict indexes give O(1) access for any pattern with a
    bound position.  All query methods return iterators; callers that
    need stable order should sort (term types define total orders within
    their kind).
    """

    def __init__(
        self,
        triples: Iterable[Triple] | None = None,
        track_history: bool = True,
    ):
        """``track_history=False`` drops datom bodies from the log.

        The graph then costs no extra memory per mutation — the log
        still mints monotonic tx ids and counts datoms — but it cannot
        be persisted to a :class:`~repro.store.segments.LogStore` or
        time-travelled: :meth:`as_of` and log reads raise
        :class:`~repro.store.log.HistoryDisabledError`.  For build or
        ingest pipelines that only need the final indexes.
        """
        # index[s][p] -> set of o, and the two rotations.
        self._spo: dict[Node, dict[Node, set[Node]]] = defaultdict(
            lambda: defaultdict(set)
        )
        self._pos: dict[Node, dict[Node, set[Node]]] = defaultdict(
            lambda: defaultdict(set)
        )
        self._osp: dict[Node, dict[Node, set[Node]]] = defaultdict(
            lambda: defaultdict(set)
        )
        self._size = 0
        self._version = 0
        self._frozen = False
        self._historical_tx: int | None = None
        # Copy-on-write bookkeeping for forked graphs (see fork()).
        # A plain graph owns all of its structure outright.
        self._cow = False
        self._owned_spo: tuple[set, set] | None = None
        self._owned_pos: tuple[set, set] | None = None
        self._owned_osp: tuple[set, set] | None = None
        self._interner = InternTable()
        self._blank_counter = itertools.count(1)
        self._log = DatomLog(keep_datoms=track_history)
        if triples:
            for s, p, o in triples:
                self.add(s, p, o)

    @property
    def version(self) -> int:
        """Monotonic mutation counter; bumps on every effective add/remove.

        Caches over the graph (query extents, facet profiles) key on this
        value to detect staleness without subscribing to mutations.
        """
        return self._version

    @property
    def log(self) -> DatomLog:
        """The accumulate-only datom log the indexes materialize."""
        return self._log

    @property
    def last_tx(self) -> int:
        """The highest transaction id recorded (0 for a fresh graph)."""
        return self._log.last_tx

    @property
    def interner(self) -> InternTable:
        """The graph's node ↔ int intern table (ids are never reused)."""
        return self._interner

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    @property
    def frozen(self) -> bool:
        """True once :meth:`freeze` has sealed the graph."""
        return self._frozen

    def freeze(self) -> "Graph":
        """Seal the graph: any further add/remove raises.

        Freezing is what makes lock-free concurrent reads sound — the
        nested-dict indexes never change shape again, and version-keyed
        caches can never be invalidated.  Idempotent; returns ``self``.
        """
        self._frozen = True
        return self

    def _check_mutable(self, operation: str) -> None:
        if self._frozen:
            from ..core.workspace import (
                FrozenWorkspaceError,
                HistoricalWorkspaceError,
            )

            if self._historical_tx is not None:
                raise HistoricalWorkspaceError(
                    f"graph is a historical as-of view at tx "
                    f"{self._historical_tx}; cannot {operation}",
                    operation=operation,
                    tx=self._historical_tx,
                )
            raise FrozenWorkspaceError(
                f"graph is frozen; cannot {operation}", operation=operation
            )

    # -- index maintenance (the materialized-view side of the log) ------

    def _apply_assert(self, s, p, o) -> None:
        if self._cow:
            self._cow_own(s, p, o)
        self._spo[s][p].add(o)
        self._pos[p][o].add(s)
        self._osp[o][s].add(p)
        self._size += 1
        self._version += 1

    def _apply_retract(self, s, p, o) -> None:
        if self._cow:
            self._cow_own(s, p, o)
        self._spo[s][p].remove(o)
        self._pos[p][o].discard(s)
        self._osp[o][s].discard(p)
        self._prune(self._spo, s, p)
        self._prune(self._pos, p, o)
        self._prune(self._osp, o, s)
        self._size -= 1
        self._version += 1

    def add(self, subject, predicate, obj) -> bool:
        """Add a triple; return True if it was not already present.

        The object may be a plain Python value (str/int/float/date/...),
        which is coerced to a :class:`Literal`.  An effective add is an
        auto-commit transaction: it appends one assert datom to the log.
        """
        self._check_mutable("add")
        s = _check_subject(subject)
        p = _check_predicate(predicate)
        o = _check_object(obj)
        if o in self._spo[s][p]:
            return False
        self._log.commit(
            (Datom(s, p, o, self._log.begin(), OP_ASSERT),)
        )
        self._apply_assert(s, p, o)
        return True

    def add_all(self, triples: Iterable[Triple]) -> int:
        """Add many triples; return the number actually inserted."""
        return sum(1 for s, p, o in triples if self.add(s, p, o))

    def remove(self, subject, predicate, obj) -> bool:
        """Remove one triple; return True if it was present.

        An effective remove appends one retract datom to the log.
        """
        self._check_mutable("remove")
        s = _check_subject(subject)
        p = _check_predicate(predicate)
        o = _check_object(obj)
        if o not in self._spo.get(s, {}).get(p, ()):
            return False
        self._log.commit(
            (Datom(s, p, o, self._log.begin(), OP_RETRACT),)
        )
        self._apply_retract(s, p, o)
        return True

    def remove_matching(self, subject=None, predicate=None, obj=None) -> int:
        """Remove every triple matching the pattern; return the count."""
        doomed = list(self.triples(subject, predicate, obj))
        for s, p, o in doomed:
            self.remove(s, p, o)
        return len(doomed)

    def transact(self, ops: Iterable[tuple]) -> int | None:
        """Apply many asserts/retracts atomically under ONE transaction.

        ``ops`` is an iterable of ``(op, subject, predicate, object)``
        tuples with ``op`` one of :data:`~repro.store.datom.OP_ASSERT` /
        :data:`~repro.store.datom.OP_RETRACT`.  Operations are validated
        up front (any bad term or unknown op raises before the graph is
        touched), then applied in order; ineffective operations (assert
        of a present triple, retract of an absent one — judged against
        the state *within* the transaction) are skipped and not logged.
        Returns the minted tx id, or ``None`` when nothing was
        effective.
        """
        self._check_mutable("transact")
        checked = []
        for entry in ops:
            try:
                op, subject, predicate, obj = entry
            except (TypeError, ValueError):
                raise ValueError(
                    f"transact op must be (op, s, p, o), got {entry!r}"
                ) from None
            if op not in (OP_ASSERT, OP_RETRACT):
                raise ValueError(f"unknown transact op {op!r}")
            checked.append(
                (op, _check_subject(subject), _check_predicate(predicate),
                 _check_object(obj))
            )
        tx = self._log.begin()
        datoms: list[Datom] = []
        for op, s, p, o in checked:
            present = o in self._spo.get(s, {}).get(p, ())
            if op == OP_ASSERT:
                if present:
                    continue
                self._apply_assert(s, p, o)
            else:
                if not present:
                    continue
                self._apply_retract(s, p, o)
            datoms.append(Datom(s, p, o, tx, op))
        if not datoms:
            return None
        self._log.commit(datoms)
        return tx

    @staticmethod
    def _prune(index, outer, inner) -> None:
        if not index[outer][inner]:
            del index[outer][inner]
            if not index[outer]:
                del index[outer]

    def new_blank_node(self) -> BlankNode:
        """Mint a blank node unique within this graph."""
        return BlankNode(f"b{next(self._blank_counter)}")

    # ------------------------------------------------------------------
    # Pattern matching
    # ------------------------------------------------------------------

    def triples(self, subject=None, predicate=None, obj=None) -> Iterator[Triple]:
        """Yield triples matching a pattern; None matches anything.

        Iteration is snapshot-stable at the index-bucket level: every
        dict or set is materialized the moment the walk reaches it, so
        mutating the graph mid-iteration (live ingestion folding a
        delta while a path BFS walks) never raises ``RuntimeError:
        dictionary changed size``.  Buckets are atomic — a concurrent
        writer is either fully visible in a bucket or not at all —
        but a multi-bucket walk does not freeze the whole graph.
        """
        if obj is not None and not isinstance(obj, Term):
            obj = coerce_literal(obj)
        if subject is not None:
            by_pred = self._spo.get(subject)
            if not by_pred:
                return
            if predicate is not None:
                objs = by_pred.get(predicate)
                if not objs:
                    return
                if obj is not None:
                    if obj in objs:
                        yield (subject, predicate, obj)
                    return
                for o in tuple(objs):
                    yield (subject, predicate, o)
                return
            for p, objs in list(by_pred.items()):
                if obj is not None:
                    if obj in objs:
                        yield (subject, p, obj)
                    continue
                for o in tuple(objs):
                    yield (subject, p, o)
            return
        if predicate is not None:
            by_obj = self._pos.get(predicate)
            if not by_obj:
                return
            if obj is not None:
                for s in tuple(by_obj.get(obj, ())):
                    yield (s, predicate, obj)
                return
            for o, subs in list(by_obj.items()):
                for s in tuple(subs):
                    yield (s, predicate, o)
            return
        if obj is not None:
            by_subj = self._osp.get(obj)
            if not by_subj:
                return
            for s, preds in list(by_subj.items()):
                for p in tuple(preds):
                    yield (s, p, obj)
            return
        for s, by_pred in list(self._spo.items()):
            for p, objs in list(by_pred.items()):
                for o in tuple(objs):
                    yield (s, p, o)

    def __contains__(self, triple: Triple) -> bool:
        s, p, o = triple
        if not isinstance(o, Term):
            o = coerce_literal(o)
        return o in self._spo.get(s, {}).get(p, set())

    def __iter__(self) -> Iterator[Triple]:
        return self.triples()

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------

    def subjects(self, predicate=None, obj=None) -> Iterator[Node]:
        """Yield distinct subjects matching (*, predicate, obj).

        Snapshot-stable: the matched bucket is materialized before any
        subject is yielded (see :meth:`triples`).
        """
        if predicate is not None and obj is not None:
            if not isinstance(obj, Term):
                obj = coerce_literal(obj)
            yield from tuple(self._pos.get(predicate, {}).get(obj, ()))
            return
        seen: set[Node] = set()
        for s, _p, _o in self.triples(None, predicate, obj):
            if s not in seen:
                seen.add(s)
                yield s

    def objects(self, subject=None, predicate=None) -> Iterator[Node]:
        """Yield distinct objects matching (subject, predicate, *).

        Snapshot-stable: the matched bucket is materialized before any
        object is yielded (see :meth:`triples`).
        """
        if subject is not None and predicate is not None:
            yield from tuple(self._spo.get(subject, {}).get(predicate, ()))
            return
        seen: set[Node] = set()
        for _s, _p, o in self.triples(subject, predicate, None):
            if o not in seen:
                seen.add(o)
                yield o

    def predicates(self, subject=None, obj=None) -> Iterator[Resource]:
        """Yield distinct predicates matching (subject, *, obj).

        Snapshot-stable: the matched bucket is materialized before any
        predicate is yielded (see :meth:`triples`).
        """
        if subject is not None and obj is not None:
            if not isinstance(obj, Term):
                obj = coerce_literal(obj)
            yield from tuple(self._osp.get(obj, {}).get(subject, ()))
            return
        seen: set[Resource] = set()
        for _s, p, _o in self.triples(subject, None, obj):
            if p not in seen:
                seen.add(p)
                yield p

    def value(self, subject, predicate, default=None) -> Node | None:
        """A single object for (subject, predicate), or ``default``.

        When several values exist an arbitrary-but-deterministic one
        (the minimum) is returned.
        """
        objs = self._spo.get(subject, {}).get(predicate)
        if not objs:
            return default
        return min(objs, key=_term_sort_key)

    def properties_of(self, subject) -> dict[Resource, set[Node]]:
        """All property → value-set pairs of a subject (copied)."""
        return {p: set(objs) for p, objs in self._spo.get(subject, {}).items()}

    def iter_properties(self, subject) -> Iterator[tuple[Resource, set[Node]]]:
        """Iterate (property, value-set) pairs of a subject without copying.

        The yielded sets are live index views: callers must treat them as
        read-only and must not mutate the graph mid-iteration.  Hot
        sweeps (facet counting) use this to skip :meth:`properties_of`'s
        per-item copies.
        """
        by_pred = self._spo.get(subject)
        if by_pred:
            yield from by_pred.items()

    def count_subjects(self, predicate, obj) -> int:
        """Number of distinct subjects of (*, predicate, obj) in O(1).

        Equivalent to ``sum(1 for _ in subjects(predicate, obj))`` but
        reads the POS bucket's size directly — the document-frequency
        lookup facet weighting performs once per suggestion.
        """
        if obj is not None and not isinstance(obj, Term):
            obj = coerce_literal(obj)
        return len(self._pos.get(predicate, {}).get(obj, ()))

    def items_of_type(self, rdf_type: Resource) -> Iterator[Node]:
        """Subjects with ``rdf:type rdf_type``."""
        return self.subjects(RDF.type, rdf_type)

    def label(self, node: Node) -> str:
        """A human-readable name for a node.

        Uses ``rdfs:label`` when present; otherwise the resource's local
        name or the literal's lexical form.  §6.1 observes that adding
        labels makes the interface markedly friendlier — this helper is
        where that annotation takes effect.
        """
        if isinstance(node, Literal):
            return node.lexical
        lab = self.value(node, RDFS.label)
        if isinstance(lab, Literal):
            return lab.lexical
        if isinstance(node, Resource):
            return node.local_name
        return node.node_id

    def subject_count(self) -> int:
        """Number of distinct subjects in the graph."""
        return len(self._spo)

    # ------------------------------------------------------------------
    # Whole-graph operations
    # ------------------------------------------------------------------

    def copy(self) -> "Graph":
        """A shallow structural copy (terms are immutable and shared).

        The copy starts a fresh log (its history is "created whole", one
        assert per triple); use :meth:`as_of`/:meth:`from_datoms` to
        preserve history.
        """
        clone = Graph(track_history=self._log.keeps_history)
        for s, p, o in self.triples():
            clone.add(s, p, o)
        return clone

    # ------------------------------------------------------------------
    # Copy-on-write forks (epoch snapshots)
    # ------------------------------------------------------------------

    def fork(self) -> "Graph":
        """A mutable copy-on-write successor of this (typically frozen) graph.

        The fork shares the middle dicts and leaf sets of all three
        indexes with its parent; the first mutation that would touch a
        shared structure copies it first, so the parent — usually a
        published epoch snapshot with pinned readers — is never aliased.
        The datom log is copied, so the fork continues the parent's tx
        sequence and keeps ``as_of`` working over the combined history.
        The version counter carries over: a fork that replays ``n``
        delta datoms ends at exactly the version a cold full-log replay
        would reach.
        """
        clone = Graph.__new__(Graph)
        clone._spo = defaultdict(lambda: defaultdict(set), self._spo)
        clone._pos = defaultdict(lambda: defaultdict(set), self._pos)
        clone._osp = defaultdict(lambda: defaultdict(set), self._osp)
        clone._size = self._size
        clone._version = self._version
        clone._frozen = False
        clone._historical_tx = None
        clone._interner = InternTable()
        clone._blank_counter = self._blank_counter
        clone._log = self._log.fork()
        clone._cow = True
        clone._owned_spo = (set(), set())
        clone._owned_osp = (set(), set())
        clone._owned_pos = (set(), set())
        return clone

    @staticmethod
    def _own_leaf(index, owned, outer, inner) -> None:
        """Ensure ``index[outer]`` and ``index[outer][inner]`` are unshared."""
        mids, leaves = owned
        if outer not in mids:
            mids.add(outer)
            mid = index.get(outer)
            if mid is not None:
                index[outer] = defaultdict(set, mid)
        key = (outer, inner)
        if key not in leaves:
            leaves.add(key)
            mid = index.get(outer)
            if mid is not None:
                leaf = mid.get(inner)
                if leaf is not None:
                    mid[inner] = set(leaf)

    def _cow_own(self, s, p, o) -> None:
        self._own_leaf(self._spo, self._owned_spo, s, p)
        self._own_leaf(self._pos, self._owned_pos, p, o)
        self._own_leaf(self._osp, self._owned_osp, o, s)

    def _preown_for_replay(self, datoms) -> None:
        """Faithfully rebuild the index leaves a delta replay will touch.

        ``set(leaf)`` preserves membership but not CPython's internal
        hash-table layout, and leaf-set iteration order leaks into
        downstream float summation (item profiles → sparse vectors →
        scores).  To keep a forked epoch *bit-identical* to a cold
        replay of the full log, every leaf the delta touches is rebuilt
        here by replaying that leaf's full op history from this fork's
        own log — including the prune-and-remint on emptying that
        ``_apply_retract``/``defaultdict`` perform — which reproduces
        the cold layout exactly.  Untouched leaves stay shared with the
        parent.  ``datoms`` must be a sequence (it is iterated thrice).
        """
        if not self._cow:
            return
        self._preown_index(
            self._spo, self._owned_spo,
            {(d.s, d.p) for d in datoms}, lambda d: (d.s, d.p, d.o),
        )
        self._preown_index(
            self._pos, self._owned_pos,
            {(d.p, d.o) for d in datoms}, lambda d: (d.p, d.o, d.s),
        )
        self._preown_index(
            self._osp, self._owned_osp,
            {(d.o, d.s) for d in datoms}, lambda d: (d.o, d.s, d.p),
        )

    def _preown_index(self, index, owned, touched, project) -> None:
        mids, leaves = owned
        rebuilt: dict[tuple, set] = {}
        for datom in self._log:
            outer, inner, member = project(datom)
            key = (outer, inner)
            if key not in touched:
                continue
            leaf = rebuilt.get(key)
            if datom.asserts:
                if leaf is None:
                    leaf = rebuilt[key] = set()
                leaf.add(member)
            elif leaf is not None:
                leaf.discard(member)
                if not leaf:
                    # Mirror _prune: the next assert mints a fresh set.
                    del rebuilt[key]
        for outer, inner in touched:
            if outer not in mids:
                mids.add(outer)
                mid = index.get(outer)
                if mid is not None:
                    index[outer] = defaultdict(set, mid)
            leaves.add((outer, inner))
        for (outer, inner), leaf in rebuilt.items():
            index[outer][inner] = leaf

    # ------------------------------------------------------------------
    # Log replay and time travel
    # ------------------------------------------------------------------

    def _replay(self, datoms: Iterable[Datom]) -> int:
        """Apply already-transacted datoms, preserving their tx ids.

        Every logged datom was effective when recorded, so one that is a
        no-op here (asserting a present triple, retracting an absent
        one) means the replayed log is corrupt or out of order — that
        raises ``ValueError`` rather than silently skewing the size and
        version bookkeeping.  Returns the number of datoms applied.
        """
        if self._frozen:
            self._check_mutable("replay")
        max_blank = 0

        def note_blank(node) -> None:
            # Keep new_blank_node() collision-free after a replay that
            # carried graph-minted b<N> ids.
            nonlocal max_blank
            if isinstance(node, BlankNode):
                tail = node.node_id[1:]
                if node.node_id.startswith("b") and tail.isdigit():
                    max_blank = max(max_blank, int(tail))

        def apply_checked(datom: Datom) -> Datom:
            s, p, o = datom.s, datom.p, datom.o
            note_blank(s)
            note_blank(o)
            present = o in self._spo.get(s, {}).get(p, ())
            if datom.asserts:
                if present:
                    raise ValueError(
                        f"log replay: assert of already-present triple "
                        f"at tx {datom.tx}: {datom!r}"
                    )
                self._apply_assert(s, p, o)
            else:
                if not present:
                    raise ValueError(
                        f"log replay: retract of absent triple "
                        f"at tx {datom.tx}: {datom!r}"
                    )
                self._apply_retract(s, p, o)
            return datom

        count = self._log.replay_append(
            apply_checked(datom) for datom in datoms
        )
        if max_blank:
            self._blank_counter = itertools.count(max_blank + 1)
        return count

    @classmethod
    def from_datoms(cls, datoms: Iterable[Datom]) -> "Graph":
        """Rebuild a graph (indexes AND log) by replaying a datom log.

        The result is bit-identical to the graph that produced the log:
        same triples, same index structure, same version counter, same
        transaction ids.  This is the cold-start path for the durable
        store and the oracle the differential harness replays against.
        """
        graph = cls()
        graph._replay(datoms)
        return graph

    def as_of(self, tx: int) -> "Graph":
        """The graph as it was just after transaction ``tx``, frozen.

        Folds the log prefix ``tx' <= tx`` into a fresh graph and seals
        it: historical views are immutable (mutation raises
        :class:`~repro.core.workspace.HistoricalWorkspaceError` naming
        the operation and the pinned tx).  ``as_of(0)`` is the empty
        graph; ``as_of(last_tx)`` equals the current graph.
        """
        if not self._log.keeps_history:
            from ..store.log import HistoryDisabledError

            raise HistoryDisabledError(
                "as_of requires history: this graph was built with "
                "track_history=False and its log retains no datom bodies"
            )
        if not isinstance(tx, int) or isinstance(tx, bool):
            raise ValueError(f"as_of tx must be an integer, got {tx!r}")
        if tx < 0 or tx > self._log.last_tx:
            raise ValueError(
                f"as_of tx {tx} out of range 0..{self._log.last_tx}"
            )
        past = Graph.from_datoms(self._log.datoms_through(tx))
        past._historical_tx = tx
        past.freeze()
        return past

    def update(self, other: "Graph") -> int:
        """Merge another graph into this one; return inserted count."""
        return self.add_all(other.triples())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        if len(self) != len(other):
            return False
        return all(t in other for t in self.triples())

    def __repr__(self) -> str:
        return f"<Graph with {self._size} triples over {self.subject_count()} subjects>"


def _term_sort_key(term: Node):
    """Total order across term kinds for deterministic tie-breaking."""
    if isinstance(term, Resource):
        return (0, term.uri)
    if isinstance(term, BlankNode):
        return (1, term.node_id)
    return (2, term.n3())
