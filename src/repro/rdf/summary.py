"""Structural schema summaries — the Dataguides idea Magnet builds on.

§2: "Lore uses a concept called Dataguides to retrieve structural schema
summaries and uses the summaries to support query formulation"; Magnet's
interface likewise "shows that the collection of recipes has properties
like cooking method, cuisine type, and ingredient" (§3).  This module
computes that summary directly from the data: for each ``rdf:type``, the
properties its instances carry, with coverage, cardinality, value kinds,
and sample values.

The summary backs the CLI's ``describe`` command and gives programmatic
users a quick map of an unfamiliar repository — the "newly encountered,
or less than fully structured, information" scenario of §1.
"""

from __future__ import annotations

from collections import Counter
from typing import NamedTuple

from .graph import Graph
from .schema import Schema
from .terms import Literal, Node, Resource
from .vocab import MAGNET, RDF, RDFS

__all__ = ["PropertySummary", "TypeSummary", "StructuralSummary"]

_SKIP = frozenset(
    {MAGNET.valueType, MAGNET.compose, MAGNET.hidden,
     MAGNET.importantProperty, RDFS.label}
)


class PropertySummary(NamedTuple):
    """One property's shape within a type."""

    prop: Resource
    #: instances carrying the property
    coverage: int
    #: min/max values per carrying instance
    min_cardinality: int
    max_cardinality: int
    #: value kind counts: 'object' / 'string' / 'number' / 'temporal'
    kinds: dict
    #: up to a handful of distinct example values (display strings)
    samples: list

    @property
    def dominant_kind(self) -> str:
        if not self.kinds:
            return "none"
        return max(self.kinds.items(), key=lambda kv: (kv[1], kv[0]))[0]

    @property
    def is_multivalued(self) -> bool:
        return self.max_cardinality > 1


class TypeSummary(NamedTuple):
    """One rdf:type's shape."""

    rdf_type: Resource
    instance_count: int
    properties: list  # of PropertySummary, coverage-descending


class StructuralSummary:
    """The whole repository's shape, grouped by type."""

    def __init__(self, graph: Graph, max_samples: int = 4):
        self.graph = graph
        self.schema = Schema(graph)
        self.max_samples = max_samples
        self.types: list[TypeSummary] = self._build()

    def _build(self) -> list[TypeSummary]:
        by_type: dict[Resource, list[Node]] = {}
        for subject, _p, rdf_type in self.graph.triples(None, RDF.type, None):
            if isinstance(rdf_type, Resource):
                by_type.setdefault(rdf_type, []).append(subject)
        summaries = []
        for rdf_type, instances in by_type.items():
            summaries.append(self._summarize_type(rdf_type, instances))
        summaries.sort(key=lambda t: (-t.instance_count, t.rdf_type.uri))
        return summaries

    def _summarize_type(
        self, rdf_type: Resource, instances: list[Node]
    ) -> TypeSummary:
        coverage: Counter = Counter()
        cardinalities: dict[Resource, list[int]] = {}
        kinds: dict[Resource, Counter] = {}
        samples: dict[Resource, list[str]] = {}
        for instance in instances:
            for prop, values in self.graph.properties_of(instance).items():
                if prop in _SKIP or prop == RDF.type:
                    continue
                coverage[prop] += 1
                bucket = cardinalities.setdefault(prop, [])
                bucket.append(len(values))
                kind_bucket = kinds.setdefault(prop, Counter())
                sample_bucket = samples.setdefault(prop, [])
                for value in values:
                    kind_bucket[_kind(value)] += 1
                    display = self.graph.label(value)
                    if (
                        len(sample_bucket) < self.max_samples
                        and display not in sample_bucket
                    ):
                        sample_bucket.append(display)
        properties = [
            PropertySummary(
                prop,
                coverage[prop],
                min(cardinalities[prop]),
                max(cardinalities[prop]),
                dict(kinds[prop]),
                samples[prop],
            )
            for prop in coverage
        ]
        properties.sort(key=lambda p: (-p.coverage, p.prop.uri))
        return TypeSummary(rdf_type, len(instances), properties)

    def type_summary(self, rdf_type: Resource) -> TypeSummary | None:
        """The summary for one type, or None."""
        for summary in self.types:
            if summary.rdf_type == rdf_type:
                return summary
        return None

    def render(self, width: int = 72) -> str:
        """A text rendering (the CLI's ``describe`` output)."""
        lines = ["=" * width, "REPOSITORY STRUCTURE", "=" * width]
        for type_summary in self.types:
            lines.append(
                f"{self.schema.label(type_summary.rdf_type)} "
                f"({type_summary.instance_count} instances)"
            )
            for prop in type_summary.properties:
                label = self.schema.label(prop.prop)
                card = (
                    f"{prop.min_cardinality}..{prop.max_cardinality}"
                    if prop.is_multivalued
                    else "1"
                )
                sample_text = ", ".join(prop.samples)
                if len(sample_text) > 44:
                    sample_text = sample_text[:41] + "..."
                lines.append(
                    f"  {label:<20} {prop.dominant_kind:<8} "
                    f"x{card:<6} [{prop.coverage}/{type_summary.instance_count}] "
                    f"e.g. {sample_text}"
                )
            lines.append("")
        return "\n".join(lines).rstrip() + "\n"

    def __repr__(self) -> str:
        return f"<StructuralSummary {len(self.types)} types>"


def _kind(value: Node) -> str:
    if not isinstance(value, Literal):
        return "object"
    if value.is_numeric:
        return "number"
    if value.is_temporal:
        return "temporal"
    if value.as_number() is not None:
        return "number"
    return "string"
