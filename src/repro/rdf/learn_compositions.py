"""Automatic discovery of attribute compositions (§5.1, §7).

"Just as systems can be built to learn phrases for use in traditional
vector space models, we expect that systems might ultimately learn to
automatically detect and incorporate important compositional relations"
— and §7 asks for "heuristic rules or learning approaches to determine
such annotations".

The detector scans the graph for two-step property chains
``item --p--> node --q--> value`` and scores each (p, q) pair by

* **support** — how many distinct items traverse the chain;
* **informativeness** — the entropy of the end-value distribution
  (a chain whose composite value is constant cannot refine anything);
* **fan-in sanity** — chains through hub nodes shared by most items
  (e.g. everything pointing at one "root") are penalized.

Chains above the thresholds are proposed; :func:`apply_learned` writes
them as ``magnet:compose`` annotations, exactly as a schema expert
would.
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from typing import NamedTuple

from .graph import Graph
from .schema import Schema
from .terms import Literal, Node, Resource
from .vocab import MAGNET, RDF, RDFS

__all__ = ["CompositionCandidate", "learn_compositions", "apply_learned"]

_SKIP = frozenset(
    {MAGNET.valueType, MAGNET.compose, MAGNET.hidden,
     MAGNET.importantProperty, RDFS.label}
)


class CompositionCandidate(NamedTuple):
    """A scored two-step chain proposal."""

    chain: tuple[Resource, Resource]
    support: int
    distinct_values: int
    entropy: float
    score: float


def learn_compositions(
    graph: Graph,
    items: list[Node] | None = None,
    min_support: float = 0.3,
    min_entropy: float = 0.5,
    max_candidates: int = 20,
) -> list[CompositionCandidate]:
    """Propose two-step compositions for a corpus.

    ``items`` defaults to every typed subject.  ``min_support`` is the
    fraction of items that must traverse the chain; ``min_entropy`` the
    minimum Shannon entropy (bits) of the composite-value distribution.
    Candidates are returned best-first.
    """
    if items is None:
        items = sorted(
            {s for s, _p, _o in graph.triples(None, RDF.type, None)},
            key=lambda n: n.n3(),
        )
    if not items:
        return []
    item_set = set(items)

    # For every (p, q): which items traverse it and what values result.
    traversers: dict[tuple[Resource, Resource], set[Node]] = defaultdict(set)
    values: dict[tuple[Resource, Resource], Counter] = defaultdict(Counter)
    for item in items:
        for p, targets in graph.properties_of(item).items():
            if p in _SKIP or p == RDF.type:
                continue
            for target in targets:
                if isinstance(target, Literal) or target in item_set:
                    # Literals have no outgoing arcs; chains into other
                    # *items* are navigation, not attribute structure.
                    continue
                for q, ends in graph.properties_of(target).items():
                    if q in _SKIP or q == RDF.type:
                        continue
                    key = (p, q)
                    traversers[key].add(item)
                    for end in ends:
                        values[key][_value_token(end)] += 1

    candidates: list[CompositionCandidate] = []
    for key, traversing in traversers.items():
        support = len(traversing)
        support_fraction = support / len(items)
        if support_fraction < min_support:
            continue
        distribution = values[key]
        entropy = _entropy(distribution)
        if entropy < min_entropy:
            continue
        distinct = len(distribution)
        score = support_fraction * entropy
        candidates.append(
            CompositionCandidate(key, support, distinct, entropy, score)
        )
    candidates.sort(key=lambda c: (-c.score, [p.uri for p in c.chain]))
    return candidates[:max_candidates]


def apply_learned(
    graph: Graph, candidates: list[CompositionCandidate]
) -> int:
    """Record candidates as ``magnet:compose`` annotations.

    Returns how many new chains were written (already-declared chains
    are skipped).
    """
    schema = Schema(graph)
    existing = set(schema.compositions())
    written = 0
    for candidate in candidates:
        if candidate.chain in existing:
            continue
        schema.add_composition(list(candidate.chain))
        existing.add(candidate.chain)
        written += 1
    return written


def _value_token(node: Node) -> str:
    if isinstance(node, Literal):
        return node.lexical
    if isinstance(node, Resource):
        return node.uri
    return node.n3()


def _entropy(distribution: Counter) -> float:
    total = sum(distribution.values())
    if total == 0:
        return 0.0
    entropy = 0.0
    for count in distribution.values():
        p = count / total
        entropy -= p * math.log2(p)
    return entropy
