"""Schema annotations: the small hints that specialize Magnet's interface.

Magnet works without any schema, but §5.1 and §6.1 show that a handful of
annotations markedly improve the experience:

* **labels** (``rdfs:label``) give properties and values human-readable
  names (Figure 8);
* **value types** (``magnet:valueType``) mark numeric/temporal
  properties, enabling range widgets and unit-circle similarity (§5.4);
* **attribute compositions** (``magnet:compose``) name multi-step
  property chains that should become coordinates of the vector space
  model (§5.1) — e.g. "the author's field of expertise";
* **important properties** (``magnet:importantProperty``) ask the system
  to compose one more level of attributes through a property (the inbox
  ``body`` annotation of §6.1 / Figure 6);
* **hidden properties** (``magnet:hidden``) suppress algorithmically
  significant but unreadable attributes from the interface (§6.1's
  OCW/ArtSTOR observation).

All annotations are ordinary triples in the same graph as the data, so
schema experts and advanced users can add them incrementally — exactly
the workflow the paper describes.
"""

from __future__ import annotations

from collections import Counter
from typing import Sequence

from .graph import Graph
from .terms import Literal, Node, Resource
from .vocab import MAGNET, RDF, RDFS

__all__ = ["ValueType", "Schema", "infer_value_types"]


class ValueType:
    """Symbolic names for property value types."""

    OBJECT = "object"
    TEXT = "text"
    INTEGER = "integer"
    FLOAT = "float"
    DATE = "date"
    DATETIME = "datetime"

    #: Types for which numeric closeness (not just equality) matters.
    CONTINUOUS = frozenset({INTEGER, FLOAT, DATE, DATETIME})

    ALL = frozenset({OBJECT, TEXT, INTEGER, FLOAT, DATE, DATETIME})


class Schema:
    """Read/write view of the schema annotations stored in a graph."""

    def __init__(self, graph: Graph):
        self.graph = graph

    # ------------------------------------------------------------------
    # Labels
    # ------------------------------------------------------------------

    def set_label(self, node: Node, label: str) -> None:
        """Attach a human-readable label to a property or value."""
        self.graph.add(node, RDFS.label, Literal(label))

    def label(self, node: Node) -> str:
        """The best available display name for a node."""
        return self.graph.label(node)

    # ------------------------------------------------------------------
    # Value types
    # ------------------------------------------------------------------

    def set_value_type(self, prop: Resource, value_type: str) -> None:
        """Declare the value type of a property.

        ``value_type`` must be one of :class:`ValueType`'s names.
        """
        if value_type not in ValueType.ALL:
            raise ValueError(f"unknown value type {value_type!r}")
        self.graph.remove_matching(prop, MAGNET.valueType, None)
        self.graph.add(prop, MAGNET.valueType, Literal(value_type))

    def value_type(self, prop: Resource) -> str | None:
        """The declared value type of a property, or None."""
        value = self.graph.value(prop, MAGNET.valueType)
        if isinstance(value, Literal):
            return value.lexical
        return None

    def is_continuous(self, prop: Resource) -> bool:
        """True when the property's declared type supports ranges."""
        return self.value_type(prop) in ValueType.CONTINUOUS

    def continuous_properties(self) -> list[Resource]:
        """All properties declared with a continuous value type."""
        found = []
        for prop in self.graph.subjects(MAGNET.valueType):
            if isinstance(prop, Resource) and self.is_continuous(prop):
                found.append(prop)
        return sorted(found)

    # ------------------------------------------------------------------
    # Hidden properties
    # ------------------------------------------------------------------

    def hide_property(self, prop: Resource) -> None:
        """Mark a property as hidden from end-user suggestions."""
        self.graph.add(prop, MAGNET.hidden, Literal(True))

    def unhide_property(self, prop: Resource) -> None:
        """Remove a hidden mark."""
        self.graph.remove_matching(prop, MAGNET.hidden, None)

    def is_hidden(self, prop: Resource) -> bool:
        """True when the property must not be surfaced in the interface."""
        value = self.graph.value(prop, MAGNET.hidden)
        return isinstance(value, Literal) and bool(value.value)

    # ------------------------------------------------------------------
    # Attribute compositions
    # ------------------------------------------------------------------

    def add_composition(self, chain: Sequence[Resource]) -> None:
        """Declare a composite attribute built from a property chain.

        ``chain`` lists the properties in traversal order; e.g.
        ``[author, expertise]`` declares "the author's field of
        expertise" as a model coordinate.
        """
        if len(chain) < 2:
            raise ValueError("a composition needs at least two properties")
        head, *tail = chain
        encoded = Literal(" ".join(p.uri for p in tail))
        self.graph.add(head, MAGNET.compose, encoded)

    def compositions(self) -> list[tuple[Resource, ...]]:
        """All declared property chains, longest-first then sorted."""
        chains: list[tuple[Resource, ...]] = []
        for head in self.graph.subjects(MAGNET.compose):
            if not isinstance(head, Resource):
                continue
            for encoded in self.graph.objects(head, MAGNET.compose):
                if not isinstance(encoded, Literal):
                    continue
                tail = tuple(Resource(u) for u in encoded.lexical.split())
                chains.append((head, *tail))
        return sorted(chains, key=lambda c: (-len(c), [p.uri for p in c]))

    # ------------------------------------------------------------------
    # Important properties (automatic one-level composition)
    # ------------------------------------------------------------------

    def mark_important(self, prop: Resource) -> None:
        """Ask Magnet to compose one more attribute level through ``prop``."""
        self.graph.add(prop, MAGNET.importantProperty, Literal(True))

    def important_properties(self) -> list[Resource]:
        """Properties annotated as important (sorted)."""
        found = [
            p
            for p in self.graph.subjects(MAGNET.importantProperty)
            if isinstance(p, Resource)
        ]
        return sorted(found)

    def expand_important(self, max_second_level: int = 16) -> list[tuple[Resource, Resource]]:
        """Derive (important, second-level) chains from the data itself.

        For each important property, inspect the objects it points to and
        collect the properties those objects carry; the most frequent
        second-level properties (up to ``max_second_level``) become
        two-step compositions.  This is how the inbox's ``body``
        annotation yields "type / content / creator / date on the body"
        suggestions in Figure 6.
        """
        chains: list[tuple[Resource, Resource]] = []
        for prop in self.important_properties():
            counts: Counter[Resource] = Counter()
            for _s, _p, target in self.graph.triples(None, prop, None):
                if isinstance(target, Literal):
                    continue
                for second in self.graph.predicates(subject=target):
                    if second == MAGNET.valueType or self.is_hidden(second):
                        continue
                    counts[second] += 1
            ranked = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0].uri))
            chains.extend((prop, second) for second, _n in ranked[:max_second_level])
        return chains

    def effective_compositions(self) -> list[tuple[Resource, ...]]:
        """Declared compositions plus chains derived from important props."""
        chains = list(self.compositions())
        seen = set(chains)
        for chain in self.expand_important():
            if chain not in seen:
                seen.add(chain)
                chains.append(chain)
        return chains


#: Strings are "categorical" (facetable, typed ``object``) rather than
#: prose when they are short and repeat across items.
_CATEGORICAL_MAX_TOKENS = 6
_CATEGORICAL_MAX_CHARS = 48
_CATEGORICAL_MAX_DISTINCT_RATIO = 0.9


def infer_value_types(graph: Graph, min_support: float = 0.9) -> dict[Resource, str]:
    """Heuristically infer property value types from the data (§7).

    The paper's future work calls for "heuristic rules or learning
    approaches to determine such annotations".  This routine looks at the
    literals each property carries: when at least ``min_support`` of a
    property's values share a kind (integer / float / date / datetime /
    string), that kind is proposed.  Properties whose objects are
    resources are typed ``object``.

    Plain strings are split by corpus statistics: short values that
    repeat across items (state birds, regions) are *categorical* —
    proposed as ``object`` so they behave as facets — while long or
    mostly-unique values (titles, prose) are proposed as ``text``.

    Returns a mapping; it does **not** write annotations — callers decide
    whether to apply them via :meth:`Schema.set_value_type`.
    """
    tallies: dict[Resource, Counter[str]] = {}
    string_stats: dict[Resource, list] = {}
    for _s, prop, obj in graph.triples():
        if prop in (MAGNET.valueType, MAGNET.compose, MAGNET.hidden,
                    MAGNET.importantProperty, RDF.type, RDFS.label):
            continue
        bucket = tallies.setdefault(prop, Counter())
        kind = _classify(obj)
        bucket[kind] += 1
        if kind == "string":
            # [distinct values, total count, max tokens, max chars]
            stats = string_stats.setdefault(prop, [set(), 0, 0, 0])
            stats[0].add(obj.lexical)
            stats[1] += 1
            stats[2] = max(stats[2], len(obj.lexical.split()))
            stats[3] = max(stats[3], len(obj.lexical))
    proposed: dict[Resource, str] = {}
    for prop, counts in tallies.items():
        total = sum(counts.values())
        kind, hits = counts.most_common(1)[0]
        if hits / total < min_support:
            continue
        if kind == "string":
            proposed[prop] = _classify_string_property(string_stats[prop])
        else:
            proposed[prop] = kind
    return proposed


def _classify_string_property(stats: list) -> str:
    distinct, total, max_tokens, max_chars = stats
    if (
        max_tokens <= _CATEGORICAL_MAX_TOKENS
        and max_chars <= _CATEGORICAL_MAX_CHARS
        and total > 0
        and len(distinct) / total <= _CATEGORICAL_MAX_DISTINCT_RATIO
    ):
        return ValueType.OBJECT
    return ValueType.TEXT


def _classify(obj: Node) -> str:
    """Kind of one value: a ValueType name, or 'string' for raw strings."""
    if not isinstance(obj, Literal):
        return ValueType.OBJECT
    if obj.datatype is None:
        lexical = obj.lexical.strip()
        if _looks_like_int(lexical):
            return ValueType.INTEGER
        if _looks_like_float(lexical):
            return ValueType.FLOAT
        return "string"
    value = obj.value
    if isinstance(value, bool):
        return "string"
    if isinstance(value, int):
        return ValueType.INTEGER
    if isinstance(value, float):
        return ValueType.FLOAT
    import datetime as _dt

    if isinstance(value, _dt.datetime):
        return ValueType.DATETIME
    if isinstance(value, _dt.date):
        return ValueType.DATE
    return "string"


def _looks_like_int(text: str) -> bool:
    if not text:
        return False
    body = text[1:] if text[0] in "+-" else text
    return body.isdigit()


def _looks_like_float(text: str) -> bool:
    if not text or "." not in text:
        return False
    try:
        float(text)
    except ValueError:
        return False
    return True
