"""CSV → RDF import, mirroring the paper's 50-states experiment (§6.1).

The 50-states dataset arrived as a comma-separated file with no labels or
types; Magnet showed raw RDF identifiers until annotations were added
(Figures 7 & 8).  This converter reproduces that pipeline: each row
becomes a resource, each column a property, and — exactly as in the paper
— the output is deliberately *unannotated* unless the caller asks for
labels or type inference.
"""

from __future__ import annotations

import csv
import io
from typing import Iterable

from .graph import Graph
from .namespace import Namespace
from .schema import Schema, infer_value_types
from .terms import Literal, Resource
from .vocab import RDF

__all__ = ["csv_to_graph", "rows_to_graph"]


def csv_to_graph(
    text: str,
    base_uri: str,
    row_type: str = "Row",
    key_column: str | None = None,
    add_labels: bool = False,
    infer_types: bool = False,
) -> Graph:
    """Convert CSV text to an RDF graph.

    Parameters
    ----------
    text:
        The CSV content; the first row must be a header.
    base_uri:
        Namespace under which row and property resources are minted.
    row_type:
        Local name of the ``rdf:type`` given to every row resource.
    key_column:
        Header of the column used to name row resources; defaults to the
        first column.
    add_labels:
        When True, attach ``rdfs:label`` annotations for properties (from
        headers) and for rows (from the key column) — the "adding labels"
        step of Figure 8.
    infer_types:
        When True, run :func:`infer_value_types` and record the results
        as ``magnet:valueType`` annotations — the "annotating the area
        property to indicate that it is an integer" step of Figure 8.
    """
    reader = csv.reader(io.StringIO(text))
    rows = list(reader)
    if not rows:
        return Graph()
    header, *data = rows
    if not header:
        raise ValueError("CSV header row is empty")
    dict_rows = []
    for row in data:
        if not row or all(not cell.strip() for cell in row):
            continue
        if len(row) != len(header):
            raise ValueError(
                f"row has {len(row)} cells but header has {len(header)}"
            )
        dict_rows.append(dict(zip(header, row)))
    return rows_to_graph(
        dict_rows,
        base_uri,
        row_type=row_type,
        key_column=key_column or header[0],
        add_labels=add_labels,
        infer_types=infer_types,
    )


def rows_to_graph(
    rows: Iterable[dict[str, object]],
    base_uri: str,
    row_type: str = "Row",
    key_column: str | None = None,
    add_labels: bool = False,
    infer_types: bool = False,
) -> Graph:
    """Convert an iterable of dict rows to an RDF graph.

    Values that are already :class:`Literal`/:class:`Resource` pass
    through; strings, numbers, and dates are coerced to literals.
    """
    ns = Namespace(base_uri if base_uri.endswith(("/", "#")) else base_uri + "/")
    graph = Graph()
    schema = Schema(graph)
    type_resource = ns[row_type]
    properties: dict[str, Resource] = {}

    for index, row in enumerate(rows):
        if key_column and key_column in row:
            key = str(row[key_column])
        else:
            key = f"{row_type.lower()}-{index + 1}"
        subject = ns[f"item/{_slug(key)}"]
        graph.add(subject, RDF.type, type_resource)
        if add_labels:
            schema.set_label(subject, key)
        for column, raw in row.items():
            if raw is None or (isinstance(raw, str) and not raw.strip()):
                continue
            prop = properties.get(column)
            if prop is None:
                prop = ns[f"property/{_slug(column)}"]
                properties[column] = prop
                if add_labels:
                    schema.set_label(prop, column)
            graph.add(subject, prop, _coerce_cell(raw))

    if infer_types:
        for prop, kind in sorted(
            infer_value_types(graph).items(), key=lambda kv: kv[0].uri
        ):
            schema.set_value_type(prop, kind)
    return graph


def _slug(text: str) -> str:
    out = []
    for ch in text.strip().lower():
        if ch.isalnum():
            out.append(ch)
        elif out and out[-1] != "-":
            out.append("-")
    return "".join(out).strip("-") or "x"


def _coerce_cell(raw) -> Literal | Resource:
    if isinstance(raw, (Literal, Resource)):
        return raw
    if isinstance(raw, str):
        text = raw.strip()
        if _is_int(text):
            return Literal(int(text))
        try:
            if "." in text:
                return Literal(float(text))
        except ValueError:
            pass
        return Literal(text)
    return Literal(raw)


def _is_int(text: str) -> bool:
    if not text:
        return False
    body = text[1:] if text[0] in "+-" else text
    return body.isdigit()
