"""N-Triples serialization — the line-oriented RDF exchange format.

Magnet consumes RDF from external sources (§6.1 uses RDF conversions of
the CIA World Factbook, OCW, and ArtSTOR); this module provides the
parser and serializer used to move graphs in and out of the repository.

The dialect implemented is classic N-Triples: one triple per line,
``<uri>``, ``_:id``, and ``"literal"`` (optionally ``@lang`` or
``^^<datatype>``), terminated by ``.``.  Comments start with ``#``.
"""

from __future__ import annotations

from typing import IO, Iterable, Iterator

from .graph import Graph, Triple
from .terms import BlankNode, Literal, Node, Resource

__all__ = ["parse_ntriples", "serialize_ntriples", "dump", "load", "NTriplesError"]


class NTriplesError(ValueError):
    """Raised on malformed N-Triples input, with line information."""

    def __init__(self, message: str, line_no: int, line: str):
        super().__init__(f"line {line_no}: {message}: {line.strip()!r}")
        self.line_no = line_no
        self.line = line


def parse_ntriples(text: str) -> Graph:
    """Parse N-Triples text into a new :class:`Graph`."""
    graph = Graph()
    for triple in iter_triples(text):
        graph.add(*triple)
    return graph


def iter_triples(text: str) -> Iterator[Triple]:
    """Yield triples from N-Triples text without building a graph."""
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        yield _parse_line(line, line_no)


def _parse_line(line: str, line_no: int) -> Triple:
    pos = 0
    subject, pos = _parse_term(line, pos, line_no)
    if isinstance(subject, Literal):
        raise NTriplesError("literal in subject position", line_no, line)
    predicate, pos = _parse_term(line, pos, line_no)
    if not isinstance(predicate, Resource):
        raise NTriplesError("predicate must be a URI", line_no, line)
    obj, pos = _parse_term(line, pos, line_no)
    rest = line[pos:].strip()
    if rest != ".":
        raise NTriplesError("expected terminating '.'", line_no, line)
    return (subject, predicate, obj)


def _parse_term(line: str, pos: int, line_no: int) -> tuple[Node, int]:
    while pos < len(line) and line[pos] in " \t":
        pos += 1
    if pos >= len(line):
        raise NTriplesError("unexpected end of line", line_no, line)
    ch = line[pos]
    if ch == "<":
        end = line.find(">", pos)
        if end < 0:
            raise NTriplesError("unterminated URI", line_no, line)
        return Resource(line[pos + 1:end]), end + 1
    if ch == "_" and line[pos:pos + 2] == "_:":
        end = pos + 2
        while end < len(line) and (line[end].isalnum() or line[end] in "-_"):
            end += 1
        if end == pos + 2:
            raise NTriplesError("empty blank-node id", line_no, line)
        return BlankNode(line[pos + 2:end]), end
    if ch == '"':
        lexical, end = _parse_quoted(line, pos, line_no)
        datatype = None
        language = None
        if line[end:end + 2] == "^^":
            if line[end + 2:end + 3] != "<":
                raise NTriplesError("datatype must be a URI", line_no, line)
            close = line.find(">", end + 3)
            if close < 0:
                raise NTriplesError("unterminated datatype URI", line_no, line)
            datatype = line[end + 3:close]
            end = close + 1
        elif line[end:end + 1] == "@":
            tag_end = end + 1
            while tag_end < len(line) and (line[tag_end].isalnum() or line[tag_end] == "-"):
                tag_end += 1
            language = line[end + 1:tag_end]
            if not language:
                raise NTriplesError("empty language tag", line_no, line)
            end = tag_end
        return Literal(lexical, datatype=datatype, language=language), end
    raise NTriplesError(f"unexpected character {ch!r}", line_no, line)


_ESCAPES = {"n": "\n", "r": "\r", "t": "\t", '"': '"', "\\": "\\"}


def _parse_quoted(line: str, pos: int, line_no: int) -> tuple[str, int]:
    assert line[pos] == '"'
    out: list[str] = []
    i = pos + 1
    while i < len(line):
        ch = line[i]
        if ch == "\\":
            if i + 1 >= len(line):
                raise NTriplesError("dangling escape", line_no, line)
            esc = line[i + 1]
            if esc == "u":
                if i + 6 > len(line):
                    raise NTriplesError("short \\u escape", line_no, line)
                out.append(chr(int(line[i + 2:i + 6], 16)))
                i += 6
                continue
            if esc not in _ESCAPES:
                raise NTriplesError(f"unknown escape \\{esc}", line_no, line)
            out.append(_ESCAPES[esc])
            i += 2
            continue
        if ch == '"':
            return "".join(out), i + 1
        out.append(ch)
        i += 1
    raise NTriplesError("unterminated literal", line_no, line)


def serialize_ntriples(triples: Iterable[Triple]) -> str:
    """Serialize triples to canonical N-Triples text (sorted lines)."""
    lines = sorted(
        f"{s.n3()} {p.n3()} {o.n3()} ." for s, p, o in triples
    )
    return "\n".join(lines) + ("\n" if lines else "")


def dump(graph: Graph, stream: IO[str]) -> None:
    """Write a graph to a text stream as N-Triples."""
    stream.write(serialize_ntriples(graph.triples()))


def load(stream: IO[str]) -> Graph:
    """Read a graph from a text stream of N-Triples."""
    return parse_ntriples(stream.read())
