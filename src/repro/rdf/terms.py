"""RDF term types: the nodes and arc labels of a semantic network.

The paper's data model (§2, §5) is RDF: a directed graph whose nodes are
*resources* (complex information objects) or *literals* (primitive
values — strings, numbers, dates), connected by *property* arcs that are
themselves resources.  This module defines the immutable term types used
throughout the repository.

Terms are hashable value objects so they can be used directly as
dictionary keys in the triple store's indexes and as coordinates in the
vector space model.
"""

from __future__ import annotations

import datetime as _dt
from typing import Union

__all__ = [
    "Term",
    "Resource",
    "BlankNode",
    "Literal",
    "Node",
    "coerce_literal",
]


class Term:
    """Base class for every RDF term.

    Subclasses are immutable: equality and hashing are value-based, which
    lets terms serve as index keys and vector coordinates.
    """

    __slots__ = ()

    def n3(self) -> str:
        """Return the N-Triples surface form of this term."""
        raise NotImplementedError


class Resource(Term):
    """A named node (URI reference) in the graph.

    Resources identify complex information objects — a recipe, an e-mail,
    a person — as well as the properties connecting them.
    """

    __slots__ = ("uri", "_hash")

    def __init__(self, uri: str):
        if not uri:
            raise ValueError("Resource URI must be a non-empty string")
        object.__setattr__(self, "uri", uri)
        # Terms are dict keys on every hot path (triple indexes, facet
        # tallies, vector coordinates); immutability makes the hash
        # cacheable at construction.
        object.__setattr__(self, "_hash", hash(("Resource", uri)))

    def __setattr__(self, name, value):  # pragma: no cover - defensive
        raise AttributeError("Resource is immutable")

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Resource) and self.uri == other.uri

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Resource({self.uri!r})"

    def __lt__(self, other: "Resource") -> bool:
        if not isinstance(other, Resource):
            return NotImplemented
        return self.uri < other.uri

    def n3(self) -> str:
        return f"<{self.uri}>"

    @property
    def local_name(self) -> str:
        """The fragment after the last '#' or '/' — a readable short name."""
        for sep in ("#", "/"):
            if sep in self.uri:
                tail = self.uri.rsplit(sep, 1)[1]
                if tail:
                    return tail
        return self.uri


class BlankNode(Term):
    """An anonymous node, identified only within one graph."""

    __slots__ = ("node_id", "_hash")

    def __init__(self, node_id: str):
        if not node_id:
            raise ValueError("BlankNode id must be a non-empty string")
        object.__setattr__(self, "node_id", node_id)
        object.__setattr__(self, "_hash", hash(("BlankNode", node_id)))

    def __setattr__(self, name, value):  # pragma: no cover - defensive
        raise AttributeError("BlankNode is immutable")

    def __eq__(self, other: object) -> bool:
        return isinstance(other, BlankNode) and self.node_id == other.node_id

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"BlankNode({self.node_id!r})"

    def n3(self) -> str:
        return f"_:{self.node_id}"


#: XSD datatype URIs used for typed literals.
XSD_STRING = "http://www.w3.org/2001/XMLSchema#string"
XSD_INTEGER = "http://www.w3.org/2001/XMLSchema#integer"
XSD_DECIMAL = "http://www.w3.org/2001/XMLSchema#decimal"
XSD_DOUBLE = "http://www.w3.org/2001/XMLSchema#double"
XSD_BOOLEAN = "http://www.w3.org/2001/XMLSchema#boolean"
XSD_DATE = "http://www.w3.org/2001/XMLSchema#date"
XSD_DATETIME = "http://www.w3.org/2001/XMLSchema#dateTime"


class Literal(Term):
    """A primitive value: string, number, boolean, or date.

    A literal carries its lexical form plus an optional datatype URI.
    ``value`` converts the lexical form to the natural Python type, which
    the query engine's typed extensions (§4.2) and the vector space
    model's numeric encoding (§5.4) rely on.
    """

    __slots__ = ("lexical", "datatype", "language", "_hash")

    def __init__(self, lexical, datatype: str | None = None,
                 language: str | None = None):
        if datatype is not None and language is not None:
            raise ValueError("a literal cannot have both datatype and language")
        if datatype is None and language is None and not isinstance(lexical, str):
            lexical, datatype = _infer_lexical(lexical)
        lexical = str(lexical)
        object.__setattr__(self, "lexical", lexical)
        object.__setattr__(self, "datatype", datatype)
        object.__setattr__(self, "language", language)
        object.__setattr__(
            self, "_hash", hash(("Literal", lexical, datatype, language))
        )

    def __setattr__(self, name, value):  # pragma: no cover - defensive
        raise AttributeError("Literal is immutable")

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Literal)
            and self.lexical == other.lexical
            and self.datatype == other.datatype
            and self.language == other.language
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        extra = ""
        if self.datatype:
            extra = f", datatype={self.datatype!r}"
        elif self.language:
            extra = f", language={self.language!r}"
        return f"Literal({self.lexical!r}{extra})"

    def __lt__(self, other: "Literal") -> bool:
        if not isinstance(other, Literal):
            return NotImplemented
        return self.sort_key() < other.sort_key()

    def sort_key(self):
        """A key that orders numeric literals numerically, others lexically."""
        if self.is_numeric:
            return (0, float(self.value), "")
        return (1, 0.0, self.lexical)

    def n3(self) -> str:
        escaped = (
            self.lexical.replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n")
            .replace("\r", "\\r")
            .replace("\t", "\\t")
        )
        if self.datatype:
            return f'"{escaped}"^^<{self.datatype}>'
        if self.language:
            return f'"{escaped}"@{self.language}'
        return f'"{escaped}"'

    @property
    def is_numeric(self) -> bool:
        return self.datatype in (XSD_INTEGER, XSD_DECIMAL, XSD_DOUBLE)

    @property
    def is_temporal(self) -> bool:
        return self.datatype in (XSD_DATE, XSD_DATETIME)

    @property
    def value(self):
        """The literal as a natural Python value (str/int/float/bool/date)."""
        if self.datatype == XSD_INTEGER:
            return int(self.lexical)
        if self.datatype in (XSD_DECIMAL, XSD_DOUBLE):
            return float(self.lexical)
        if self.datatype == XSD_BOOLEAN:
            return self.lexical.strip().lower() in ("true", "1")
        if self.datatype == XSD_DATE:
            return _dt.date.fromisoformat(self.lexical)
        if self.datatype == XSD_DATETIME:
            return _dt.datetime.fromisoformat(self.lexical)
        return self.lexical

    def as_number(self) -> float | None:
        """The literal mapped onto the real line, or None when impossible.

        Temporal values map to ordinal days / POSIX-like seconds so that
        'a day apart' is numerically close (§5.4).
        """
        if self.is_numeric:
            return float(self.value)
        if self.datatype == XSD_DATE:
            return float(self.value.toordinal())
        if self.datatype == XSD_DATETIME:
            stamp = self.value
            return float(stamp.toordinal()) + (
                stamp.hour * 3600 + stamp.minute * 60 + stamp.second
            ) / 86400.0
        try:
            return float(self.lexical)
        except ValueError:
            return None


#: Anything that may appear as the object of a triple.
Node = Union[Resource, BlankNode, Literal]


def _infer_lexical(value) -> tuple[str, str]:
    """Map a native Python value to (lexical form, datatype URI)."""
    if isinstance(value, bool):
        return ("true" if value else "false", XSD_BOOLEAN)
    if isinstance(value, int):
        return (str(value), XSD_INTEGER)
    if isinstance(value, float):
        return (repr(value), XSD_DOUBLE)
    if isinstance(value, _dt.datetime):
        return (value.isoformat(), XSD_DATETIME)
    if isinstance(value, _dt.date):
        return (value.isoformat(), XSD_DATE)
    raise TypeError(f"cannot build a Literal from {type(value).__name__}")


def coerce_literal(value) -> Literal:
    """Coerce a Python value (or existing Literal) to a Literal."""
    if isinstance(value, Literal):
        return value
    if isinstance(value, str):
        return Literal(value)
    return Literal(value)
