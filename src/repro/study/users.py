"""Simulated study participants (§6.3).

The 18 participants were graduate students using the system for the
first time.  A :class:`SimulatedUser` captures the behavioural traits
the paper's qualitative findings hinge on:

* ``capture_error_rate`` — Norman-style capture errors: "users performed
  an incorrect but more easily available sequence", notably adding nuts
  as a *constraint* and then excluding them, "producing the empty result
  set";
* ``negation_skill`` — how likely the user is to work out right-click
  negation unaided ("most users on both systems had a hard time getting
  negation right");
* ``patience`` — the navigation/examination step budget before the user
  declares the task done;
* ``favorites`` — the favorite ingredients task 2 asks them to include;
* ``overwhelm_threshold`` — how many simultaneous suggestions the user
  tolerates before complaining (one baseline user did).
"""

from __future__ import annotations

import random

__all__ = ["SimulatedUser", "sample_users"]


class SimulatedUser:
    """One participant's behavioural parameters."""

    def __init__(
        self,
        user_id: int,
        rng: random.Random,
        favorites: list[str],
        patience: int,
        capture_error_rate: float,
        negation_skill: float,
        rescue_willingness: float,
        overwhelm_threshold: int,
    ):
        self.user_id = user_id
        self.rng = rng
        self.favorites = favorites
        self.patience = patience
        self.capture_error_rate = capture_error_rate
        self.negation_skill = negation_skill
        #: probability of following an advisor's rescue suggestion when
        #: stuck (the contrary advisor "would suggest negation to get
        #: them started in the process").
        self.rescue_willingness = rescue_willingness
        self.overwhelm_threshold = overwhelm_threshold

    def __repr__(self) -> str:
        return (
            f"<SimulatedUser #{self.user_id} patience={self.patience} "
            f"capture={self.capture_error_rate:.2f}>"
        )


_FAVORITE_POOL = [
    "avocado", "lime", "cilantro", "corn", "black bean", "chicken",
    "shrimp", "chocolate", "mango", "garlic", "tomato", "cheddar",
]


def sample_users(
    n_users: int = 18, seed: int = 23
) -> list[SimulatedUser]:
    """Draw a cohort of participants, deterministic in ``seed``."""
    master = random.Random(seed)
    users = []
    for user_id in range(1, n_users + 1):
        rng = random.Random(master.randrange(2**31))
        favorites = master.sample(_FAVORITE_POOL, k=3)
        users.append(
            SimulatedUser(
                user_id=user_id,
                rng=rng,
                favorites=favorites,
                patience=master.randint(12, 22),
                capture_error_rate=master.uniform(0.5, 0.9),
                negation_skill=master.uniform(0.15, 0.45),
                rescue_willingness=master.uniform(0.6, 0.95),
                overwhelm_threshold=master.randint(52, 120),
            )
        )
    return users
