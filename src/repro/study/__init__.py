"""The simulated user study of §6.3."""

from .metrics import StudyReport, TaskStats, run_study, welch_t
from .simulator import (
    SYSTEM_BASELINE,
    SYSTEM_COMPLETE,
    StudyRunner,
    TaskOutcome,
)
from .tasks import RecipeJudge
from .users import SimulatedUser, sample_users

__all__ = [
    "StudyReport",
    "TaskStats",
    "run_study",
    "welch_t",
    "SYSTEM_BASELINE",
    "SYSTEM_COMPLETE",
    "StudyRunner",
    "TaskOutcome",
    "RecipeJudge",
    "SimulatedUser",
    "sample_users",
]
