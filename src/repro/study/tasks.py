"""Task definitions and success criteria for the user study (§6.3).

The two directed tasks, verbatim from the paper:

1. *"When an aunt left your place, you found a recipe that she had been
   excited about ... it has walnuts and your uncle is allergic to nuts.
   Find the recipe on the system and a few 2-3 other related recipes
   that your uncle and aunt may like."*  — success items are recipes
   related to the target (same cuisine or same course) containing **no
   nut-group ingredient**.

2. *"You are planning a party ... a Mexican themed night ... Make sure
   you have some soups or appetizers, as well as salads and desserts on
   top of the meal.  Try to include some of your favorite ingredients."*
   — success items are Mexican recipes; the menu wants course coverage
   {soup|appetizer, salad, dessert, main}.
"""

from __future__ import annotations

from ..datasets.base import Corpus
from ..rdf.terms import Node

__all__ = ["RecipeJudge"]


class RecipeJudge:
    """Evaluates task success criteria against the recipe corpus."""

    def __init__(self, corpus: Corpus):
        self.corpus = corpus
        self.graph = corpus.graph
        self.props = corpus.extras["properties"]
        self.nut_ingredients = set(corpus.extras["ingredient_groups"]["nuts"])
        self.target = corpus.extras["walnut_recipe"]
        self.mexican = corpus.extras["cuisines"]["Mexican"]
        self.courses = corpus.extras["courses"]

    # -- shared -----------------------------------------------------------

    def ingredients_of(self, recipe: Node) -> set[Node]:
        return set(self.graph.objects(recipe, self.props["ingredient"]))

    def has_nuts(self, recipe: Node) -> bool:
        """True when any ingredient is in the nut food group."""
        return bool(self.ingredients_of(recipe) & self.nut_ingredients)

    def cuisine_of(self, recipe: Node) -> Node | None:
        return self.graph.value(recipe, self.props["cuisine"])

    def courses_of(self, recipe: Node) -> set[Node]:
        return set(self.graph.objects(recipe, self.props["course"]))

    # -- task 1 -------------------------------------------------------------

    def is_related_to_target(self, recipe: Node) -> bool:
        """Related = shares the target's cuisine or a course."""
        if recipe == self.target:
            return False
        same_cuisine = self.cuisine_of(recipe) == self.cuisine_of(self.target)
        same_course = bool(self.courses_of(recipe) & self.courses_of(self.target))
        return same_cuisine or same_course

    def satisfies_task1(self, recipe: Node) -> bool:
        """A valid "recipe the uncle and aunt may like"."""
        return self.is_related_to_target(recipe) and not self.has_nuts(recipe)

    # -- task 2 -------------------------------------------------------------

    def is_mexican(self, recipe: Node) -> bool:
        return self.cuisine_of(recipe) == self.mexican

    def satisfies_task2(self, recipe: Node) -> bool:
        """A valid menu entry: Mexican, in one of the wanted courses."""
        wanted = {
            self.courses["Soup"], self.courses["Appetizer"],
            self.courses["Salad"], self.courses["Dessert"],
            self.courses["Main Course"],
        }
        return self.is_mexican(recipe) and bool(self.courses_of(recipe) & wanted)

    def menu_course_slot(self, recipe: Node) -> str | None:
        """Which menu slot a recipe fills (soups/appetizers count as one)."""
        slots = {
            self.courses["Soup"]: "starter",
            self.courses["Appetizer"]: "starter",
            self.courses["Salad"]: "salad",
            self.courses["Dessert"]: "dessert",
            self.courses["Main Course"]: "meal",
        }
        for course in self.courses_of(recipe):
            slot = slots.get(course)
            if slot is not None:
                return slot
        return None

    def uses_favorite(self, recipe: Node, favorites: list[str]) -> bool:
        """True when any favorite ingredient appears in the recipe."""
        favored = {
            self.corpus.extras["ingredients"][name]
            for name in favorites
            if name in self.corpus.extras["ingredients"]
        }
        return bool(self.ingredients_of(recipe) & favored)
