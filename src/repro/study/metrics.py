"""Aggregation of study outcomes into the paper's reported numbers.

§6.3.1 reports, per directed task, the average number of recipes found
with each system (task 1: 2.70 complete vs 1.71 baseline; task 2: 5.80
vs 4.87), plus qualitative counts: capture errors around negation, the
single overwhelmed baseline user, and the caveat that the study was too
small for statistical significance — which the report surfaces via a
plain Welch t statistic.
"""

from __future__ import annotations

import math
from typing import Sequence

from .simulator import (
    SYSTEM_BASELINE,
    SYSTEM_COMPLETE,
    StudyRunner,
    TaskOutcome,
)
from .users import SimulatedUser, sample_users

__all__ = ["TaskStats", "StudyReport", "run_study"]


class TaskStats:
    """Mean/std of found counts for one (task, system) cell."""

    def __init__(self, task: str, system: str, outcomes: Sequence[TaskOutcome]):
        self.task = task
        self.system = system
        self.outcomes = list(outcomes)
        counts = [o.n_found for o in self.outcomes]
        self.n = len(counts)
        self.mean_found = sum(counts) / self.n if self.n else 0.0
        if self.n > 1:
            variance = sum((c - self.mean_found) ** 2 for c in counts) / (
                self.n - 1
            )
        else:
            variance = 0.0
        self.std_found = math.sqrt(variance)
        self.capture_errors = sum(o.capture_errors for o in self.outcomes)
        self.empty_results = sum(o.empty_results for o in self.outcomes)
        self.rescued = sum(o.rescued_by_advisor for o in self.outcomes)
        self.overwhelmed_users = sum(1 for o in self.outcomes if o.overwhelmed)

    def __repr__(self) -> str:
        return (
            f"<TaskStats {self.task}/{self.system} "
            f"mean={self.mean_found:.2f}±{self.std_found:.2f}>"
        )


def welch_t(a: TaskStats, b: TaskStats) -> float:
    """Welch's t statistic between two cells (0 when degenerate)."""
    if a.n < 2 or b.n < 2:
        return 0.0
    va = a.std_found**2 / a.n
    vb = b.std_found**2 / b.n
    denominator = math.sqrt(va + vb)
    if denominator == 0.0:
        return 0.0
    return (a.mean_found - b.mean_found) / denominator


class StudyReport:
    """The full study result: a 2×2 grid of cells plus derived rows."""

    def __init__(self, cells: dict[tuple[str, str], TaskStats]):
        self.cells = cells

    def cell(self, task: str, system: str) -> TaskStats:
        return self.cells[(task, system)]

    def rows(self) -> list[dict]:
        """The paper's comparison rows (means per task per system)."""
        rows = []
        for task in ("task1", "task2"):
            complete = self.cell(task, SYSTEM_COMPLETE)
            baseline = self.cell(task, SYSTEM_BASELINE)
            rows.append(
                {
                    "task": task,
                    "complete_mean": complete.mean_found,
                    "baseline_mean": baseline.mean_found,
                    "complete_std": complete.std_found,
                    "baseline_std": baseline.std_found,
                    "welch_t": welch_t(complete, baseline),
                }
            )
        return rows

    def render(self) -> str:
        """A text table mirroring §6.3.1's reported numbers."""
        lines = [
            "User study — recipes found per directed task "
            "(mean over participants)",
            f"{'task':<8} {'complete':>10} {'baseline':>10} {'t':>7}",
        ]
        for row in self.rows():
            lines.append(
                f"{row['task']:<8} {row['complete_mean']:>10.2f} "
                f"{row['baseline_mean']:>10.2f} {row['welch_t']:>7.2f}"
            )
        complete1 = self.cell("task1", SYSTEM_COMPLETE)
        baseline1 = self.cell("task1", SYSTEM_BASELINE)
        lines.append("")
        lines.append(
            f"capture errors (task 1): complete={complete1.capture_errors} "
            f"baseline={baseline1.capture_errors}"
        )
        lines.append(
            f"empty-result events (task 1): "
            f"complete={complete1.empty_results} "
            f"baseline={baseline1.empty_results}"
        )
        lines.append(
            f"advisor rescues (task 1, complete): {complete1.rescued}"
        )
        overwhelmed = {
            system: sum(
                self.cell(task, system).overwhelmed_users
                for task in ("task1", "task2")
            )
            for system in (SYSTEM_COMPLETE, SYSTEM_BASELINE)
        }
        lines.append(
            f"overwhelmed users: complete={overwhelmed[SYSTEM_COMPLETE]} "
            f"baseline={overwhelmed[SYSTEM_BASELINE]}"
        )
        return "\n".join(lines)


def run_study(
    runner: StudyRunner,
    users: Sequence[SimulatedUser] | None = None,
    n_users: int = 18,
    seed: int = 23,
) -> StudyReport:
    """Run both tasks on both systems for every user.

    Each user gets an independent RNG stream per (task, system) cell so
    the two systems see identical user traits but independent in-task
    randomness — the within-subjects design of the paper.
    """
    cohort = list(users) if users is not None else sample_users(n_users, seed)
    cells: dict[tuple[str, str], list[TaskOutcome]] = {
        ("task1", SYSTEM_COMPLETE): [],
        ("task1", SYSTEM_BASELINE): [],
        ("task2", SYSTEM_COMPLETE): [],
        ("task2", SYSTEM_BASELINE): [],
    }
    task_salt = {"task1": 1, "task2": 2}
    for user in cohort:
        import random as _random

        base = user.rng.randrange(2**31)
        for task_name, run in (("task1", runner.run_task1),
                               ("task2", runner.run_task2)):
            for offset, system in enumerate(
                (SYSTEM_COMPLETE, SYSTEM_BASELINE)
            ):
                user.rng = _random.Random(
                    base + 1000 * offset + 97 * task_salt[task_name]
                )
                cells[(task_name, system)].append(run(user, system))
    return StudyReport(
        {
            key: TaskStats(key[0], key[1], outcomes)
            for key, outcomes in cells.items()
        }
    )
