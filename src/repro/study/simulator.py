"""The simulated user study (§6.3): 18 users, two systems, two tasks.

Users are simulated *against the real system*: every navigation step
below goes through a live :class:`~repro.browser.session.Session`
(searches, facet refinements, similarity suggestions, negations), so the
complete-vs-baseline gap emerges from what the two systems actually
offer:

* the **complete** system runs all advisors; when a capture error lands
  a user on an empty result, the Contrary Constraints advisor offers the
  negation that "got them started in the process", and the
  Similar-by-Content advisor supplies extra related candidates;
* the **baseline** system (Flamenco-style refinements, text terms,
  manual right-click negation) leaves recovery to the user's own
  negation skill.

Capture errors follow the paper's description: in task 1 "some users
attempted to find recipes by adding 2 or 3 ingredients, *including
nuts*, as constraints ... and then issuing a refinement to exclude items
with nuts, producing the empty result set".
"""

from __future__ import annotations

from ..browser.session import Session
from ..core.advisors import MODIFY, RELATED_ITEMS
from ..core.analysts import baseline_analysts, standard_analysts
from ..core.engine import NavigationEngine
from ..core.suggestions import GoToCollection, NewQuery
from ..core.workspace import Workspace
from ..datasets.base import Corpus
from ..query.ast import And, HasValue, Not, TextMatch, TypeIs
from ..rdf.terms import Node
from .tasks import RecipeJudge
from .users import SimulatedUser

__all__ = ["SYSTEM_COMPLETE", "SYSTEM_BASELINE", "TaskOutcome", "StudyRunner"]

SYSTEM_COMPLETE = "complete"
SYSTEM_BASELINE = "baseline"


class TaskOutcome:
    """What one user achieved on one task with one system."""

    def __init__(self, user_id: int, system: str, task: str):
        self.user_id = user_id
        self.system = system
        self.task = task
        self.found: list[Node] = []
        self.steps_used = 0
        self.capture_errors = 0
        self.empty_results = 0
        self.rescued_by_advisor = 0
        self.overwhelmed = False
        #: analyst names whose suggestions the user followed
        self.features_used: set[str] = set()

    @property
    def n_found(self) -> int:
        return len(self.found)

    def __repr__(self) -> str:
        return (
            f"<TaskOutcome u{self.user_id} {self.system}/{self.task} "
            f"found={self.n_found} steps={self.steps_used} "
            f"captures={self.capture_errors}>"
        )


class StudyRunner:
    """Runs the study tasks for one corpus/workspace pair."""

    def __init__(self, corpus: Corpus, workspace: Workspace | None = None):
        self.corpus = corpus
        self.workspace = (
            workspace
            if workspace is not None
            else Workspace(corpus.graph, schema=corpus.schema, items=corpus.items)
        )
        self.judge = RecipeJudge(corpus)
        self.props = corpus.extras["properties"]

    # ------------------------------------------------------------------
    # Session plumbing
    # ------------------------------------------------------------------

    def make_session(self, system: str) -> Session:
        """A fresh session wired for one of the two study systems."""
        if system == SYSTEM_COMPLETE:
            engine = NavigationEngine(analysts=standard_analysts())
        elif system == SYSTEM_BASELINE:
            engine = NavigationEngine(analysts=baseline_analysts())
        else:
            raise ValueError(f"unknown system {system!r}")
        return Session(self.workspace, engine=engine)

    def _check_overwhelm(
        self, session: Session, user: SimulatedUser, outcome: TaskOutcome
    ) -> None:
        """Does the amount of advice exceed the user's tolerance?

        The complete system curates each group to a few entries plus a
        '...' overflow marker; the Flamenco-style baseline lists facet
        values uncurated (up to a screenful per group), which is why the
        study's one overwhelmed complaint came from the baseline.
        """
        result = session.suggestions()
        if outcome.system == SYSTEM_COMPLETE:
            total = sum(len(batch) for batch in result.presented.values())
        else:
            per_group: dict = {}
            ungrouped = 0
            for suggestion in result.blackboard.entries:
                if suggestion.group is None:
                    ungrouped += 1
                else:
                    per_group[suggestion.group] = (
                        per_group.get(suggestion.group, 0) + 1
                    )
            total = ungrouped + sum(
                min(count, 15) for count in per_group.values()
            )
        if total > user.overwhelm_threshold:
            outcome.overwhelmed = True

    # ------------------------------------------------------------------
    # Task 1: the aunt's walnut recipe
    # ------------------------------------------------------------------

    def run_task1(self, user: SimulatedUser, system: str) -> TaskOutcome:
        outcome = TaskOutcome(user.user_id, system, "task1")
        session = self.make_session(system)
        target = self.judge.target
        # "a few 2-3 other related recipes": users set their own bar.
        goal = user.rng.randint(2, 4)

        # Locate the remembered recipe via the toolbar.
        session.search("walnut baklava")
        outcome.steps_used += 1
        if target not in session.current.items:
            session.search("walnut honey")
            outcome.steps_used += 1
        if target not in session.current.items:
            return outcome  # could not even find the recipe
        session.go_item(target)
        outcome.steps_used += 1

        made_capture_error = user.rng.random() < user.capture_error_rate
        if made_capture_error:
            self._task1_capture_error_path(user, session, outcome)
        else:
            self._check_overwhelm(session, user, outcome)

        if system == SYSTEM_COMPLETE:
            self._task1_complete_strategy(user, session, outcome, goal)
        else:
            self._task1_baseline_strategy(user, session, outcome, goal)
        return outcome

    def _task1_capture_error_path(
        self, user: SimulatedUser, session: Session, outcome: TaskOutcome
    ) -> None:
        """The wrong-but-available sequence: constrain on nuts, then exclude.

        ingredient=walnut ∧ NOT nuts is empty by construction, so the
        user hits a zero-result set and must recover.
        """
        outcome.capture_errors += 1
        ingredient = self.props["ingredient"]
        walnut = self.corpus.extras["ingredients"]["walnut"]
        query = And(
            [
                TypeIs(self.corpus.extras["types"]["Recipe"]),
                HasValue(ingredient, walnut),
                Not(HasValue(ingredient, walnut)),
            ]
        )
        session.run_query(query)
        outcome.steps_used += 3
        if not session.current.items:
            outcome.empty_results += 1
        # Recovery: the complete system's contrary advisor demonstrates
        # negation; baseline users must already know the trick.
        if session.engine.advisors.get(MODIFY) is not None:
            contrary = [
                s
                for s in session.suggestions().blackboard.for_advisor(MODIFY)
                if "NOT" in s.title and isinstance(s.action, NewQuery)
            ]
        else:  # pragma: no cover - advisors are always registered
            contrary = []
        if contrary:
            rescued = user.rng.random() < user.rescue_willingness
        else:
            # No contrary advisor (baseline): the user must already know
            # the right-click negation trick to recover cheaply.
            rescued = user.rng.random() < user.negation_skill
        if rescued:
            outcome.rescued_by_advisor += 1
        # Either way the user eventually returns to the target item; the
        # detour costs steps (far more when nothing rescued them —
        # "users seemed to be mapping negation to 'find similar but
        # not'" and floundered).
        outcome.steps_used += 2 if rescued else 6
        session.go_item(self.judge.target)

    def _examine_candidates(
        self,
        user: SimulatedUser,
        outcome: TaskOutcome,
        candidates: list[Node],
        accept,
        goal: int,
        cost: int = 1,
    ) -> None:
        """Examine items one by one, keeping acceptable ones.

        ``cost`` models how expensive one examination is: 1 for a
        relevance-ranked list (the candidate is probably on screen), 2
        for scrolling an arbitrary unranked collection.
        """
        for candidate in candidates:
            if outcome.steps_used >= user.patience or outcome.n_found >= goal:
                return
            outcome.steps_used += cost
            if candidate in outcome.found:
                continue
            if accept(candidate):
                outcome.found.append(candidate)

    def _task1_complete_strategy(
        self,
        user: SimulatedUser,
        session: Session,
        outcome: TaskOutcome,
        goal: int,
    ) -> None:
        """Ask for similar items, then examine them for nut-free matches.

        The user prefers the Similar-by-Content collection (one click to
        a relevance-ranked pool), then falls back to sharing-a-property
        hops — consciously skipping the nut-flavored ones, since the task
        itself says "no nuts".
        """
        result = session.suggestions()
        posted = [
            s
            for s in result.blackboard.for_advisor(RELATED_ITEMS)
            if isinstance(s.action, GoToCollection)
        ]
        similar = [s for s in posted if s.analyst == "similar-by-content-item"]
        sharing = sorted(
            (
                s
                for s in posted
                if s.analyst == "sharing-a-property"
                and not any(
                    nut in s.title.lower()
                    for nut in ("walnut", "almond", "pecan", "nut")
                )
            ),
            key=lambda s: -s.weight,
        )
        for suggestion in similar + sharing[:2]:
            if outcome.steps_used >= user.patience or outcome.n_found >= goal:
                break
            session.select(suggestion)
            outcome.steps_used += 1
            self._examine_candidates(
                user,
                outcome,
                session.current.items,
                self.judge.satisfies_task1,
                goal,
            )
            session.go_item(self.judge.target)

    def _task1_baseline_strategy(
        self,
        user: SimulatedUser,
        session: Session,
        outcome: TaskOutcome,
        goal: int,
    ) -> None:
        """Facet-only: refine by the target's cuisine/course and scan."""
        cuisine = self.judge.cuisine_of(self.judge.target)
        course = next(iter(self.judge.courses_of(self.judge.target)), None)
        parts = [TypeIs(self.corpus.extras["types"]["Recipe"])]
        if cuisine is not None:
            parts.append(HasValue(self.props["cuisine"], cuisine))
        if course is not None:
            parts.append(HasValue(self.props["course"], course))
        knows_negation = user.rng.random() < user.negation_skill
        if knows_negation:
            walnut = self.corpus.extras["ingredients"]["walnut"]
            parts.append(Not(HasValue(self.props["ingredient"], walnut)))
        session.run_query(And(parts))
        # Reaching this view takes several interface actions: scanning
        # the facet lists for cuisine and course, clicking each, and
        # (when attempted) working out the negation context menu.
        outcome.steps_used += 4 if knows_negation else 3
        if not session.current.items:
            outcome.empty_results += 1
            return
        self._check_overwhelm(session, user, outcome)
        # Examination order is whatever the collection shows; without the
        # similarity ranking the user wades through arbitrary matches.
        shuffled = list(session.current.items)
        user.rng.shuffle(shuffled)
        self._examine_candidates(
            user, outcome, shuffled, self.judge.satisfies_task1, goal, cost=2
        )

    # ------------------------------------------------------------------
    # Undirected tasks: "search recipes of interest" (§6.3)
    # ------------------------------------------------------------------

    def run_undirected(self, user: SimulatedUser, system: str) -> TaskOutcome:
        """Exploratory browsing with minimal constraints.

        The user starts from a favorite-ingredient search and then
        wanders: at each step they follow one of the presented
        suggestions (weight-biased choice), bookmarking recipes that use
        a favorite ingredient.  The paper's observation — users "seemed
        to not have problems using the extra features ... when they were
        doing an undirected part of the task" — shows up as the set of
        analyst features exercised along the way.
        """
        from ..core.suggestions import (
            GoToCollection as _GoToCollection,
            GoToItem as _GoToItem,
            NewQuery as _NewQuery,
            OpenRangeWidget as _OpenRangeWidget,
            Refine as _Refine,
        )

        outcome = TaskOutcome(user.user_id, system, "undirected")
        session = self.make_session(system)
        session.search(user.rng.choice(user.favorites))
        outcome.steps_used += 1
        while outcome.steps_used < user.patience:
            presented = [
                s
                for s in session.suggestions().all_suggestions()
                if isinstance(
                    s.action,
                    (_Refine, _GoToItem, _GoToCollection, _NewQuery,
                     _OpenRangeWidget),
                )
            ]
            view = session.current
            if view.is_collection and view.items and user.rng.random() < 0.4:
                # open something that looks interesting
                candidate = user.rng.choice(view.items)
                session.go_item(candidate)
                outcome.steps_used += 1
                if (
                    self.judge.uses_favorite(candidate, user.favorites)
                    and candidate not in outcome.found
                ):
                    outcome.found.append(candidate)
                continue
            if not presented:
                session.undo_refinement()
                outcome.steps_used += 1
                continue
            weights = [max(s.weight, 0.01) for s in presented]
            chosen = user.rng.choices(presented, weights=weights, k=1)[0]
            outcome.features_used.add(chosen.analyst or "unknown")
            result = session.select(chosen)
            outcome.steps_used += 1
            if isinstance(result, _OpenRangeWidget):
                preview = result.preview
                if not preview.is_empty:
                    middle = (preview.low + preview.high) / 2
                    session.apply_range(result.prop, preview.low, middle)
                    outcome.steps_used += 1
            if session.current.is_collection and not session.current.items:
                outcome.empty_results += 1
                session.undo_refinement()
                outcome.steps_used += 1
        return outcome

    # ------------------------------------------------------------------
    # Task 2: the Mexican party menu
    # ------------------------------------------------------------------

    def run_task2(self, user: SimulatedUser, system: str) -> TaskOutcome:
        outcome = TaskOutcome(user.user_id, system, "task2")
        session = self.make_session(system)
        # Planning a whole menu is the study's long task: participants
        # spent correspondingly more interface actions on it.
        user = _with_patience(user, user.patience + 6)
        recipe_type = TypeIs(self.corpus.extras["types"]["Recipe"])
        mexican = HasValue(
            self.props["cuisine"], self.corpus.extras["cuisines"]["Mexican"]
        )
        slots = ["starter", "salad", "dessert", "meal"]
        filled: set[str] = set()

        # Strategy split observed in the study: most refine to Mexican
        # first; some search a favorite ingredient first and refine after.
        favorite_first = user.rng.random() < 0.35
        if favorite_first:
            session.search(user.favorites[0])
            outcome.steps_used += 1
            session.run_query(And([recipe_type, mexican]))
            outcome.steps_used += 1
        else:
            session.run_query(And([recipe_type, mexican]))
            outcome.steps_used += 1
        self._check_overwhelm(session, user, outcome)

        course_values = {
            "starter": [
                self.corpus.extras["courses"]["Soup"],
                self.corpus.extras["courses"]["Appetizer"],
            ],
            "salad": [self.corpus.extras["courses"]["Salad"]],
            "dessert": [self.corpus.extras["courses"]["Dessert"]],
            "meal": [self.corpus.extras["courses"]["Main Course"]],
        }

        def accept_for_slot(slot: str):
            def _accept(recipe: Node) -> bool:
                return (
                    self.judge.satisfies_task2(recipe)
                    and self.judge.menu_course_slot(recipe) == slot
                )

            return _accept

        for slot in slots:
            if outcome.steps_used >= user.patience:
                break
            course = user.rng.choice(course_values[slot])
            query = And([recipe_type, mexican, HasValue(self.props["course"], course)])
            session.run_query(query)
            outcome.steps_used += 2
            if not session.current.items:
                outcome.empty_results += 1
                continue
            # Prefer recipes using a favorite ingredient when visible.
            candidates = sorted(
                session.current.items,
                key=lambda r: (
                    not self.judge.uses_favorite(r, user.favorites),
                    r.n3(),
                ),
            )
            per_slot_goal = outcome.n_found + 1
            self._examine_candidates(
                user, outcome, candidates, accept_for_slot(slot), per_slot_goal
            )
            if any(s in filled for s in (slot,)):
                continue
            filled.add(slot)

        # Bonus round with remaining patience.
        if system == SYSTEM_COMPLETE:
            self._task2_complete_bonus(user, session, outcome)
        else:
            self._task2_baseline_bonus(user, session, outcome, course_values)
        return outcome

    def _task2_complete_bonus(
        self, user: SimulatedUser, session: Session, outcome: TaskOutcome
    ) -> None:
        """Complete-system extras: favorite dish → similar → Mexican.

        One study participant "searched for her favorite dish first,
        asked the system to give similar recipes and then refined by
        Mexican" — the similarity advisor turns leftover patience into
        more menu entries.
        """
        for favorite in user.favorites:
            if outcome.steps_used >= user.patience:
                return
            session.search(favorite)
            outcome.steps_used += 1
            if not session.current.items:
                outcome.empty_results += 1
                continue
            result = session.suggestions()
            similar = [
                s
                for s in result.blackboard.for_advisor(RELATED_ITEMS)
                if isinstance(s.action, GoToCollection)
                and s.analyst == "similar-by-content-collection"
            ]
            mexican = HasValue(
                self.props["cuisine"], self.corpus.extras["cuisines"]["Mexican"]
            )
            session.refine(mexican)
            outcome.steps_used += 1
            pool = list(session.current.items)
            if similar and user.rng.random() < user.rescue_willingness:
                # The observed power move: favorite → similar → Mexican.
                session.go_collection(
                    max(similar, key=lambda s: s.weight).action.items,
                    "similar to favorites",
                )
                session.refine(mexican)
                outcome.steps_used += 2
                pool.extend(session.current.items)
            self._examine_candidates(
                user,
                outcome,
                pool,
                self.judge.satisfies_task2,
                goal=outcome.n_found + 2,
            )

    def _task2_baseline_bonus(
        self,
        user: SimulatedUser,
        session: Session,
        outcome: TaskOutcome,
        course_values: dict,
    ) -> None:
        """Baseline extras: keyword search for favorites, facet re-scan."""
        recipe_type = TypeIs(self.corpus.extras["types"]["Recipe"])
        mexican = HasValue(
            self.props["cuisine"], self.corpus.extras["cuisines"]["Mexican"]
        )
        for favorite in user.favorites:
            if outcome.steps_used >= user.patience:
                return
            session.run_query(
                And([recipe_type, mexican, TextMatch(favorite)])
            )
            outcome.steps_used += 2
            if not session.current.items:
                outcome.empty_results += 1
                continue
            self._examine_candidates(
                user,
                outcome,
                list(session.current.items),
                self.judge.satisfies_task2,
                goal=outcome.n_found + 1,
                cost=2,
            )


def _with_patience(user: SimulatedUser, patience: int) -> SimulatedUser:
    """A shallow copy of a user with a different step budget."""
    clone = SimulatedUser(
        user_id=user.user_id,
        rng=user.rng,
        favorites=user.favorites,
        patience=patience,
        capture_error_rate=user.capture_error_rate,
        negation_skill=user.negation_skill,
        rescue_willingness=user.rescue_willingness,
        overwhelm_threshold=user.overwhelm_threshold,
    )
    return clone
