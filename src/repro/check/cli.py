"""``python -m repro check`` — the soak-mode entry point.

Runs the differential fuzzer and the persistence fault rounds from the
command line with a chosen (or random) seed, minimizes any failure to a
short replayable sequence, and writes it as a repro file another
machine can replay with ``--replay``.  Exit status is the contract: 0
means the whole budget ran clean, 1 means a divergence or fault
violation (CI fails the job and uploads the repro artifact).
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro check",
        description="Differential fuzzing of the navigation service "
        "against a naive reference model, plus persistence fault "
        "injection.",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="master seed (default: derived from the clock)",
    )
    parser.add_argument(
        "--steps",
        type=int,
        default=2000,
        help="total command steps across all corpora (default: 2000)",
    )
    parser.add_argument(
        "--corpora",
        type=int,
        default=20,
        help="number of random corpora to spread the steps over",
    )
    parser.add_argument(
        "--engines",
        default="bitset,naive",
        help="comma-separated engines to race differentially: any of "
        "compiled,bitset,naive (bitset and naive are mandatory; adding "
        "compiled races the compiled-plan engine as a third model)",
    )
    parser.add_argument(
        "--fault-rounds",
        type=int,
        default=25,
        help="persistence fault-injection rounds (0 disables)",
    )
    parser.add_argument(
        "--repro",
        default="repro-check-failure.json",
        help="where to write the minimized failing sequence",
    )
    parser.add_argument(
        "--replay",
        default=None,
        metavar="FILE",
        help="replay a previously written repro file instead of fuzzing",
    )
    parser.add_argument(
        "--no-minimize",
        action="store_true",
        help="keep the full failing sequence (skip ddmin)",
    )
    parser.add_argument(
        "--wire",
        action="store_true",
        help="also replay fuzz streams over a live HTTP server and "
        "assert byte-level response parity",
    )
    parser.add_argument(
        "--wire-steps",
        type=int,
        default=150,
        help="total wire-parity steps across all wire corpora",
    )
    parser.add_argument(
        "--wire-corpora",
        type=int,
        default=2,
        help="number of corpora for the wire-parity pass",
    )
    parser.add_argument(
        "--wire-procs",
        type=int,
        default=1,
        help="run the wire-parity pass against a sharded server with "
        "this many worker processes (1 = single-process server)",
    )
    parser.add_argument(
        "--store",
        action="store_true",
        help="also run the standalone log-replay oracle: random corpora "
        "with interleaved assert/retract histories, written through a "
        "real on-disk store and replayed, must reproduce bit-identical "
        "indexes and navigation at every recorded tx",
    )
    parser.add_argument(
        "--store-corpora",
        type=int,
        default=5,
        help="number of corpora for the --store oracle pass",
    )
    parser.add_argument(
        "--ingest",
        action="store_true",
        help="also run the live-ingestion epoch oracle: stream random "
        "mutations through an epoch manager and prove every published "
        "epoch's suggestions are bit-identical to a cold build at its "
        "watermark tx, racing navigation against a reference rebuilt "
        "at each watermark",
    )
    parser.add_argument(
        "--ingest-corpora",
        type=int,
        default=4,
        help="number of corpora for the --ingest oracle pass",
    )
    parser.add_argument(
        "--ingest-epochs",
        type=int,
        default=4,
        help="epochs published (and checked) per --ingest corpus",
    )
    return parser


def _replay(path: str) -> int:
    from .codec import load_repro
    from .corpus import random_corpus
    from .fuzzer import Divergence, FuzzConfig, run_commands

    corpus_seed, commands, failure = load_repro(path)
    print(f"replaying {len(commands)} command(s) on corpus seed {corpus_seed}")
    if failure:
        print(f"recorded failure: {failure}")
    corpus = random_corpus(corpus_seed)
    try:
        run_commands(corpus, commands, config=FuzzConfig.thorough())
    except Divergence as divergence:
        print(f"reproduced: {divergence}")
        return 1
    print("sequence no longer diverges (bug fixed, or environment drift)")
    return 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.replay is not None:
        return _replay(args.replay)

    from .faults import fuzz_faults
    from .fuzzer import FuzzConfig, fuzz

    engines = tuple(
        name.strip() for name in args.engines.split(",") if name.strip()
    )
    try:
        config = FuzzConfig(engines=engines)
    except ValueError as error:
        print(f"repro check: {error}", file=sys.stderr)
        return 2

    seed = args.seed
    if seed is None:
        seed = int(time.time() * 1000) % (2**31)
    print(
        f"repro check: seed={seed} steps={args.steps} "
        f"corpora={args.corpora} engines={','.join(engines)}"
    )

    status = 0
    report = fuzz(
        seed,
        steps=args.steps,
        corpora=args.corpora,
        config=config,
        repro_path=args.repro,
        minimize_failures=not args.no_minimize,
        log=lambda line: print(f"  {line}"),
    )
    print(
        f"differential: {report.steps_run} step(s) over "
        f"{report.corpora_run} corpus/corpora"
    )
    if report.failure is not None:
        failure = report.failure
        print(
            f"DIVERGENCE (corpus seed {failure.corpus_seed}, "
            f"step {failure.step}): {failure.detail}"
        )
        print(f"minimized to {len(failure.commands)} command(s)")
        if failure.repro_path:
            print(f"repro written to {failure.repro_path}")
            print(f"replay with: python -m repro check --replay {failure.repro_path}")
        status = 1

    if args.wire:
        from ..net.wirecheck import run_wire_check

        wire_report = run_wire_check(
            seed,
            steps=args.wire_steps,
            corpora=args.wire_corpora,
            procs=args.wire_procs,
            log=lambda line: print(f"  {line}"),
        )
        print(
            f"wire: {wire_report.steps_run} step(s), "
            f"{wire_report.suggest_probes} suggest probe(s), "
            f"{wire_report.preview_probes} preview probe(s) over "
            f"{wire_report.corpora_run} corpus/corpora"
        )
        if wire_report.failure is not None:
            failure = wire_report.failure
            print(
                f"WIRE DIVERGENCE (corpus seed {failure.corpus_seed}, "
                f"step {failure.step}, {failure.command}): {failure.detail}"
            )
            status = 1

    if args.store:
        from .storecheck import run_store_check

        store_report = run_store_check(
            seed,
            corpora=args.store_corpora,
            log=lambda line: print(f"  {line}"),
        )
        print(
            f"store: {store_report.corpora_run} corpus/corpora, "
            f"{store_report.txs_checked} tx(s) checked, "
            f"{store_report.suggest_txs_checked} suggestion point(s)"
        )
        for violation in store_report.violations:
            print(f"STORE VIOLATION: {violation}")
        if not store_report.ok:
            status = 1

    if args.ingest:
        from .ingestcheck import run_ingest_check

        ingest_report = run_ingest_check(
            seed,
            corpora=args.ingest_corpora,
            epochs=args.ingest_epochs,
            log=lambda line: print(f"  {line}"),
        )
        print(
            f"ingest: {ingest_report.epochs_checked} epoch(s) checked over "
            f"{ingest_report.corpora_run} corpus/corpora, "
            f"{ingest_report.txs_ingested} tx(s) / "
            f"{ingest_report.datoms_ingested} datom(s) ingested, "
            f"{ingest_report.nav_steps_run} nav step(s)"
        )
        for violation in ingest_report.violations:
            print(f"INGEST VIOLATION: {violation}")
        if not ingest_report.ok:
            status = 1

    if args.fault_rounds > 0:
        with tempfile.TemporaryDirectory(prefix="repro-check-") as tmp:
            fault_report = fuzz_faults(
                seed, args.fault_rounds, tmp, log=lambda line: print(f"  {line}")
            )
        print(f"faults: {fault_report.rounds_run} round(s)")
        for violation in fault_report.violations:
            print(f"FAULT VIOLATION: {violation}")
        if not fault_report.ok:
            status = 1

    print("repro check: " + ("OK" if status == 0 else "FAILED"))
    return status


if __name__ == "__main__":  # pragma: no cover - exercised via repro.cli
    sys.exit(main())
