"""The differential fuzz loop: random commands, N interpreters, one truth.

``DifferentialRunner`` drives the production
:class:`~repro.service.navigation.NavigationService` and the naive
:class:`~repro.check.reference.ReferenceModel` with the same command
stream and raises :class:`Divergence` the moment they disagree — on the
view's extension, on which exception a bad command raises, on telemetry
deltas, on suggestion determinism/preview counts, or on the JSON
round-trip of the session state.  With ``engines`` including
``"compiled"`` (``repro check --engines compiled,bitset,naive``) a third
racer joins: a second service whose query engine evaluates compiled
plans over compressed containers, checked in lockstep against both the
bitset service and the naive model.

``fuzz`` wraps that in the seeded outer loop (many corpora, many
steps), and ``minimize`` shrinks a failing sequence with a ddmin-style
pass so the repro file a CI run uploads is short enough to read.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field

from ..core.suggestions import Refine as RefineAction, RefineMode
from ..query.ast import (
    And,
    HasProperty,
    HasValue,
    Not,
    Or,
    Path,
    PathStep,
    Predicate,
    Range,
    TextMatch,
    TypeIs,
    ValueIn,
)
from ..rdf import RDF
from ..service import commands as cmd
from ..service.navigation import NavigationService
from ..service.state import SessionState
from .corpus import FuzzCorpus, random_corpus
from .reference import ReferenceModel

__all__ = [
    "Divergence",
    "FuzzConfig",
    "FuzzFailure",
    "FuzzReport",
    "DifferentialRunner",
    "CommandGenerator",
    "run_commands",
    "minimize",
    "fuzz",
]


class Divergence(AssertionError):
    """The service and the reference model disagreed."""

    def __init__(self, step: int, command: cmd.Command, detail: str):
        super().__init__(f"step {step}: {command!r}: {detail}")
        self.step = step
        self.command = command
        self.detail = detail


#: Engine names ``FuzzConfig.engines`` accepts.  "bitset" (the production
#: service) and "naive" (the reference model) are the mandatory pair;
#: "compiled" adds the compiled-plan racer.
KNOWN_ENGINES = ("compiled", "bitset", "naive")


@dataclass
class FuzzConfig:
    """Knobs for how aggressively each step is checked."""

    #: Run the (expensive) suggestion-cycle probe every N steps; 0 = off.
    suggest_every: int = 5
    #: Round-trip the state through JSON every N steps; 0 = off.
    roundtrip_every: int = 7
    #: Cap on refinement suggestions preview-probed per suggest cycle.
    probe_suggestions: int = 4
    #: Which engines race.  Must include "bitset" and "naive"; adding
    #: "compiled" runs the compiled-plan engine as a third model.
    engines: tuple = ("bitset", "naive")
    #: After each clean corpus, run the log-replay oracle: the corpus
    #: graph's datom log written to a real store and replayed must
    #: reproduce bit-identical indexes and navigation (storecheck).
    store_oracle: bool = True

    def __post_init__(self):
        unknown = [e for e in self.engines if e not in KNOWN_ENGINES]
        if unknown:
            raise ValueError(
                f"unknown engine(s) {unknown}; choose from {KNOWN_ENGINES}"
            )
        if "bitset" not in self.engines or "naive" not in self.engines:
            raise ValueError(
                "engines must include both 'bitset' and 'naive'"
            )

    @property
    def race_compiled(self) -> bool:
        return "compiled" in self.engines

    @classmethod
    def thorough(cls, engines: tuple = ("bitset", "naive")) -> "FuzzConfig":
        """Probe everything at every step (used when minimizing)."""
        return cls(
            suggest_every=1,
            roundtrip_every=1,
            probe_suggestions=8,
            engines=engines,
        )


@dataclass
class FuzzFailure:
    """One reproducible divergence."""

    corpus_seed: int
    step: int
    detail: str
    commands: list = field(default_factory=list)
    repro_path: str | None = None


@dataclass
class FuzzReport:
    """What a fuzz run covered, and the first failure if any."""

    seed: int
    steps_run: int = 0
    corpora_run: int = 0
    failure: FuzzFailure | None = None

    @property
    def ok(self) -> bool:
        return self.failure is None


class DifferentialRunner:
    """Applies one command stream to both interpreters, checking lockstep."""

    def __init__(
        self,
        corpus: FuzzCorpus,
        config: FuzzConfig | None = None,
        service: NavigationService | None = None,
    ):
        self.corpus = corpus
        self.workspace = corpus.workspace
        self.config = config if config is not None else FuzzConfig()
        self.service = service if service is not None else NavigationService()
        self.state: SessionState = self.service.initial_state(self.workspace)
        self.model = ReferenceModel(
            self.workspace, back_limit=self.state.back_limit
        )
        if self.config.race_compiled:
            # The compiled racer shares the graph, indexes, and query
            # context (so it races over identical state) but carries its
            # own Observability — the primary's telemetry deltas, which
            # _check_telemetry pins exactly, must not move twice.
            self.compiled_workspace = self.workspace.with_query_mode(
                "compiled"
            )
            self.compiled_service = NavigationService()
            self.compiled_state: SessionState = (
                self.compiled_service.initial_state(self.compiled_workspace)
            )
        else:
            self.compiled_workspace = None
            self.compiled_service = None
            self.compiled_state = None
        self.steps = 0
        self._refinement_counter = self.workspace.obs.metrics.counter(
            "session.refinements"
        )

    # -- one step ----------------------------------------------------------

    def step(self, command: cmd.Command) -> None:
        """Apply one command to both sides and cross-check everything."""
        self.steps += 1
        refinements_before = self._refinement_counter.value
        service_error: BaseException | None = None
        model_error: BaseException | None = None
        outcome = model_outcome = None
        try:
            transition = self.service.apply(self.workspace, self.state, command)
        except Exception as error:  # noqa: BLE001 - parity-checked below
            service_error = error
        try:
            model_outcome = self.model.apply(command)
        except Exception as error:  # noqa: BLE001 - parity-checked below
            model_error = error

        if (service_error is None) != (model_error is None) or (
            service_error is not None
            and type(service_error) is not type(model_error)
        ):
            raise Divergence(
                self.steps,
                command,
                f"exception mismatch: service={service_error!r} "
                f"model={model_error!r}",
            )
        if service_error is None:
            self.state = transition.state
            outcome = transition.outcome
            if isinstance(command, cmd.RemoveBookmark):
                if bool(outcome) != bool(model_outcome):
                    raise Divergence(
                        self.steps,
                        command,
                        f"outcome mismatch: service={outcome!r} "
                        f"model={model_outcome!r}",
                    )

        if self.compiled_service is not None:
            self._step_compiled(command, service_error)
        self._check_telemetry(command, refinements_before)
        self._check_state(command)
        config = self.config
        if config.roundtrip_every and self.steps % config.roundtrip_every == 0:
            self._check_roundtrip(command)
        if config.suggest_every and self.steps % config.suggest_every == 0:
            self._check_suggestions(command)

    def _step_compiled(
        self, command: cmd.Command, service_error: BaseException | None
    ) -> None:
        """Apply the command to the compiled racer and cross-check it."""
        compiled_error: BaseException | None = None
        try:
            transition = self.compiled_service.apply(
                self.compiled_workspace, self.compiled_state, command
            )
        except Exception as error:  # noqa: BLE001 - parity-checked below
            compiled_error = error
        if (service_error is None) != (compiled_error is None) or (
            service_error is not None
            and type(compiled_error) is not type(service_error)
        ):
            raise Divergence(
                self.steps,
                command,
                f"compiled exception mismatch: bitset={service_error!r} "
                f"compiled={compiled_error!r}",
            )
        if compiled_error is None:
            self.compiled_state = transition.state
        view, ref = self.compiled_state.view, self.state.view
        if view.kind != ref.kind:
            self._fail(
                command,
                f"compiled view kind {view.kind!r} != bitset {ref.kind!r}",
            )
        if view.is_item:
            if view.item != ref.item:
                self._fail(
                    command,
                    f"compiled item {view.item!r} != bitset {ref.item!r}",
                )
        else:
            if tuple(view.items) != tuple(ref.items):
                self._fail(
                    command,
                    f"compiled view extension differs from bitset: "
                    f"compiled has {len(view.items)} item(s) "
                    f"{[n.n3() for n in view.items]}, bitset has "
                    f"{len(ref.items)} item(s) "
                    f"{[n.n3() for n in ref.items]}",
                )
            if view.query != ref.query:
                self._fail(
                    command,
                    f"compiled query {view.query!r} != bitset {ref.query!r}",
                )
        if len(self.compiled_state.back_stack) != len(self.state.back_stack):
            self._fail(
                command,
                f"compiled back depth {len(self.compiled_state.back_stack)}"
                f" != bitset {len(self.state.back_stack)}",
            )

    # -- the invariants ----------------------------------------------------

    def _fail(self, command: cmd.Command, detail: str) -> None:
        raise Divergence(self.steps, command, detail)

    def _check_state(self, command: cmd.Command) -> None:
        view, ref = self.state.view, self.model.view
        if view.kind != ref.kind:
            self._fail(command, f"view kind {view.kind!r} != {ref.kind!r}")
        if view.is_item:
            if view.item != ref.item:
                self._fail(command, f"item {view.item!r} != {ref.item!r}")
        else:
            if tuple(view.items) != tuple(ref.items):
                self._fail(
                    command,
                    f"view extension differs: service has "
                    f"{len(view.items)} item(s) "
                    f"{[n.n3() for n in view.items]}, model has "
                    f"{len(ref.items)} item(s) {[n.n3() for n in ref.items]}",
                )
            if view.query != ref.query:
                self._fail(
                    command, f"query {view.query!r} != {ref.query!r}"
                )
            if view.description != ref.description:
                self._fail(
                    command,
                    f"description {view.description!r} != "
                    f"{ref.description!r}",
                )
            if ref.query is not None and ref.shadow_query is not None:
                simplified = self.model.extent(ref.query)
                shadow = self.model.extent(ref.shadow_query)
                if simplified != shadow:
                    self._fail(
                        command,
                        "simplified query extension differs from the "
                        f"unsimplified shadow: {ref.query!r} keeps "
                        f"{len(simplified)}, {ref.shadow_query!r} keeps "
                        f"{len(shadow)}",
                    )
        if len(self.state.back_stack) != len(self.model.back_stack):
            self._fail(
                command,
                f"back depth {len(self.state.back_stack)} != "
                f"{len(self.model.back_stack)}",
            )
        if len(self.state.back_stack) > self.state.back_limit:
            self._fail(command, "back stack exceeds back_limit")
        if self.state.back_stack:
            top, ref_top = self.state.back_stack[-1], self.model.back_stack[-1]
            if (top.kind, top.item, tuple(top.items)) != (
                ref_top.kind, ref_top.item, tuple(ref_top.items)
            ):
                self._fail(command, "back stack tops differ")
        if len(self.state.trail) != len(self.model.trail):
            self._fail(
                command,
                f"trail length {len(self.state.trail)} != "
                f"{len(self.model.trail)}",
            )
        if tuple(self.state.bookmarks) != tuple(self.model.bookmarks):
            self._fail(command, "bookmarks differ")
        if tuple(self.state.visits) != tuple(self.model.visits):
            self._fail(command, "visit logs differ")

    def _check_telemetry(
        self, command: cmd.Command, refinements_before: int
    ) -> None:
        # Refine increments the counter before evaluating (even when the
        # refinement itself then fails); nothing else touches it.
        expected = 1 if isinstance(command, cmd.Refine) else 0
        delta = self._refinement_counter.value - refinements_before
        if delta != expected:
            self._fail(
                command,
                f"session.refinements moved by {delta}, expected {expected}",
            )
        stats = self.workspace.query_context.cache_stats
        if self.workspace.frozen and stats.invalidations != 0:
            self._fail(
                command,
                "extent cache reported invalidations on a frozen workspace",
            )

    def _check_roundtrip(self, command: cmd.Command) -> None:
        wire = json.dumps(self.state.to_dict(), sort_keys=True)
        restored = SessionState.from_dict(json.loads(wire))
        if restored != self.state:
            self._fail(
                command, "state does not survive a JSON round-trip"
            )

    def _check_suggestions(self, command: cmd.Command) -> None:
        first = self.service.suggest(self.workspace, self.state)
        second = self.service.suggest(self.workspace, self.state)
        key = lambda result: [
            (s.advisor, s.title, s.group) for s in result.all_suggestions()
        ]
        if key(first) != key(second):
            self._fail(command, "suggestion cycle is nondeterministic")
        if not self.state.view.is_collection:
            return
        items = set(self.model.view.items)
        probed = 0
        for suggestion in first.all_suggestions():
            if probed >= self.config.probe_suggestions:
                break
            action = suggestion.action
            if not isinstance(action, RefineAction):
                continue
            probed += 1
            engine_count = self.service.preview_count(
                self.workspace, self.state, action.predicate, RefineMode.FILTER
            )
            naive_count = len(self.model.extent(action.predicate) & items)
            if engine_count != naive_count:
                self._fail(
                    command,
                    f"preview count for suggested {action.predicate!r}: "
                    f"engine {engine_count} != naive {naive_count}",
                )
            if self.compiled_service is not None:
                compiled_count = self.compiled_service.preview_count(
                    self.compiled_workspace,
                    self.compiled_state,
                    action.predicate,
                    RefineMode.FILTER,
                )
                if compiled_count != naive_count:
                    self._fail(
                        command,
                        f"compiled preview count for suggested "
                        f"{action.predicate!r}: compiled {compiled_count} "
                        f"!= naive {naive_count}",
                    )


class CommandGenerator:
    """Draws weighted random commands, valid and deliberately invalid."""

    def __init__(self, rng: random.Random, corpus: FuzzCorpus):
        self.rng = rng
        self.corpus = corpus
        self.items = list(corpus.workspace.items)
        graph = corpus.workspace.graph
        self.types = sorted(
            {t for item in self.items for t in graph.objects(item, RDF.type)},
            key=lambda n: n.n3(),
        )

    # -- predicate soup ----------------------------------------------------

    def predicate(self, depth: int = 2) -> Predicate:
        rng = self.rng
        corpus = self.corpus
        if depth > 0 and rng.random() < 0.4:
            kind = rng.choice(["and", "or", "not"])
            if kind == "not":
                return Not(self.predicate(depth - 1))
            n_parts = rng.choice([0, 1, 2, 2, 3])  # empty And/Or on purpose
            parts = [self.predicate(depth - 1) for _ in range(n_parts)]
            return And(parts) if kind == "and" else Or(parts)
        leaf = rng.random()
        if leaf < 0.35:
            return HasValue(rng.choice(corpus.props), rng.choice(corpus.values))
        if leaf < 0.50 and self.types:
            return TypeIs(rng.choice(self.types))
        if leaf < 0.65:
            return TextMatch(rng.choice(corpus.words))
        if leaf < 0.80:
            return self.range_predicate()
        if leaf < 0.88:
            return HasProperty(rng.choice(corpus.props + corpus.numeric_props))
        if leaf < 0.96 and corpus.link_props:
            return self.path_predicate()
        values = rng.sample(
            corpus.values, k=rng.randint(1, min(3, len(corpus.values)))
        )
        return ValueIn(
            rng.choice(corpus.props),
            values,
            quantifier=rng.choice(ValueIn.QUANTIFIERS),
        )

    def path_predicate(self) -> Predicate:
        """A random property path over the corpus's cyclic link relation.

        Mixes link hops (item→item, so closures actually walk cycles and
        self-loops) with facet hops (whose objects are values, so paths
        dead-end — the empty-frontier case), inverse steps, and both
        bounded (``+``) and reflexive (``*``) closures.
        """
        rng = self.rng
        corpus = self.corpus
        pool = corpus.link_props * 3 + corpus.props
        steps = tuple(
            PathStep(
                rng.choice(pool),
                inverse=rng.random() < 0.3,
                closure=rng.choice(["", "", "", "+", "*"]),
            )
            for _ in range(rng.choice([1, 1, 2, 2, 3]))
        )
        value = None
        if rng.random() < 0.5:
            value = rng.choice(self.items + corpus.values)
        return Path(steps, value)

    def range_predicate(self) -> Predicate:
        rng = self.rng
        low, high = self.corpus.numeric_span
        a = round(rng.uniform(low - 10, high + 10), 1)
        b = round(rng.uniform(low - 10, high + 10), 1)
        a, b = min(a, b), max(a, b)
        prop = rng.choice(self.corpus.numeric_props)
        shape = rng.random()
        if shape < 0.25:
            return Range(prop, low=a)
        if shape < 0.5:
            return Range(prop, high=b)
        if shape < 0.6:
            return Range(prop, low=a, high=a)  # zero-width
        return Range(prop, low=a, high=b)

    # -- command soup ------------------------------------------------------

    def next_command(self) -> cmd.Command:
        rng = self.rng
        chips = len(self.model_chips())
        choices = [
            (10, lambda: cmd.Search(rng.choice(self.corpus.words))),
            (6, lambda: cmd.SearchWithin(rng.choice(self.corpus.words))),
            (16, lambda: cmd.Refine(self.predicate(), self._mode())),
            (6, lambda: cmd.SelectRefine(self.predicate(), self._mode())),
            (6, lambda: cmd.RunQuery(self.predicate())),
            (5, self._apply_range),
            (4, self._apply_path),
            (4, self._apply_compound),
            (3, self._apply_subcollection),
            (6, lambda: cmd.RemoveConstraint(self._chip_index(chips))),
            (6, lambda: cmd.NegateConstraint(self._chip_index(chips))),
            (5, lambda: cmd.GoItem(rng.choice(self.items))),
            (4, self._go_collection),
            (2, lambda: cmd.GoBookmarks()),
            (4, self._add_bookmark),
            (3, lambda: cmd.RemoveBookmark(rng.choice(self.items))),
            (6, lambda: cmd.Back()),
            (6, lambda: cmd.UndoRefinement()),
        ]
        total = sum(weight for weight, _ in choices)
        roll = rng.uniform(0, total)
        for weight, make in choices:
            roll -= weight
            if roll <= 0:
                return make()
        return choices[-1][1]()

    def bind(self, runner: DifferentialRunner) -> None:
        """Let chip-index choices see the current (model) query."""
        self._runner = runner

    def model_chips(self) -> list:
        runner = getattr(self, "_runner", None)
        if runner is None:
            return []
        return runner.model.view.constraints()

    def _mode(self) -> str:
        return self.rng.choices(
            [RefineMode.FILTER, RefineMode.EXCLUDE, RefineMode.EXPAND,
             "bogus-mode"],
            weights=[60, 20, 15, 5],
        )[0]

    def _chip_index(self, chips: int) -> int:
        # Mostly valid, sometimes one past either end.
        return self.rng.randint(-1, max(chips, 1))

    def _apply_range(self) -> cmd.Command:
        rng = self.rng
        low, high = self.corpus.numeric_span
        a = round(rng.uniform(low, high), 1)
        b = round(rng.uniform(low, high), 1)
        shape = rng.random()
        if shape < 0.08:
            return cmd.ApplyRange(rng.choice(self.corpus.numeric_props), None, None)
        if shape < 0.16 and a != b:
            # Inverted bounds: must raise ValueError on both sides.
            lo, hi = max(a, b), min(a, b)
            return cmd.ApplyRange(rng.choice(self.corpus.numeric_props), lo, hi)
        lo, hi = min(a, b), max(a, b)
        return cmd.ApplyRange(rng.choice(self.corpus.numeric_props), lo, hi)

    def _apply_path(self) -> cmd.Command:
        predicate = self.path_predicate()
        return cmd.ApplyPath(predicate.steps, predicate.value)

    def _apply_compound(self) -> cmd.Command:
        rng = self.rng
        n_parts = rng.choice([0, 1, 2, 2, 3])  # empty: ValueError parity
        parts = tuple(self.predicate(1) for _ in range(n_parts))
        mode = rng.choices(["and", "or", "xor"], weights=[45, 45, 10])[0]
        return cmd.ApplyCompound(parts, mode)

    def _apply_subcollection(self) -> cmd.Command:
        rng = self.rng
        values = tuple(
            rng.sample(
                self.corpus.values,
                k=rng.randint(1, min(4, len(self.corpus.values))),
            )
        )
        quantifier = rng.choices(
            ["any", "all", "most"], weights=[45, 45, 10]
        )[0]
        return cmd.ApplySubcollection(
            rng.choice(self.corpus.props), values, quantifier
        )

    def _go_collection(self) -> cmd.Command:
        rng = self.rng
        k = rng.randint(0, min(8, len(self.items)))
        sample = rng.sample(self.items, k=k)
        return cmd.GoCollection(tuple(sample), f"picked {k}")

    def _add_bookmark(self) -> cmd.Command:
        if self.rng.random() < 0.3:
            return cmd.AddBookmark(None)  # RuntimeError on collection views
        return cmd.AddBookmark(self.rng.choice(self.items))


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------


def run_commands(
    corpus: FuzzCorpus,
    commands,
    config: FuzzConfig | None = None,
    service: NavigationService | None = None,
) -> DifferentialRunner:
    """Replay a fixed command list; raises :class:`Divergence` on a bug."""
    runner = DifferentialRunner(corpus, config=config, service=service)
    for command in commands:
        runner.step(command)
    return runner


def minimize(
    corpus_seed: int,
    commands: list,
    config: FuzzConfig | None = None,
    service_factory=None,
    engines: tuple = ("bitset", "naive"),
) -> list:
    """Shrink a failing sequence to a (1-minimal-ish) short repro.

    ddmin-style: repeatedly delete chunks, keeping any deletion after
    which the replay still diverges.  Replays run with the *thorough*
    config (racing the same ``engines`` the failing run raced) so
    probe-dependent failures don't escape through step-index drift.
    """
    config = (
        config if config is not None else FuzzConfig.thorough(engines=engines)
    )

    def reproduces(candidate: list) -> bool:
        corpus = random_corpus(corpus_seed)
        service = service_factory() if service_factory is not None else None
        try:
            run_commands(corpus, candidate, config=config, service=service)
        except Divergence:
            return True
        return False

    current = list(commands)
    if not reproduces(current):
        return current  # not reproducible under replay; keep everything
    chunk = max(1, len(current) // 2)
    while True:
        reduced = False
        index = 0
        while index < len(current):
            candidate = current[:index] + current[index + chunk:]
            if candidate and reproduces(candidate):
                current = candidate
                reduced = True
            else:
                index += chunk
        if reduced:
            continue
        if chunk == 1:
            return current
        chunk = max(1, chunk // 2)


def fuzz(
    seed: int,
    steps: int = 1000,
    corpora: int = 10,
    config: FuzzConfig | None = None,
    repro_path=None,
    minimize_failures: bool = True,
    service_factory=None,
    log=None,
) -> FuzzReport:
    """The outer fuzz loop: ``corpora`` random corpora, ``steps`` total.

    Deterministic in ``seed``.  Stops at the first divergence, minimizes
    it, optionally writes a replayable repro file, and returns a report;
    ``report.ok`` means the whole budget ran clean.  ``service_factory``
    substitutes the system under test (used by the harness's own tests
    to prove a buggy service is caught).
    """
    rng = random.Random(seed)
    report = FuzzReport(seed=seed)
    steps_per_corpus = max(1, steps // max(1, corpora))
    for _ in range(corpora):
        corpus_seed = rng.randrange(2**31)
        corpus = random_corpus(corpus_seed)
        service = service_factory() if service_factory is not None else None
        runner = DifferentialRunner(corpus, config=config, service=service)
        generator = CommandGenerator(
            random.Random(rng.randrange(2**31)), corpus
        )
        generator.bind(runner)
        executed: list = []
        report.corpora_run += 1
        try:
            for _step in range(steps_per_corpus):
                command = generator.next_command()
                executed.append(command)
                runner.step(command)
                report.steps_run += 1
        except Divergence as divergence:
            report.steps_run += 1
            if log is not None:
                log(
                    f"divergence on corpus seed {corpus_seed} at "
                    f"step {divergence.step}: {divergence.detail}"
                )
            commands = executed
            if minimize_failures:
                engines = (
                    config.engines
                    if config is not None
                    else FuzzConfig().engines
                )
                commands = minimize(
                    corpus_seed,
                    executed,
                    service_factory=service_factory,
                    engines=engines,
                )
            failure = FuzzFailure(
                corpus_seed=corpus_seed,
                step=divergence.step,
                detail=divergence.detail,
                commands=commands,
            )
            if repro_path is not None:
                from .codec import dump_repro

                dump_repro(
                    repro_path, corpus_seed, commands, divergence.detail
                )
                failure.repro_path = str(repro_path)
            report.failure = failure
            return report
        oracle_on = config.store_oracle if config is not None else True
        if oracle_on:
            from .storecheck import StoreCheckReport, verify_log_replay

            oracle = StoreCheckReport(seed=corpus_seed)
            if not verify_log_replay(
                corpus.workspace.graph, oracle, corpus_seed, suggest_txs=2
            ):
                report.failure = FuzzFailure(
                    corpus_seed=corpus_seed,
                    step=steps_per_corpus,
                    detail="log-replay oracle: " + oracle.violations[0],
                    commands=[],
                )
                if log is not None:
                    log(
                        f"log-replay oracle violation on corpus seed "
                        f"{corpus_seed}: {oracle.violations[0]}"
                    )
                return report
        if log is not None:
            log(
                f"corpus seed {corpus_seed}: {steps_per_corpus} step(s) clean"
            )
    return report
