"""``repro.check`` — the correctness harness (differential fuzzing).

Three layers:

* :mod:`~repro.check.reference` — a naive set-algebra re-implementation
  of the navigation semantics (the oracle),
* :mod:`~repro.check.fuzzer` — seeded command generation, the lockstep
  differential runner, and ddmin-style failure minimization,
* :mod:`~repro.check.faults` — persistence fault injection (mid-write
  crashes, corrupt/truncated/foreign state files).

``python -m repro check`` drives all of it from the command line; the
pytest suite under ``tests/check/`` runs fixed-seed slices in tier 1.
"""

from .corpus import FuzzCorpus, random_corpus
from .faults import FaultReport, FaultViolation, InjectedCrash, fuzz_faults
from .fuzzer import (
    CommandGenerator,
    DifferentialRunner,
    Divergence,
    FuzzConfig,
    FuzzFailure,
    FuzzReport,
    fuzz,
    minimize,
    run_commands,
)
from .reference import ReferenceModel, ReferenceView, naive_extent

__all__ = [
    "FuzzCorpus",
    "random_corpus",
    "FaultReport",
    "FaultViolation",
    "InjectedCrash",
    "fuzz_faults",
    "CommandGenerator",
    "DifferentialRunner",
    "Divergence",
    "FuzzConfig",
    "FuzzFailure",
    "FuzzReport",
    "fuzz",
    "minimize",
    "run_commands",
    "ReferenceModel",
    "ReferenceView",
    "naive_extent",
]
