"""The reference model: naive set-algebra session semantics.

This is the oracle half of the differential harness.  It re-implements
the :class:`~repro.service.navigation.NavigationService` transition
semantics in the most boring way possible — plain Python sets, no
bitsets, no extent cache, no facet memo, no ``candidates()`` index
shortcuts — so that any disagreement between it and the real service
points at a bug in one of the clever layers (or, just as usefully, in
this spec).

Predicate extension is computed by structural recursion: ``And`` is set
intersection over the universe, ``Or`` union, ``Not`` complement
against the universe, and every leaf is evaluated by calling
``predicate.matches`` per item — the one per-item code path the
production engine only uses as a last-resort fallback.

The model additionally carries a *shadow query*: the same accumulated
constraint tree but never passed through ``simplify``.  After every
query-building transition the harness asserts the simplified and
unsimplified trees have identical naive extensions, which is a live
property check of the simplifier against whatever shapes real command
sequences produce.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.suggestions import RefineMode
from ..core.workspace import Workspace
from ..query.ast import (
    And,
    Not,
    Or,
    Path,
    Predicate,
    Range,
    TextMatch,
    ValueIn,
)
from ..query.simplify import simplify
from ..rdf.terms import Node
from ..service import commands as cmd

__all__ = ["ReferenceModel", "ReferenceView", "naive_extent"]


def naive_extent(
    predicate: Predicate, universe: set[Node], context
) -> set[Node]:
    """A predicate's extension by naive set algebra over the universe."""
    if isinstance(predicate, And):
        result = set(universe)
        for part in predicate.parts:
            result &= naive_extent(part, universe, context)
        return result
    if isinstance(predicate, Or):
        result = set()
        for part in predicate.parts:
            result |= naive_extent(part, universe, context)
        return result
    if isinstance(predicate, Not):
        return universe - naive_extent(predicate.part, universe, context)
    return {item for item in universe if predicate.matches(item, context)}


@dataclass(frozen=True)
class ReferenceView:
    """The model's view value: mirrors ``ViewState`` field for field."""

    kind: str
    item: Node | None = None
    items: tuple[Node, ...] = ()
    query: Predicate | None = None
    shadow_query: Predicate | None = None
    description: str | None = None

    @property
    def is_item(self) -> bool:
        return self.kind == "item"

    def constraints(self) -> list[Predicate]:
        if self.query is None:
            return []
        if isinstance(self.query, And):
            return list(self.query.parts)
        return [self.query]


class ReferenceModel:
    """Mutable naive session model driven by the same typed commands."""

    def __init__(self, workspace: Workspace, back_limit: int = 100):
        self.context = workspace.query_context
        self.universe: set[Node] = set(workspace.query_context.universe)
        self.all_items: tuple[Node, ...] = tuple(workspace.items)
        self.back_limit = back_limit
        self.view = ReferenceView(
            kind="collection", items=self.all_items, description="everything"
        )
        self.trail: list[tuple[Predicate | None, str]] = []
        self.visits: list[Node] = []
        self.back_stack: list[ReferenceView] = []
        self.bookmarks: list[Node] = []

    # -- plumbing ----------------------------------------------------------

    def extent(self, predicate: Predicate) -> set[Node]:
        return naive_extent(predicate, self.universe, self.context)

    def _push_back(self) -> None:
        self.back_stack.append(self.view)
        if len(self.back_stack) > self.back_limit:
            del self.back_stack[: len(self.back_stack) - self.back_limit]

    def _arrive(
        self,
        query: Predicate | None,
        shadow: Predicate | None,
        items: set[Node],
        description: str | None = None,
    ) -> None:
        ordered = tuple(sorted(items, key=lambda n: n.n3()))
        description = description or (
            query.describe(self.context) if query is not None else "collection"
        )
        self._push_back()
        self.trail.append((query, description))
        self.view = ReferenceView(
            kind="collection",
            items=ordered,
            query=query,
            shadow_query=shadow,
            description=description,
        )

    def _go_collection(
        self, items: Sequence[Node], description: str | None
    ) -> None:
        self._push_back()
        self.trail.append((None, description or "collection"))
        self.view = ReferenceView(
            kind="collection", items=tuple(items), description=description
        )

    @staticmethod
    def _conjoin(query: Predicate | None, predicate: Predicate) -> Predicate:
        if query is None:
            return predicate
        if isinstance(query, And):
            combined = And(list(query.parts) + [predicate])
        else:
            combined = And([query, predicate])
        return simplify(combined)

    @staticmethod
    def _accrete(shadow: Predicate | None, predicate: Predicate) -> Predicate:
        """The shadow-tree counterpart of ``_conjoin``: no simplify."""
        if shadow is None:
            return predicate
        return And([shadow, predicate])

    def _refine_with(self, predicate: Predicate, mode: str) -> None:
        current = self.view
        if mode == RefineMode.FILTER:
            query = self._conjoin(current.query, predicate)
            shadow = self._accrete(current.shadow_query, predicate)
            items = self.extent(predicate) & set(current.items)
        elif mode == RefineMode.EXCLUDE:
            negated = predicate.negated()
            query = self._conjoin(current.query, negated)
            shadow = self._accrete(current.shadow_query, negated)
            items = self.extent(negated) & set(current.items)
        elif mode == RefineMode.EXPAND:
            query = (
                predicate
                if current.query is None
                else Or([current.query, predicate])
            )
            shadow = (
                predicate
                if current.shadow_query is None
                else Or([current.shadow_query, predicate])
            )
            items = self.extent(query)
        else:
            raise ValueError(f"unknown refine mode {mode!r}")
        self._arrive(query, shadow, items)

    def _run_query(
        self, predicate: Predicate, description: str | None = None
    ) -> None:
        self._arrive(
            predicate, predicate, self.extent(predicate), description
        )

    # -- the command interpreter -------------------------------------------

    def apply(self, command: cmd.Command) -> object:
        """Advance the model by one command; returns the outcome (if any).

        Raises exactly what the service raises for the same command and
        state: ``IndexError`` for bad chip indexes, ``RuntimeError`` for
        an empty back stack or a bookmark with nothing in view,
        ``ValueError`` for malformed ranges/compounds/quantifiers.
        """
        if isinstance(command, cmd.Search):
            self._run_query(
                TextMatch(command.text), f"search {command.text!r}"
            )
        elif isinstance(command, cmd.SearchWithin):
            self._refine_with(TextMatch(command.text), RefineMode.FILTER)
        elif isinstance(command, cmd.RunQuery):
            self._run_query(command.predicate, command.description)
        elif isinstance(command, (cmd.Refine, cmd.SelectRefine)):
            self._refine_with(command.predicate, command.mode)
        elif isinstance(command, cmd.ApplyRange):
            predicate = Range(command.prop, low=command.low, high=command.high)
            self._refine_with(predicate, RefineMode.FILTER)
        elif isinstance(command, cmd.ApplyPath):
            # Path leaves reach naive_extent's per-item fallback, which
            # calls Path.matches — the forward BFS — item by item; the
            # service resolves the same predicate through the backward
            # pre-image walk and the extent caches.  Any divergence
            # between the two evaluation orders is exactly what the
            # differential race exists to catch.
            predicate = Path(command.steps, command.value)
            self._refine_with(predicate, RefineMode.FILTER)
        elif isinstance(command, cmd.ApplyCompound):
            if command.mode not in ("and", "or"):
                raise ValueError(
                    f"compound mode must be one of {('and', 'or')}"
                )
            parts = list(command.parts)
            if not parts:
                raise ValueError("nothing was dragged into the compound")
            if len(parts) == 1:
                combined = parts[0]
            else:
                combined = And(parts) if command.mode == "and" else Or(parts)
            self._refine_with(combined, RefineMode.FILTER)
        elif isinstance(command, cmd.ApplySubcollection):
            predicate = ValueIn(
                command.prop, command.values, quantifier=command.quantifier
            )
            self._refine_with(predicate, RefineMode.FILTER)
        elif isinstance(command, cmd.RemoveConstraint):
            self._remove_constraint(command.index)
        elif isinstance(command, cmd.NegateConstraint):
            self._negate_constraint(command.index)
        elif isinstance(command, cmd.GoItem):
            self.visits.append(command.item)
            self._push_back()
            self.view = ReferenceView(kind="item", item=command.item)
        elif isinstance(command, cmd.GoCollection):
            self._go_collection(command.items, command.description)
        elif isinstance(command, cmd.GoBookmarks):
            self._go_collection(tuple(self.bookmarks), "bookmarks")
        elif isinstance(command, cmd.AddBookmark):
            item = command.item
            if item is None:
                if not self.view.is_item:
                    raise RuntimeError("no item in view to bookmark")
                item = self.view.item
            if item not in self.bookmarks:
                self.bookmarks.append(item)
        elif isinstance(command, cmd.RemoveBookmark):
            if command.item not in self.bookmarks:
                return False
            self.bookmarks.remove(command.item)
            return True
        elif isinstance(command, cmd.Back):
            if not self.back_stack:
                raise RuntimeError("no earlier view to go back to")
            self.view = self.back_stack.pop()
        elif isinstance(command, cmd.UndoRefinement):
            self._undo()
        else:
            raise TypeError(f"unknown command {command!r}")
        return None

    def _remove_constraint(self, index: int) -> None:
        parts = self.view.constraints()
        if not (0 <= index < len(parts)):
            raise IndexError(f"no constraint at {index}")
        remaining = [c for i, c in enumerate(parts) if i != index]
        if not remaining:
            self._go_collection(self.all_items, "everything")
            return
        query = remaining[0] if len(remaining) == 1 else And(remaining)
        self._run_query(query)

    def _negate_constraint(self, index: int) -> None:
        parts = self.view.constraints()
        if not (0 <= index < len(parts)):
            raise IndexError(f"no constraint at {index}")
        parts[index] = parts[index].negated()
        query = parts[0] if len(parts) == 1 else And(parts)
        self._run_query(query)

    def _undo(self) -> None:
        if self.trail:
            self.trail.pop()  # the step that produced the current view
        previous = self.trail.pop() if self.trail else None
        if previous is None:
            self._go_collection(self.all_items, "everything")
            return
        query, description = previous
        if query is None:
            self._go_collection(self.all_items, description)
            return
        self._run_query(query, description)

    def __repr__(self) -> str:
        return (
            f"<ReferenceModel view={self.view.kind} "
            f"trail={len(self.trail)} back={len(self.back_stack)}>"
        )
