"""The log-replay oracle: durability must be invisible.

The datom-log refactor's core promise is that the indexes are *pure
views* of the log: writing a graph's log to disk, reading it back, and
folding it into a fresh graph must reproduce the original bit for bit —
same SPO/POS/OSP indexes, same size, same version counter, same tx ids
— and at every recorded transaction the production time-travel path
(:meth:`~repro.rdf.graph.Graph.as_of`) must agree with a
straightforward incremental fold of the log prefix.

:func:`verify_log_replay` checks exactly that for one graph, through a
real on-disk :class:`~repro.store.segments.LogStore` (so segment
encode/decode, checksums, and the manifest are in the loop), and
compares navigation output — the canonical suggestions payload — at
sampled transactions between the replayed ``as_of`` view and a fresh
build of the same prefix.  :func:`run_store_check` is the seeded outer
loop ``repro check --store`` runs: random corpora, each mutated with
interleaved retracts/re-asserts so history is not append-only, then the
oracle.  The differential fuzzer also calls the oracle once per corpus.
"""

from __future__ import annotations

import random
import tempfile
from dataclasses import dataclass, field

from ..rdf.graph import Graph
from ..store.datom import OP_ASSERT, OP_RETRACT
from ..store.segments import LogStore
from .corpus import random_corpus

__all__ = ["StoreCheckReport", "verify_log_replay", "run_store_check"]


@dataclass
class StoreCheckReport:
    """What a store-oracle run covered; ``ok`` means no violation."""

    seed: int
    corpora_run: int = 0
    txs_checked: int = 0
    suggest_txs_checked: int = 0
    violations: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations


def _index_snapshot(graph: Graph):
    """The three indexes as comparable plain structures."""

    def plain(index):
        return {
            a: {b: frozenset(cs) for b, cs in by.items()}
            for a, by in index.items()
        }

    return (
        plain(graph._spo),
        plain(graph._pos),
        plain(graph._osp),
        len(graph),
        graph.version,
        graph.last_tx,
    )


def workspace_fingerprint(workspace):
    """The canonical suggestions payload for one (frozen) workspace.

    Built through a real session so the whole stack — workspace
    substrates, engine, advisors — is between the input and the
    comparison.  The epoch oracle (``repro check --ingest``) compares
    this fingerprint between a published epoch and a cold build at the
    epoch's watermark transaction.
    """
    from ..browser.session import Session
    from ..net.protocol import canonical_json, suggestions_payload

    session = Session(workspace, session_id="storecheck")
    return canonical_json(suggestions_payload(session.suggestions()))


def _suggestions_fingerprint(graph: Graph):
    """Fingerprint of a fresh cold build over ``graph``'s full log."""
    from ..core.workspace import Workspace

    frozen = Graph.from_datoms(graph.log)
    frozen.freeze()
    workspace = Workspace(frozen).freeze()
    return workspace_fingerprint(workspace)


def _tx_boundaries(graph: Graph) -> list[int]:
    seen: list[int] = []
    for datom in graph.log:
        if not seen or datom.tx != seen[-1]:
            seen.append(datom.tx)
    return seen


def verify_log_replay(
    graph: Graph,
    report: StoreCheckReport,
    corpus_seed: int,
    suggest_txs: int = 3,
) -> bool:
    """Run the full oracle for one graph; append violations to report.

    Checks, in order:

    1. **Durable round-trip** — the log written through a real
       ``LogStore`` and replayed yields bit-identical indexes, size,
       version, and tx ids.
    2. **Every recorded tx** — ``as_of(tx)`` on the replayed graph
       matches an incremental fold of the log prefix, index for index.
    3. **Sampled suggestions** — at up to ``suggest_txs`` transactions
       (always including the head), the canonical suggestions payload
       of the replayed historical view equals a fresh build's.
    """
    before = len(report.violations)

    with tempfile.TemporaryDirectory(prefix="repro-storecheck-") as root:
        store = LogStore.init(f"{root}/store")
        store.append_log(graph.log, batch=64)
        reopened = LogStore.open(f"{root}/store")
        try:
            replayed = reopened.replay_graph()
        except ValueError as error:
            report.violations.append(
                f"corpus {corpus_seed}: durable replay failed: {error}"
            )
            return False

    if _index_snapshot(replayed) != _index_snapshot(graph):
        report.violations.append(
            f"corpus {corpus_seed}: replayed indexes differ from original"
        )

    # Incremental fold vs the production as_of path, every recorded tx.
    boundaries = _tx_boundaries(graph)
    fold = Graph()
    datoms = iter(graph.log)
    pending = next(datoms, None)
    for tx in boundaries:
        group = []
        while pending is not None and pending.tx == tx:
            group.append(pending)
            pending = next(datoms, None)
        fold._replay(group)
        view = replayed.as_of(tx)
        report.txs_checked += 1
        if _index_snapshot(view)[:4] != _index_snapshot(fold)[:4]:
            report.violations.append(
                f"corpus {corpus_seed}: as_of({tx}) differs from the "
                f"incremental fold of the log prefix"
            )
            break

    # Navigation parity at sampled transactions (head always included).
    if boundaries:
        step = max(1, len(boundaries) // max(1, suggest_txs))
        sampled = sorted({*boundaries[::step], boundaries[-1]})[-suggest_txs:]
        for tx in sampled:
            view = replayed.as_of(tx)
            report.suggest_txs_checked += 1
            if _suggestions_fingerprint(view) != _suggestions_fingerprint(
                graph.as_of(tx)
            ):
                report.violations.append(
                    f"corpus {corpus_seed}: suggestions at as_of({tx}) "
                    f"differ between replayed and original history"
                )
                break

    return len(report.violations) == before


def _mutated_corpus_graph(corpus_seed: int, rng: random.Random) -> Graph:
    """A corpus graph with retracts and re-asserts layered on top.

    ``random_corpus`` only asserts; time travel is interesting when
    history contains removals, so a random third of the triples are
    retracted — some individually, some inside multi-op transactions
    that retract one triple and re-assert another.
    """
    corpus = random_corpus(corpus_seed, freeze=False)
    graph = corpus.workspace.graph
    triples = sorted(graph.triples(), key=repr)
    rng.shuffle(triples)
    victims = triples[: len(triples) // 3]
    revived = []
    while victims:
        s, p, o = victims.pop()
        if rng.random() < 0.5 and victims:
            s2, p2, o2 = victims.pop()
            graph.transact(
                [(OP_RETRACT, s, p, o), (OP_RETRACT, s2, p2, o2)]
            )
            revived.append((s2, p2, o2))
        else:
            graph.remove(s, p, o)
    for s, p, o in revived:
        if rng.random() < 0.6:
            graph.transact([(OP_ASSERT, s, p, o)])
    return graph


def run_store_check(
    seed: int,
    corpora: int = 5,
    suggest_txs: int = 3,
    log=None,
) -> StoreCheckReport:
    """The seeded outer loop behind ``repro check --store``.

    Deterministic in ``seed``: ``corpora`` random corpora, each with an
    interleaved assert/retract history, pushed through the full oracle.
    """
    rng = random.Random(seed)
    report = StoreCheckReport(seed=seed)
    for _ in range(corpora):
        corpus_seed = rng.randrange(2**31)
        graph = _mutated_corpus_graph(corpus_seed, rng)
        ok = verify_log_replay(
            graph, report, corpus_seed, suggest_txs=suggest_txs
        )
        report.corpora_run += 1
        if log is not None:
            log(
                f"store oracle corpus {corpus_seed}: "
                f"{'ok' if ok else 'VIOLATION'} "
                f"({graph.last_tx} tx, {len(graph.log)} datoms)"
            )
        if not ok:
            break
    return report
