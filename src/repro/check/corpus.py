"""Random small corpora for the differential harness.

Each corpus is a deliberately messy little RDF graph: several types,
discrete facet properties with overlapping value vocabularies, sparse
numeric properties (including the occasional non-finite literal — the
web-scale-RDF adversarial case), short text titles drawn from a small
vocabulary so full-text matches are neither empty nor total, untyped
annotation nodes that must stay out of the universe, and blank nodes as
values.  Everything derives from one ``random.Random`` so a corpus is
reproducible from its seed alone.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..core.workspace import Workspace
from ..rdf import RDF, BlankNode, Graph, Literal, Namespace, Resource

__all__ = ["FuzzCorpus", "random_corpus"]

FUZZ = Namespace("http://fuzz.example/")

#: Words that seed titles; stems collide on purpose (run/running).
WORDS = [
    "corn", "salad", "pepper", "braise", "running", "run", "magnet",
    "navigation", "query", "empty", "graph", "thursday", "august",
]

COLORS = ["red", "blue", "green", "mauve"]
SIZES = ["small", "big"]
SHAPES = ["round", "square", "flat"]


@dataclass
class FuzzCorpus:
    """A generated workspace plus the vocabulary commands draw from."""

    seed: int
    workspace: Workspace
    props: list[Resource]            # discrete facet properties
    values: list                     # every discrete value used
    numeric_props: list[Resource]    # properties with numeric literals
    numeric_span: tuple[float, float]
    words: list[str]                 # text vocabulary for searches
    link_props: list[Resource] = field(default_factory=list)  # item→item edges


def random_corpus(seed: int, freeze: bool = True) -> FuzzCorpus:
    """Build a reproducible random workspace from a seed."""
    rng = random.Random(seed)
    g = Graph()

    n_items = rng.randint(12, 36)
    n_types = rng.randint(1, 3)
    types = [FUZZ[f"Type{t}"] for t in range(n_types)]

    color, size, shape = FUZZ.color, FUZZ.size, FUZZ.shape
    props = [color, size, shape]
    palette = {
        color: [FUZZ[v] for v in COLORS],
        size: [FUZZ[v] for v in SIZES],
        shape: [FUZZ[v] for v in SHAPES] + [BlankNode("shade0")],
    }
    numeric_props = [FUZZ.weight, FUZZ.year]
    low, high = 0.0, 100.0

    for i in range(n_items):
        item = FUZZ[f"item{i}"]
        g.add(item, RDF.type, rng.choice(types))
        for prop in props:
            # Sparse facets: some items miss a property entirely, some
            # carry several values for it.
            for _ in range(rng.choice([0, 1, 1, 1, 2])):
                g.add(item, prop, rng.choice(palette[prop]))
        for prop in numeric_props:
            draw = rng.random()
            if draw < 0.15:
                continue  # no reading at all
            if draw < 0.20:
                # Adversarial literal: non-numeric or non-finite.
                g.add(item, prop, Literal(rng.choice(["nan", "inf", "n/a"])))
                continue
            g.add(item, prop, Literal(round(rng.uniform(low, high), 1)))
        title = " ".join(
            rng.choice(WORDS) for _ in range(rng.randint(2, 5))
        )
        g.add(item, FUZZ.title, Literal(f"{title} number {i}"))

    # Item-to-item link edges: a sparse, cyclic relation for property
    # paths (forward, inverse, bounded and transitive closures).  A
    # separately-seeded rng keeps every draw above bit-identical to
    # pre-path corpora for the same seed.
    link = FUZZ.link
    link_rng = random.Random(f"links:{seed}")
    item_nodes = [FUZZ[f"item{i}"] for i in range(n_items)]
    for item in item_nodes:
        for _ in range(link_rng.choice([0, 1, 1, 2])):
            # Self-loops happen, and that is the point.
            g.add(item, link, link_rng.choice(item_nodes))
    if len(item_nodes) >= 2:
        # Guarantee at least one 2-cycle regardless of the draws above.
        g.add(item_nodes[0], link, item_nodes[1])
        g.add(item_nodes[1], link, item_nodes[0])

    # Untyped annotation nodes: subjects that must stay outside the
    # universe even though they carry properties items also use.
    for a in range(rng.randint(0, 4)):
        note = FUZZ[f"note{a}"]
        g.add(note, FUZZ.title, Literal("annotation corn"))
        g.add(note, color, FUZZ.red)

    workspace = Workspace(g)
    if freeze:
        workspace.freeze()
    all_values = sorted(
        {v for vs in palette.values() for v in vs}, key=lambda n: n.n3()
    )
    return FuzzCorpus(
        seed=seed,
        workspace=workspace,
        props=props,
        values=all_values,
        numeric_props=numeric_props,
        numeric_span=(low, high),
        words=WORDS + ["zebra"],  # one word that never matches
        link_props=[link],
    )
