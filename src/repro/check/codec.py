"""JSON codecs for command sequences (the replayable repro format).

A minimized failure must survive being written to disk, attached to a
CI run, and replayed on another machine, so commands get the same
tagged-dict treatment :mod:`repro.service.serialize` gives terms and
predicates — those codecs are reused for every node/predicate field.
"""

from __future__ import annotations

import json
from typing import Any

from ..service import commands as cmd
from ..service.serialize import (
    StateSerializationError,
    node_from_dict,
    node_to_dict,
    path_step_from_dict,
    path_step_to_dict,
    predicate_from_dict,
    predicate_to_dict,
)

__all__ = [
    "command_to_dict",
    "command_from_dict",
    "dump_repro",
    "load_repro",
]

#: field name -> (encoder, decoder); everything else passes through as-is.
_NODE = (node_to_dict, node_from_dict)
_OPT_NODE = (
    lambda v: None if v is None else node_to_dict(v),
    lambda v: None if v is None else node_from_dict(v),
)
_PRED = (predicate_to_dict, predicate_from_dict)
_PLAIN = (lambda v: v, lambda v: v)
_NODES = (
    lambda vs: [node_to_dict(v) for v in vs],
    lambda vs: tuple(node_from_dict(v) for v in vs),
)
_PREDS = (
    lambda vs: [predicate_to_dict(v) for v in vs],
    lambda vs: tuple(predicate_from_dict(v) for v in vs),
)
_STEPS = (
    lambda vs: [path_step_to_dict(v) for v in vs],
    lambda vs: tuple(path_step_from_dict(v) for v in vs),
)

#: command class -> {field: (encode, decode)}
_SPECS: dict[type, dict[str, tuple]] = {
    cmd.Search: {"text": _PLAIN},
    cmd.SearchWithin: {"text": _PLAIN},
    cmd.SearchRanked: {"text": _PLAIN, "k": _PLAIN},
    cmd.RankCurrent: {"text": _PLAIN},
    cmd.RunQuery: {"predicate": _PRED, "description": _PLAIN},
    cmd.Refine: {"predicate": _PRED, "mode": _PLAIN},
    cmd.SelectRefine: {"predicate": _PRED, "mode": _PLAIN},
    cmd.ApplyRange: {"prop": _NODE, "low": _PLAIN, "high": _PLAIN},
    cmd.ApplyPath: {"steps": _STEPS, "value": _OPT_NODE},
    cmd.ApplyCompound: {"parts": _PREDS, "mode": _PLAIN},
    cmd.ApplySubcollection: {
        "prop": _NODE, "values": _NODES, "quantifier": _PLAIN,
    },
    cmd.RemoveConstraint: {"index": _PLAIN},
    cmd.NegateConstraint: {"index": _PLAIN},
    cmd.GoItem: {"item": _NODE},
    cmd.GoCollection: {"items": _NODES, "description": _PLAIN},
    cmd.GoBookmarks: {},
    cmd.AddBookmark: {"item": _OPT_NODE},
    cmd.RemoveBookmark: {"item": _NODE},
    cmd.MarkRelevant: {"item": _NODE},
    cmd.MarkNonRelevant: {"item": _NODE},
    cmd.ClearFeedback: {},
    cmd.MoreLikeMarked: {"k": _PLAIN},
    cmd.Back: {},
    cmd.UndoRefinement: {},
}

_BY_TAG = {klass.__name__: klass for klass in _SPECS}


def command_to_dict(command: cmd.Command) -> dict[str, Any]:
    """Encode one command as a tagged plain dict."""
    spec = _SPECS.get(type(command))
    if spec is None:
        raise StateSerializationError(
            f"cannot serialize command type {type(command).__name__}"
        )
    encoded: dict[str, Any] = {"c": type(command).__name__}
    for name, (encode, _decode) in spec.items():
        encoded[name] = encode(getattr(command, name))
    return encoded


def command_from_dict(data: dict[str, Any]) -> cmd.Command:
    """Decode a command encoded by :func:`command_to_dict`."""
    tag = data.get("c")
    klass = _BY_TAG.get(tag)
    if klass is None:
        raise StateSerializationError(f"unknown command tag {tag!r}")
    spec = _SPECS[klass]
    kwargs = {
        name: decode(data[name]) for name, (_encode, decode) in spec.items()
    }
    return klass(**kwargs)


def dump_repro(
    path,
    corpus_seed: int,
    commands: list[cmd.Command],
    failure: str,
) -> None:
    """Write a replayable repro file for a minimized failing sequence."""
    payload = {
        "kind": "repro.check/repro",
        "version": 1,
        "corpus_seed": corpus_seed,
        "failure": failure,
        "commands": [command_to_dict(c) for c in commands],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)


def load_repro(path) -> tuple[int, list[cmd.Command], str]:
    """Read a repro file back: (corpus_seed, commands, failure text)."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("kind") != "repro.check/repro":
        raise StateSerializationError(f"{path} is not a repro.check file")
    commands = [command_from_dict(c) for c in payload["commands"]]
    return payload["corpus_seed"], commands, payload.get("failure", "")
