"""Persistence fault injection: crash the save, corrupt the file.

The contract under test (``SessionManager.save``/``load``) is binary:
a persisted session state either round-trips losslessly or raises a
typed :class:`~repro.service.serialize.StateLoadError` — never a
half-resumed session, and never a destroyed previous save.  Each fault
round builds a real session, walks it a few steps, saves it, injects
one fault, and asserts that contract plus "the manager is untouched
after a failed load".
"""

from __future__ import annotations

import json
import os
import random
from dataclasses import dataclass, field, replace

from ..query.ast import HasValue, TextMatch
from ..service.manager import SessionManager
from ..service.serialize import StateLoadError
from .corpus import FuzzCorpus, random_corpus

__all__ = [
    "InjectedCrash",
    "FaultViolation",
    "FaultReport",
    "crash_after",
    "CORRUPTORS",
    "run_fault_round",
    "fuzz_faults",
]


class InjectedCrash(OSError):
    """The fault writer's simulated mid-write failure."""


class FaultViolation(AssertionError):
    """A persistence fault escaped the save/load contract."""


def crash_after(limit: int):
    """A :data:`~repro.service.manager.StateWriter` that dies mid-write."""

    def writer(handle, text: str) -> None:
        handle.write(text[:limit])
        handle.flush()
        raise InjectedCrash(f"injected crash after {limit} byte(s)")

    return writer


# ----------------------------------------------------------------------
# File corruptors: each takes (path, rng) and mangles a valid state file.
# ----------------------------------------------------------------------


def _truncate(path: str, rng: random.Random) -> str:
    size = os.path.getsize(path)
    keep = rng.randrange(0, max(1, size - 1))
    with open(path, "r+", encoding="utf-8") as handle:
        handle.truncate(keep)
    return f"truncated to {keep}/{size} bytes"


def _garbage(path: str, rng: random.Random) -> str:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(rng.choice(["", "{", "not json at all", '{"a": }']))
    return "replaced with garbage"

def _unknown_version(path: str, rng: random.Random) -> str:
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    data["format"] = rng.choice([0, 2, 99, "1", None])
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(data, handle)
    return f"format version set to {data['format']!r}"


def _drop_key(path: str, rng: random.Random) -> str:
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    key = rng.choice(["view", "format", "back_limit", "trail"])
    data.pop(key, None)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(data, handle)
    return f"dropped key {key!r}"


def _mangle_view(path: str, rng: random.Random) -> str:
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    how = rng.choice(["kind", "itemless", "non-dict"])
    if how == "kind":
        data["view"]["kind"] = "hologram"
    elif how == "itemless":
        data["view"] = {"kind": "item", "item": None, "items": []}
    else:
        data["view"] = "not a view"
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(data, handle)
    return f"mangled view ({how})"


def _non_dict(path: str, rng: random.Random) -> str:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(rng.choice([[1, 2, 3], "state", 7, None]), handle)
    return "payload is not an object"


CORRUPTORS = [
    _truncate,
    _garbage,
    _unknown_version,
    _drop_key,
    _mangle_view,
    _non_dict,
]


@dataclass
class FaultReport:
    """Outcome of a fault-injection run."""

    seed: int
    rounds_run: int = 0
    violations: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations


def _walked_manager(corpus: FuzzCorpus, rng: random.Random) -> SessionManager:
    """A manager whose session has real history to lose."""
    manager = SessionManager(corpus.workspace)
    session = manager.create("primary")
    session.search(rng.choice(corpus.words))
    session.refine(HasValue(rng.choice(corpus.props), rng.choice(corpus.values)))
    if rng.random() < 0.5:
        session.run_query(TextMatch(rng.choice(corpus.words)))
    item = rng.choice(list(corpus.workspace.items))
    session.go_item(item)
    session.bookmark(item)
    if rng.random() < 0.5:
        session.back()
    return manager


def run_fault_round(seed: int, tmp_dir: str) -> None:
    """One full fault round; raises :class:`FaultViolation` on escape."""
    rng = random.Random(seed)
    corpus = random_corpus(rng.randrange(2**31))
    manager = _walked_manager(corpus, rng)
    saved_state = manager.get("primary").state
    path = os.path.join(tmp_dir, f"state-{seed}.json")

    # 1. Clean save/load must round-trip losslessly (new name and all).
    manager.save("primary", path)
    restored = manager.load("copy", path)
    expected = replace(saved_state, session_id="copy")
    if restored.state != expected:
        raise FaultViolation(f"seed {seed}: clean save/load is lossy")

    # 2. A crash mid-overwrite must leave the previous file intact and
    #    no temp droppings behind.
    with open(path, "r", encoding="utf-8") as handle:
        before = handle.read()
    crash_point = rng.randrange(0, max(1, len(before)))
    try:
        manager.save("primary", path, writer=crash_after(crash_point))
    except InjectedCrash:
        pass
    else:
        raise FaultViolation(f"seed {seed}: injected crash was swallowed")
    with open(path, "r", encoding="utf-8") as handle:
        after = handle.read()
    if after != before:
        raise FaultViolation(
            f"seed {seed}: crash at byte {crash_point} damaged the target"
        )
    leftovers = [
        name
        for name in os.listdir(tmp_dir)
        if name.startswith(os.path.basename(path) + ".tmp.")
    ]
    if leftovers:
        raise FaultViolation(f"seed {seed}: temp files left: {leftovers}")

    # 3. Every corruptor must produce a typed StateLoadError and leave
    #    the manager exactly as it was.
    corruptor = rng.choice(CORRUPTORS)
    detail = corruptor(path, rng)
    held = manager.get("copy")
    active = manager.active_name
    try:
        manager.load("copy", path)
    except StateLoadError:
        pass
    except Exception as error:  # noqa: BLE001 - the contract is typed
        raise FaultViolation(
            f"seed {seed}: {detail}: load raised {type(error).__name__} "
            f"instead of StateLoadError: {error}"
        ) from error
    else:
        raise FaultViolation(
            f"seed {seed}: {detail}: corrupt state loaded without error"
        )
    if manager.get("copy") is not held or manager.active_name != active:
        raise FaultViolation(
            f"seed {seed}: {detail}: failed load disturbed the manager"
        )
    if held.state != expected:
        raise FaultViolation(
            f"seed {seed}: {detail}: failed load mutated the held session"
        )


def fuzz_faults(
    seed: int, rounds: int, tmp_dir: str, log=None
) -> FaultReport:
    """Run ``rounds`` independent fault rounds; collect any violations."""
    rng = random.Random(seed)
    report = FaultReport(seed=seed)
    for index in range(rounds):
        round_seed = rng.randrange(2**31)
        report.rounds_run += 1
        try:
            run_fault_round(round_seed, tmp_dir)
        except FaultViolation as violation:
            report.violations.append(str(violation))
            if log is not None:
                log(f"fault round {index}: VIOLATION: {violation}")
    return report
