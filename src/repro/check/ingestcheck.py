"""``repro check --ingest`` — the live-ingestion epoch oracle.

The epoch fold (:mod:`repro.core.epochs`) promises that a published
epoch is *bit-identical* to a cold build of the log prefix at the
epoch's watermark transaction.  This module races that promise
continuously: per corpus it stands up an :class:`EpochManager`, streams
randomized mutations phrased in the corpus's own vocabulary (new items,
facet churn, untypings, numeric values that move the range bounds, the
occasional schema annotation that forces the cold-fallback path),
publishes an epoch after every few transactions, and checks two oracles
at each watermark:

* **fingerprint parity** — the canonical suggestions payload of the
  published epoch equals that of
  :meth:`~repro.core.epochs.EpochManager.cold_workspace` at the same
  watermark (``as_of`` is the ground truth);
* **navigation parity** — a :class:`DifferentialRunner` drives random
  commands against the live epoch while its
  :class:`~repro.check.reference.ReferenceModel` is rebuilt over the
  *cold* workspace, so every refinement, zoom, search, and suggestion
  probe compares incremental state against from-scratch state.

``mutate_epoch`` is the harness-sensitivity seam: a test can plant a
deliberate staleness bug (e.g. a facet-profile memo carried across a
dirty delta) in each published epoch and assert the check *fails* —
proving the oracle has teeth.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace

from ..core.epochs import EpochManager
from ..rdf import RDF, Literal
from ..rdf.vocab import MAGNET
from ..store.datom import OP_ASSERT, OP_RETRACT
from .corpus import FUZZ, FuzzCorpus, random_corpus
from .fuzzer import CommandGenerator, DifferentialRunner, Divergence, FuzzConfig
from .reference import ReferenceModel
from .storecheck import workspace_fingerprint

__all__ = ["IngestCheckReport", "run_ingest_check"]


@dataclass
class IngestCheckReport:
    """What an ingest-oracle run covered; ``ok`` means no violation."""

    seed: int
    corpora_run: int = 0
    epochs_checked: int = 0
    txs_ingested: int = 0
    datoms_ingested: int = 0
    nav_steps_run: int = 0
    violations: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations


class _DeltaSoup:
    """Random live mutations drawn from one corpus's vocabulary.

    Every op kind maps to a fold code path: fresh items (adds), facet
    churn (leaf replay + postings sweep), untypings (universe removal),
    out-of-span numerics (range move → store rebuild), title edits
    (text-index reindex), and rare schema annotations (cold fallback).
    Targets are picked from the *published* epoch, so a retract can race
    a concurrent head change and land ineffective — which the datom log
    treats as a no-op, exactly like production ingestion.
    """

    def __init__(self, rng: random.Random, corpus: FuzzCorpus):
        self.rng = rng
        self.corpus = corpus
        graph = corpus.workspace.graph
        self.types = sorted(
            {o for _s, _p, o in graph.triples(None, RDF.type, None)},
            key=lambda n: n.n3(),
        )
        self._fresh = 0

    def _pick_item(self, workspace):
        items = workspace.items
        if not items:
            return None
        return self.rng.choice(items)

    def next_ops(self, workspace) -> list[tuple]:
        rng = self.rng
        corpus = self.corpus
        kind = rng.choices(
            ["add_item", "facet_churn", "untype", "numeric", "title",
             "annotate"],
            weights=[3, 4, 1, 3, 2, 1],
        )[0]

        if kind == "add_item":
            self._fresh += 1
            item = FUZZ[f"live{self._fresh}"]
            ops = [(OP_ASSERT, item, RDF.type, rng.choice(self.types))]
            for prop in corpus.props:
                if rng.random() < 0.7:
                    ops.append((OP_ASSERT, item, prop,
                                rng.choice(corpus.values)))
            prop = rng.choice(corpus.numeric_props)
            ops.append((OP_ASSERT, item, prop,
                        Literal(round(rng.uniform(0.0, 100.0), 1))))
            title = " ".join(rng.choice(corpus.words) for _ in range(3))
            ops.append((OP_ASSERT, item, FUZZ.title, Literal(title)))
            return ops

        item = self._pick_item(workspace)
        if item is None:
            return self.next_ops(workspace)
        graph = workspace.graph

        if kind == "facet_churn":
            prop = rng.choice(corpus.props)
            ops = []
            existing = [o for _s, _p, o in graph.triples(item, prop, None)]
            if existing and rng.random() < 0.6:
                ops.append((OP_RETRACT, item, prop, rng.choice(existing)))
            ops.append((OP_ASSERT, item, prop, rng.choice(corpus.values)))
            return ops

        if kind == "untype":
            return [
                (OP_RETRACT, item, RDF.type, o)
                for _s, _p, o in graph.triples(item, RDF.type, None)
            ] or self.next_ops(workspace)

        if kind == "numeric":
            prop = rng.choice(corpus.numeric_props)
            ops = [
                (OP_RETRACT, item, prop, o)
                for _s, _p, o in graph.triples(item, prop, None)
            ]
            # One draw in three lands outside the corpus span and moves
            # the recorded range — the fold must rebuild the store.
            value = rng.uniform(-50.0, 150.0)
            ops.append((OP_ASSERT, item, prop, Literal(round(value, 1))))
            return ops

        if kind == "title":
            ops = [
                (OP_RETRACT, item, FUZZ.title, o)
                for _s, _p, o in graph.triples(item, FUZZ.title, None)
            ]
            title = " ".join(rng.choice(corpus.words) for _ in range(4))
            ops.append((OP_ASSERT, item, FUZZ.title, Literal(title)))
            return ops

        # annotate: flip a schema mark — the fold's cold-fallback path.
        prop = rng.choice(corpus.props)
        if graph.value(prop, MAGNET.hidden) is not None:
            return [(OP_RETRACT, prop, MAGNET.hidden, Literal(True))]
        return [(OP_ASSERT, prop, MAGNET.hidden, Literal(True))]


def run_ingest_check(
    seed: int,
    corpora: int = 4,
    epochs: int = 4,
    txs_per_epoch: int = 2,
    nav_steps: int = 12,
    log=None,
    mutate_epoch=None,
) -> IngestCheckReport:
    """Race live ingestion against the cold ``as_of`` oracle.

    Per corpus: ingest → publish → fingerprint parity → navigation
    differential with the reference rebuilt at the watermark.  The
    ``mutate_epoch`` hook (tests only) corrupts each published epoch's
    workspace before checking, to prove the oracle detects staleness.
    """
    report = IngestCheckReport(seed=seed)
    outer = random.Random(seed)
    for _ in range(max(1, corpora)):
        corpus_seed = outer.randrange(2**31)
        corpus = random_corpus(corpus_seed)
        manager = EpochManager(corpus.workspace)
        rng = random.Random(corpus_seed ^ 0x1395E57)
        soup = _DeltaSoup(rng, corpus)
        report.corpora_run += 1
        published = 0
        for _round in range(max(2, epochs)):
            before = manager._datoms_ingested
            for _tx in range(rng.randint(1, max(1, txs_per_epoch))):
                tx = manager.ingest(
                    soup.next_ops(manager.current.workspace)
                )
                if tx is not None:
                    report.txs_ingested += 1
            report.datoms_ingested += manager._datoms_ingested - before
            epoch = manager.publish()
            if epoch is None:
                continue  # every op raced to a no-op: nothing to check
            published += 1
            if mutate_epoch is not None:
                mutate_epoch(epoch)
            cold = manager.cold_workspace(epoch.watermark)
            if workspace_fingerprint(epoch.workspace) != \
                    workspace_fingerprint(cold):
                report.violations.append(
                    f"corpus {corpus_seed} epoch {epoch.number}: published "
                    f"suggestions diverge from cold as_of("
                    f"{epoch.watermark}) build"
                )
                break  # the epoch chain is already suspect
            steps = _race_navigation(
                corpus, epoch, cold, corpus_seed, nav_steps, report
            )
            report.nav_steps_run += steps
            report.epochs_checked += 1
        if log is not None:
            log(
                f"corpus {corpus_seed}: {published} epoch(s) published, "
                f"head tx {manager.head_tx}"
            )
    return report


def _race_navigation(
    corpus: FuzzCorpus,
    epoch,
    cold,
    corpus_seed: int,
    nav_steps: int,
    report: IngestCheckReport,
) -> int:
    """Random commands: live epoch vs reference over the cold build."""
    live = replace(corpus, workspace=epoch.workspace)
    runner = DifferentialRunner(live, config=FuzzConfig.thorough())
    # Rebuild the reference at the watermark — over the *cold* workspace,
    # so the race compares incremental substrates with from-scratch ones
    # at every step, not just at the initial collection.
    runner.model = ReferenceModel(cold, back_limit=runner.state.back_limit)
    generator = CommandGenerator(
        random.Random(corpus_seed * 31 + epoch.number), live
    )
    generator.bind(runner)
    steps = 0
    try:
        for _ in range(max(1, nav_steps)):
            runner.step(generator.next_command())
            steps += 1
    except Divergence as divergence:
        report.violations.append(
            f"corpus {corpus_seed} epoch {epoch.number}: navigation "
            f"diverged from watermark rebuild at step "
            f"{divergence.step}: {divergence.detail}"
        )
    return steps
